# Convenience targets; everything is plain pytest underneath.

.PHONY: install test bench bench-tables examples all

install:
	pip install -e '.[test]' --no-build-isolation || \
	  echo "$$(pwd)/src" > "$$(python -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth"

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-tables:
	pytest benchmarks/ -s --benchmark-disable

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench-tables bench
