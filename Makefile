# Convenience targets; everything is plain pytest underneath.

.PHONY: install test bench bench-smoke bench-tables examples all

install:
	pip install -e '.[test]' --no-build-isolation || \
	  echo "$$(pwd)/src" > "$$(python -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth"

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Quick sanity pass of the perf-engine benchmark: small sizes, relaxed
# speedup floor, no pytest-benchmark storage, baseline left untouched.
bench-smoke:
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_perf_engine.py -s --benchmark-disable

bench-tables:
	pytest benchmarks/ -s --benchmark-disable

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench-tables bench
