# Convenience targets; everything is plain pytest underneath.

.PHONY: install test bench bench-smoke bench-tables examples verify-smoke all

install:
	pip install -e '.[test]' --no-build-isolation || \
	  echo "$$(pwd)/src" > "$$(python -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth"

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Quick sanity pass of the perf-engine benchmark: small sizes, relaxed
# speedup floor, no pytest-benchmark storage, baseline left untouched.
bench-smoke:
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_perf_engine.py -s --benchmark-disable

bench-tables:
	pytest benchmarks/ -s --benchmark-disable

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; done

# Guarantee-certification smoke: seed audit over the whole tree, then a
# quick paper-budget certification of two representative estimators.
verify-smoke:
	python -m repro verify seeds
	python -m repro verify guarantee --algorithm edge-sampling-triangles \
	  --algorithm mvv-twopass-triangles --budget-from-paper --quick \
	  --batch 25 --max-trials 50

all: test bench-tables bench
