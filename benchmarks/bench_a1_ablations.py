"""A1 — ablations of the design choices DESIGN.md calls out.

Each ablation removes one mechanism the paper argues is necessary and
shows the failure it was guarding against:

1. **Heavy-edge machinery off** (Theorem 2.1).  Without the level
   structures and the oracle, the estimator is exactly the
   prior-work prefix sampler of Section 2.1.1 — and on a heavy-edge
   workload it loses the heavy edge's triangles.

2. **Boundary shifts off** (Theorem 4.2).  With a single shift, the
   accept windows ``[(1+eps/6) b, 2 (1-eps/6) b)`` leave gaps around
   every class boundary; diamonds planted exactly at powers of two
   fall in the gaps and are missed.  The full shift sweep recovers
   them.

3. **Heavy-edge threshold eta** (Theorem 5.3).  With eta too small,
   every edge of a big diamond is "heavy", multi-heavy cycles are
   dropped, and the estimate collapses to the light remainder —
   quantifying the ``T (1 - 164/eta)`` accuracy loss.
"""

import statistics

import pytest

from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryThreePass,
    TriangleRandomOrder,
)
from repro.experiments import format_records, print_experiment
from repro.graphs import (
    complete_bipartite,
    disjoint_union,
    four_cycle_count,
    heavy_edge_graph,
    planted_diamonds,
    planted_four_cycles,
    triangle_count,
)
from repro.streams import AdjacencyListStream, RandomOrderStream

TRIALS = 7


def test_ablation_heavy_machinery():
    graph = heavy_edge_graph(1500, heavy_triangles=400, light_triangles=150, seed=1)
    truth = triangle_count(graph)

    def median_estimate(disable):
        estimates = [
            TriangleRandomOrder(
                t_guess=truth, epsilon=0.3, seed=seed, disable_heavy_path=disable
            )
            .run(RandomOrderStream(graph, seed=100 + seed))
            .estimate
            for seed in range(TRIALS)
        ]
        return statistics.median(estimates)

    full = median_estimate(disable=False)
    ablated = median_estimate(disable=True)
    rows = [
        {"variant": "full (Thm 2.1)", "median_est": round(full, 1), "truth": truth},
        {"variant": "heavy path off", "median_est": round(ablated, 1), "truth": truth},
    ]
    print_experiment("A1.1 (heavy-edge machinery)", format_records(rows))
    assert abs(full - truth) / truth < 0.3
    # without the heavy path the 400-triangle edge's mass is mostly lost
    assert ablated < 0.6 * truth


def test_ablation_boundary_shifts():
    # diamond sizes at exact powers of two sit in every single-shift gap
    graph = planted_diamonds(1200, sizes=[8] * 10 + [16] * 6 + [32] * 3, seed=2)
    truth = four_cycle_count(graph)

    def median_estimate(num_shifts):
        estimates = [
            FourCycleAdjacencyDiamond(
                t_guess=truth, epsilon=0.3, seed=seed, num_shifts=num_shifts
            )
            .run(AdjacencyListStream(graph, seed=100 + seed))
            .estimate
            for seed in range(3)
        ]
        return statistics.median(estimates)

    full = median_estimate(num_shifts=None)
    single = median_estimate(num_shifts=1)
    rows = [
        {"variant": "full shift sweep", "median_est": round(full, 1), "truth": truth},
        {"variant": "single shift", "median_est": round(single, 1), "truth": truth},
    ]
    print_experiment("A1.2 (boundary shifts)", format_records(rows))
    assert abs(full - truth) / truth < 0.3
    assert single < 0.5 * truth


def test_ablation_eta_threshold():
    graph = disjoint_union(
        [complete_bipartite(2, 60), planted_four_cycles(700, 90, seed=3)]
    )
    truth = four_cycle_count(graph)  # 1770 diamond cycles + 90 planted

    def estimate(eta):
        # exact-sampling mode (p=1) isolates the eta effect
        return (
            FourCycleArbitraryThreePass(t_guess=truth, epsilon=0.3, eta=eta, seed=1)
            .run(RandomOrderStream(graph, seed=5))
            .estimate
        )

    tiny_eta = estimate(0.5)
    large_eta = estimate(100.0)
    rows = [
        {"eta": 0.5, "estimate": round(tiny_eta, 1), "truth": truth},
        {"eta": 100.0, "estimate": round(large_eta, 1), "truth": truth},
    ]
    print_experiment("A1.3 (eta threshold, exact sampling)", format_records(rows))
    assert large_eta == pytest.approx(truth)
    # eta=0.5 marks the big diamond's edges heavy; its multi-heavy
    # cycles are dropped, leaving ~ the planted remainder
    assert tiny_eta < 0.25 * truth


@pytest.mark.benchmark(group="a1")
def test_a1_timing(benchmark):
    graph = heavy_edge_graph(1500, heavy_triangles=400, light_triangles=150, seed=1)
    truth = triangle_count(graph)

    def run_once():
        return TriangleRandomOrder(
            t_guess=truth, epsilon=0.3, seed=1, disable_heavy_path=True
        ).run(RandomOrderStream(graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=3, iterations=1) >= 0
