"""A2 — success-probability amplification (the paper's closing remark
to every theorem: run Theta(log 1/delta) copies, take the median).

Two measurements, one positive and one cautionary:

* For algorithms whose per-run noise is *coin-driven* (a reservoir
  sampler's eviction choices), parallel copies are genuinely
  independent and the median curve climbs as theory predicts.

* For the random-order triangle algorithm at an aggressive
  space setting, the dominant noise is *permutation-driven* (which
  triangles land inside the shared prefix S) — and parallel copies
  over the same stream share that randomness, so the median cannot
  repair it.  This is a real limit of in-stream amplification in the
  random order model, worth recording: the paper's success
  probability is over the permutation AND the coins jointly.
"""

import pytest

from repro.core import (
    MedianBoost,
    TriangleRandomOrder,
    copies_for_failure_probability,
)
from repro.experiments import format_records, print_experiment
from repro.graphs import planted_triangles, triangle_count
from repro.streams import RandomOrderStream

EPS_BAND = 0.3
TRIALS = 12


def _success_rate(graph, truth, copies, base_factory):
    hits = 0
    for trial in range(TRIALS):
        stream = RandomOrderStream(graph, seed=700 + trial)
        if copies == 1:
            algorithm = base_factory(trial)
        else:
            algorithm = MedianBoost(base_factory, copies=copies, seed=trial)
        estimate = algorithm.run(stream).estimate
        hits += abs(estimate - truth) / truth <= EPS_BAND
    return hits / TRIALS


def test_a2_boost_helps_coin_driven_noise():
    from repro.baselines import TriestImpr

    graph = planted_triangles(900, 200, extra_edges=1200, seed=4)
    truth = triangle_count(graph)

    def factory(seed):
        return TriestImpr(memory=220, seed=seed)

    rows = []
    rates = {}
    for copies in (1, 7):
        rate = _success_rate(graph, truth, copies, factory)
        rates[copies] = rate
        rows.append({"copies": copies, "success_rate": rate})
    print_experiment("A2 (boost vs coin-driven noise)", format_records(rows))
    assert rates[7] >= rates[1] + 0.2
    assert rates[7] >= 0.75


def test_a2_boost_cannot_fix_order_driven_noise():
    graph = planted_triangles(900, 200, extra_edges=1200, seed=4)
    truth = triangle_count(graph)

    def factory(seed):
        return TriangleRandomOrder(
            t_guess=truth, epsilon=0.3, c=0.3, use_log_factor=False, seed=seed
        )

    rows = []
    rates = {}
    for copies in (1, 7):
        rate = _success_rate(graph, truth, copies, factory)
        rates[copies] = rate
        rows.append({"copies": copies, "success_rate": rate})
    print_experiment(
        "A2 (boost vs shared-permutation noise — limited)", format_records(rows)
    )
    # no-harm guarantee holds, but the gain is bounded by the shared
    # permutation; we only assert it does not regress
    assert rates[7] >= rates[1] - 0.25


def test_a2_copy_calculator_matches_theory_shape():
    rows = [
        {
            "delta": delta,
            "copies": copies_for_failure_probability(delta, base_failure=1 / 3),
        }
        for delta in (0.2, 0.05, 0.01, 0.001)
    ]
    print_experiment("A2 (copies for target delta)", format_records(rows))
    counts = [row["copies"] for row in rows]
    assert counts == sorted(counts)


@pytest.mark.benchmark(group="a2")
def test_a2_timing(benchmark):
    graph = planted_triangles(900, 200, extra_edges=1200, seed=4)
    truth = triangle_count(graph)

    def run_once():
        return MedianBoost(
            lambda seed: TriangleRandomOrder(
                t_guess=truth, epsilon=0.3, c=0.3, use_log_factor=False, seed=seed
            ),
            copies=3,
            seed=1,
        ).run(RandomOrderStream(graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) > 0
