"""E10 — Theorem 5.7: one-pass arbitrary-order counting for dense
graphs (T = Omega(n^2)), with 3n counters per estimator copy, plus the
dynamic (insert/delete) extension the paper notes.
"""

import pytest

from repro.core import FourCycleArbitraryOnePass
from repro.experiments import format_records, print_experiment, run_trials
from repro.streams import ArbitraryOrderStream, RandomOrderStream

LAYOUT = dict(groups=7, group_size=40)
TRIALS = 5


def test_e10_accuracy(dense_workload):
    workload = dense_workload
    truth = workload.four_cycles
    assert truth > workload.n**2
    stats = run_trials(
        lambda seed: FourCycleArbitraryOnePass(
            t_guess=truth, epsilon=0.2, seed=seed, **LAYOUT
        ),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        {
            "workload": workload.name,
            "truth": truth,
            "median_est": round(stats.median_estimate, 1),
            "median_rel_err": round(stats.median_relative_error, 4),
            "passes": stats.passes,
        }
    ]
    print_experiment("E10 (Thm 5.7 accuracy)", format_records(rows))
    assert stats.passes == 1
    assert stats.median_relative_error < 0.3


def test_e10_counter_space_linear_in_n(dense_workload):
    """F2 state is 3 counters per touched vertex per copy — Theta(n)."""
    workload = dense_workload
    result = FourCycleArbitraryOnePass(
        t_guess=workload.four_cycles, epsilon=0.2, seed=1, groups=2, group_size=2
    ).run(RandomOrderStream(workload.graph, seed=1))
    copies = 4
    expected = copies * (1 + 3 * workload.n)
    assert result.space.peak_of("f2_counters") == expected


def test_e10_dynamic_updates(dense_workload):
    """Insert spurious edges, delete them: the estimate matches the
    insert-only run on the same final graph exactly."""
    workload = dense_workload
    algorithm = FourCycleArbitraryOnePass(
        t_guess=workload.four_cycles, epsilon=0.2, seed=5, groups=3, group_size=10
    )
    edges = list(workload.graph.edges())
    spurious = [(9001, 9002), (9002, 9003)]
    updates = (
        [(u, v, 1) for u, v in edges[: len(edges) // 2]]
        + [(u, v, 1) for u, v in spurious]
        + [(u, v, -1) for u, v in spurious]
        + [(u, v, 1) for u, v in edges[len(edges) // 2 :]]
    )
    dynamic = algorithm.run_dynamic(updates, n=workload.n)
    static = FourCycleArbitraryOnePass(
        t_guess=workload.four_cycles, epsilon=0.2, seed=5, groups=3, group_size=10
    ).run(ArbitraryOrderStream.from_graph(workload.graph))
    rows = [
        {"mode": "insert-only", "estimate": round(static.estimate, 1)},
        {"mode": "insert+delete", "estimate": round(dynamic, 1)},
    ]
    print_experiment("E10 (dynamic setting)", format_records(rows))
    assert dynamic == pytest.approx(static.estimate, rel=1e-6)


@pytest.mark.benchmark(group="e10")
def test_e10_timing(benchmark, dense_workload):
    workload = dense_workload

    def run_once():
        return FourCycleArbitraryOnePass(
            t_guess=workload.four_cycles, epsilon=0.2, seed=1, **LAYOUT
        ).run(RandomOrderStream(workload.graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) >= 0
