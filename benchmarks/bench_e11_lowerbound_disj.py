"""E11 — Theorem 5.8: the DISJOINTNESS reduction via two stars.

Claims under test:

* the construction has exactly 0 four-cycles on disjoint strings and
  >= C(k, 2) on intersecting ones;
* plugging the Theorem 5.6 distinguisher into the reduction yields a
  correct DISJ protocol (one-sided on NO instances);
* the protocol's "communication" (the distinguisher's space) grows as
  the group size k shrinks — the Omega(m / sqrt(T)) tradeoff.
"""

import pytest

from repro.core import FourCycleDistinguisher
from repro.experiments import format_records, print_experiment
from repro.graphs import four_cycle_count
from repro.lowerbounds import (
    DisjointnessInstance,
    build_two_stars,
    solve_disjointness_with_distinguisher,
)

STRING_LENGTH = 30


def test_e11_construction_combinatorics():
    rows = []
    for seed in range(6):
        for answer in (0, 1):
            instance = DisjointnessInstance.random_with_answer(
                STRING_LENGTH, answer, seed=seed
            )
            construction = build_two_stars(instance, k=10)
            cycles = four_cycle_count(construction.graph)
            rows.append(
                {
                    "seed": seed,
                    "answer": answer,
                    "four_cycles": cycles,
                    "expected": construction.expected_four_cycles,
                }
            )
            assert cycles == construction.expected_four_cycles
            if answer == 0:
                assert cycles == 0
            else:
                assert cycles >= 10 * 9 // 2
    print_experiment("E11 (two-star combinatorics)", format_records(rows))


def test_e11_protocol_correctness():
    correct = 0
    trials = 12
    for seed in range(trials):
        answer = seed % 2
        instance = DisjointnessInstance.random_with_answer(STRING_LENGTH, answer, seed=seed)
        decided, _space = solve_disjointness_with_distinguisher(
            instance,
            k=12,
            distinguisher_factory=lambda t: FourCycleDistinguisher(
                t_guess=t, c=3.0, seed=77
            ),
            seed=seed,
        )
        if answer == 0:
            assert decided == 0  # one-sided: NO can never be fooled
        correct += decided == answer
    rows = [{"instances": trials, "correct": correct}]
    print_experiment("E11 (DISJ protocol)", format_records(rows))
    assert correct >= trials - 2


def test_e11_communication_grows_as_k_shrinks():
    """The Omega(m / sqrt(T)) = Omega(n / k) tradeoff: with the total
    number of group vertices n held fixed (as in Theorem 5.8), shrinking
    the group size k (hence T = Theta(k^2)) forces more communication
    out of the distinguisher-based protocol."""
    n_total = 144
    rows = []
    spaces = []
    for k in (24, 12, 6):
        length = n_total // k
        instance = DisjointnessInstance.random_with_answer(length, 1, seed=3)
        _, space = solve_disjointness_with_distinguisher(
            instance,
            k=k,
            distinguisher_factory=lambda t: FourCycleDistinguisher(
                t_guess=t, c=3.0, seed=5
            ),
            seed=9,
        )
        rows.append(
            {
                "k": k,
                "string_length": length,
                "T=C(k,2)": k * (k - 1) // 2,
                "space_items": space,
            }
        )
        spaces.append(space)
    print_experiment("E11 (communication vs k, fixed n)", format_records(rows))
    # smaller k => smaller T => more space needed (Omega(n / k))
    assert spaces[-1] > spaces[0]


@pytest.mark.benchmark(group="e11")
def test_e11_timing(benchmark):
    instance = DisjointnessInstance.random_with_answer(STRING_LENGTH, 1, seed=1)

    def run_once():
        decided, _ = solve_disjointness_with_distinguisher(
            instance,
            k=12,
            distinguisher_factory=lambda t: FourCycleDistinguisher(
                t_guess=t, c=3.0, seed=4
            ),
            seed=2,
        )
        return decided

    assert benchmark.pedantic(run_once, rounds=3, iterations=1) in (0, 1)
