"""E12 — Lemma 5.1: at least T (1 - 82/eta) four-cycles contain at
most one bad edge (bad = lying in >= eta * sqrt(T) four-cycles).

Checked exactly — per-edge cycle counts and a full cycle enumeration —
on workloads engineered to stress it: overlapping diamonds (which
concentrate cycles on few edges) and a clique.
"""

import pytest

from repro.experiments import format_records, print_experiment
from repro.graphs import (
    check_lemma51,
    complete_bipartite,
    complete_graph,
    disjoint_union,
    planted_diamonds,
)


def _cycles_with_at_most_one_bad_edge(graph, eta):
    report = check_lemma51(graph, eta)
    return report.cycles_with_at_most_one_bad, report.total_cycles


WORKLOADS = {
    "big-diamond+small": lambda: disjoint_union(
        [complete_bipartite(2, 40), planted_diamonds(400, [4] * 20, seed=1)]
    ),
    "clique-K12": lambda: complete_graph(12),
    "diamond-mixture": lambda: planted_diamonds(
        700, [20] * 4 + [8] * 8 + [3] * 12, extra_edges=150, seed=2
    ),
}


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("eta", [2.0, 8.0, 90.0])
def test_e12_lemma_holds(workload_name, eta):
    graph = WORKLOADS[workload_name]()
    good, total = _cycles_with_at_most_one_bad_edge(graph, eta)
    bound = total * (1 - 82.0 / eta)
    assert good >= bound, (
        f"{workload_name}, eta={eta}: {good} good cycles < bound {bound}"
    )


def test_e12_report():
    rows = []
    for name, factory in sorted(WORKLOADS.items()):
        graph = factory()
        for eta in (2.0, 8.0, 90.0):
            good, total = _cycles_with_at_most_one_bad_edge(graph, eta)
            rows.append(
                {
                    "workload": name,
                    "eta": eta,
                    "T": total,
                    "cycles_with_<=1_bad": good,
                    "lemma_bound": round(max(0.0, total * (1 - 82.0 / eta)), 1),
                }
            )
    print_experiment("E12 (Lemma 5.1)", format_records(rows))


@pytest.mark.benchmark(group="e12")
def test_e12_timing(benchmark):
    graph = WORKLOADS["diamond-mixture"]()

    def run_once():
        return _cycles_with_at_most_one_bad_edge(graph, 8.0)

    good, total = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert 0 <= good <= total
