"""E13 — the cross-model frontier: "who wins" across the paper's
headline comparisons, on shared workloads.

The paper's contribution table (Section 1.1) makes three comparative
claims.  Each is measured here at matched parameterization:

1. random-order triangles — Theorem 2.1 at (1+eps) vs the CJ-style
   baseline and fixed-memory TRIEST;
2. adjacency-list four-cycles — Theorem 4.2 vs pair-based sampling;
3. arbitrary-order four-cycles — Theorem 5.3's m/T^{1/4} space vs
   Bera–Chakrabarti's m^2/T, with the predicted crossover direction
   for T below m^{4/3}.
"""

import pytest

from repro.baselines import (
    BeraChakrabartiFourCycles,
    CormodeJowhariTriangles,
    TriestImpr,
    WedgePairSamplingFourCycles,
)
from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryThreePass,
    TriangleRandomOrder,
)
from repro.experiments import format_records, print_experiment, run_trials
from repro.graphs import total_wedges
from repro.streams import AdjacencyListStream, RandomOrderStream

TRIALS = 5
EPS = 0.3


def _row(name, stats):
    return {
        "algorithm": name,
        "median_rel_err": round(stats.median_relative_error, 4),
        "mean_rel_err": round(stats.mean_relative_error, 4),
        "median_space": stats.median_space,
        "passes": stats.passes,
    }


def test_e13_triangle_frontier(heavy_triangle_workload):
    workload = heavy_triangle_workload
    truth = workload.triangles
    mv = run_trials(
        lambda seed: TriangleRandomOrder(t_guess=truth, epsilon=EPS, seed=seed),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    cj = run_trials(
        lambda seed: CormodeJowhariTriangles(t_guess=truth, epsilon=EPS),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    triest = run_trials(
        lambda seed: TriestImpr(memory=max(12, int(mv.median_space)), seed=seed),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        _row("mv-triangle-ro (Thm 2.1)", mv),
        _row("cormode-jowhari", cj),
        _row("triest-impr", triest),
    ]
    print_experiment("E13 (triangles, heavy workload)", format_records(rows))
    assert mv.mean_relative_error < cj.mean_relative_error
    assert mv.median_relative_error < EPS


def test_e13_adjacency_frontier(diamond_workload):
    workload = diamond_workload
    truth = workload.four_cycles
    diamond = run_trials(
        lambda seed: FourCycleAdjacencyDiamond(
            t_guess=truth, epsilon=EPS, c=0.3, seed=seed
        ),
        lambda seed: AdjacencyListStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    wedges = total_wedges(workload.graph)
    pair = run_trials(
        lambda seed: WedgePairSamplingFourCycles.for_space_budget(
            wedges, max(10, int(diamond.median_space)), seed=seed
        ),
        lambda seed: AdjacencyListStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        _row("diamond (Thm 4.2)", diamond),
        _row("wedge-pair sampling", pair),
    ]
    print_experiment("E13 (adjacency-list four-cycles)", format_records(rows))
    assert diamond.median_relative_error < EPS


def test_e13_arbitrary_frontier(medium_diamond_workload):
    workload = medium_diamond_workload
    truth = workload.four_cycles
    threepass = run_trials(
        lambda seed: FourCycleArbitraryThreePass(
            t_guess=truth, epsilon=EPS, eta=2.0, c=0.6, use_log_factor=False, seed=seed
        ),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    bc = run_trials(
        lambda seed: BeraChakrabartiFourCycles(t_guess=truth, epsilon=EPS, seed=seed),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        _row("three-pass (Thm 5.3)", threepass),
        _row("bera-chakrabarti", bc),
    ]
    print_experiment("E13 (arbitrary-order four-cycles)", format_records(rows))
    # who wins on space in the T < m^{4/3} regime: the paper's algorithm
    assert truth < workload.m ** (4 / 3)
    assert threepass.median_space < bc.median_space
    assert threepass.median_relative_error < EPS


@pytest.mark.benchmark(group="e13")
def test_e13_timing(benchmark, heavy_triangle_workload):
    workload = heavy_triangle_workload

    def run_once():
        return TriangleRandomOrder(
            t_guess=workload.triangles, epsilon=EPS, seed=1
        ).run(RandomOrderStream(workload.graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=3, iterations=1) > 0
