"""E14 — the error-vs-space frontier figure (extension experiment).

The paper's comparison table compresses to "less space at the same
accuracy"; this experiment draws the actual curve for random-order
triangle counting on the heavy-edge workload: each algorithm's budget
knob is swept, and (median space, median error) is measured per
setting.  The expected shape: Theorem 2.1's curve sits at or below the
prefix-sampling baseline across the shared budget range, with the gap
widening at small budgets where heavy-edge handling matters most.
"""

import pytest

from repro.baselines import CormodeJowhariTriangles, TriestImpr
from repro.core import TriangleRandomOrder
from repro.experiments import format_records, print_experiment
from repro.experiments.frontier import measure_frontier
from repro.streams import RandomOrderStream

EPS = 0.3
TRIALS = 5


def _frontiers(workload):
    truth = workload.triangles

    def stream_factory(seed):
        return RandomOrderStream(workload.graph, seed=seed)

    mv = measure_frontier(
        label="mv-triangle-ro (Thm 2.1)",
        knobs=[0.02, 0.05, 0.15, 0.5],
        algorithm_for_knob=lambda c, seed: TriangleRandomOrder(
            t_guess=truth, epsilon=EPS, c=c, use_log_factor=False, seed=seed
        ),
        stream_factory=stream_factory,
        truth=truth,
        epsilon=EPS,
        trials=TRIALS,
    )
    cj = measure_frontier(
        label="cormode-jowhari",
        knobs=[0.1, 0.3, 1.0, 3.0],
        algorithm_for_knob=lambda c, seed: CormodeJowhariTriangles(
            t_guess=truth, epsilon=EPS, c=c
        ),
        stream_factory=stream_factory,
        truth=truth,
        epsilon=EPS,
        trials=TRIALS,
    )
    triest = measure_frontier(
        label="triest-impr",
        knobs=[100, 300, 900, 2000],
        algorithm_for_knob=lambda memory, seed: TriestImpr(
            memory=int(memory), seed=seed
        ),
        stream_factory=stream_factory,
        truth=truth,
        epsilon=EPS,
        trials=TRIALS,
    )
    return mv, cj, triest


def test_e14_frontier(heavy_triangle_workload):
    mv, cj, triest = _frontiers(heavy_triangle_workload)
    rows = mv.rows() + cj.rows() + triest.rows()
    print_experiment("E14 (error vs space, heavy workload)", format_records(rows))

    # the shape claim: wherever both can run, Thm 2.1's achievable
    # error at a budget is no worse than CJ's, and strictly better at
    # the mid-range budgets where CJ's heavy-edge blindness bites
    shared_budgets = [500, 1000, 2000, 4000]
    for budget in shared_budgets:
        mv_error = mv.error_at_space(budget)
        cj_error = cj.error_at_space(budget)
        if mv_error != float("inf") and cj_error != float("inf"):
            assert mv_error <= cj_error + 0.05, (
                f"at budget {budget}: mv {mv_error} vs cj {cj_error}"
            )


@pytest.mark.benchmark(group="e14")
def test_e14_timing(benchmark, heavy_triangle_workload):
    workload = heavy_triangle_workload

    def run_once():
        return TriangleRandomOrder(
            t_guess=workload.triangles, epsilon=EPS, c=0.15, use_log_factor=False, seed=1
        ).run(RandomOrderStream(workload.graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=3, iterations=1) >= 0
