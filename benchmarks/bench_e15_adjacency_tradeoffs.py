"""E15 — the Section 4 tradeoff table (extension experiment).

The paper offers THREE adjacency-list four-cycle algorithms with
different (passes, space, regime) contracts:

| algorithm | passes | space | regime |
|---|---|---|---|
| Theorem 4.2 diamonds | 2 | Õ(ε⁻⁵m/√T) | any T |
| Theorem 4.3a moments | 1 | Õ(ε⁻⁴n⁴/T²) | T = Ω(n²) |
| Theorem 4.3b l2 sampling | 1 | Õ(Δ + ε⁻²n²/T) | T = Ω(n) |

This experiment runs all three on the *same* dense workload (where all
regimes hold) and on the sparse diamond workload (where only Theorem
4.2's contract applies), recording the predicted pattern: the diamond
algorithm is accurate on both; the one-pass algorithms are accurate on
the dense graph and collapse on the sparse one (their additive O(εT)
terms swamp a small T).
"""

import pytest

from repro.core import FourCycleAdjacencyDiamond, FourCycleL2Sampling, FourCycleMoment
from repro.experiments import format_records, print_experiment, run_trials
from repro.streams import AdjacencyListStream

TRIALS = 3


def _stats_for(workload, trials=TRIALS, include_l2=True):
    truth = workload.four_cycles

    def stream_factory(seed):
        return AdjacencyListStream(workload.graph, seed=seed)

    stats = {
        "diamond (Thm 4.2)": run_trials(
            lambda seed: FourCycleAdjacencyDiamond(
                t_guess=truth, epsilon=0.3, c=0.5, seed=seed
            ),
            stream_factory,
            truth=truth,
            trials=trials,
        ),
        "moment (Thm 4.3a)": run_trials(
            lambda seed: FourCycleMoment(
                t_guess=truth, epsilon=0.2, groups=7, group_size=40, seed=seed
            ),
            stream_factory,
            truth=truth,
            trials=trials,
        ),
    }
    if include_l2:
        # the l2 sampler's extraction enumerates all vertex pairs, so it
        # is only affordable (and only contractually applicable) on the
        # small dense workload
        stats["l2 (Thm 4.3b)"] = run_trials(
            lambda seed: FourCycleL2Sampling(
                t_guess=truth,
                epsilon=0.2,
                num_samplers=48,
                groups=7,
                group_size=30,
                seed=seed,
            ),
            stream_factory,
            truth=truth,
            trials=trials,
        )
    return stats


def _rows(workload, stats):
    return [
        {
            "workload": workload.name,
            "algorithm": name,
            "passes": s.passes,
            "median_rel_err": round(s.median_relative_error, 4),
            "median_space": s.median_space,
        }
        for name, s in stats.items()
    ]


def test_e15_dense_regime(dense_workload):
    stats = _stats_for(dense_workload)
    print_experiment(
        "E15 (dense: all three contracts hold)", format_records(_rows(dense_workload, stats))
    )
    assert stats["diamond (Thm 4.2)"].passes == 2
    assert stats["moment (Thm 4.3a)"].passes == 1
    assert stats["l2 (Thm 4.3b)"].passes == 1
    assert stats["diamond (Thm 4.2)"].median_relative_error < 0.3
    assert stats["moment (Thm 4.3a)"].median_relative_error < 0.35
    assert stats["l2 (Thm 4.3b)"].median_relative_error < 0.45


def test_e15_sparse_regime(diamond_workload):
    """T << n^2: only the two-pass diamond contract applies."""
    workload = diamond_workload
    assert workload.four_cycles < workload.n**2
    stats = _stats_for(workload, trials=3, include_l2=False)
    print_experiment(
        "E15 (sparse: only Thm 4.2's contract applies)",
        format_records(_rows(workload, stats)),
    )
    diamond_err = stats["diamond (Thm 4.2)"].median_relative_error
    moment_err = stats["moment (Thm 4.3a)"].median_relative_error
    assert diamond_err < 0.3
    # the moment estimator's additive n^2-scale error dominates here
    assert moment_err > diamond_err


@pytest.mark.benchmark(group="e15")
def test_e15_timing(benchmark, dense_workload):
    workload = dense_workload

    def run_once():
        return FourCycleMoment(
            t_guess=workload.four_cycles, epsilon=0.2, groups=5, group_size=20, seed=1
        ).run(AdjacencyListStream(workload.graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) >= 0
