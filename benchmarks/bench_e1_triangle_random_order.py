"""E1 — Theorem 2.1 accuracy vs baselines (random-order triangles).

Claim: a (1+eps)-approximation in one pass over a random-order stream,
improving the Cormode–Jowhari (3+eps) result; on heavy-edge inputs the
baselines' error spreads while Theorem 2.1 stays in band.

Rows reported: algorithm x workload, median estimate, relative error of
the median, mean relative error, median space (words).
"""

import pytest

from repro.baselines import CormodeJowhariTriangles, EdgeSamplingTriangles, TriestImpr
from repro.core import TriangleRandomOrder
from repro.experiments import print_experiment, format_records, run_trials
from repro.streams import RandomOrderStream

EPSILON = 0.3
TRIALS = 9


def _rows_for(workload):
    truth = workload.triangles
    mv_stats = run_trials(
        lambda seed: TriangleRandomOrder(t_guess=truth, epsilon=EPSILON, seed=seed),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    budget = max(12, int(mv_stats.median_space))
    competitors = {
        "mv-triangle-ro (Thm 2.1)": mv_stats,
        "cormode-jowhari": run_trials(
            lambda seed: CormodeJowhariTriangles(t_guess=truth, epsilon=EPSILON),
            lambda seed: RandomOrderStream(workload.graph, seed=seed),
            truth=truth,
            trials=TRIALS,
        ),
        "triest-impr (same space)": run_trials(
            lambda seed: TriestImpr(memory=budget, seed=seed),
            lambda seed: RandomOrderStream(workload.graph, seed=seed),
            truth=truth,
            trials=TRIALS,
        ),
        "edge-sampling p=0.3": run_trials(
            lambda seed: EdgeSamplingTriangles(p=0.3, seed=seed),
            lambda seed: RandomOrderStream(workload.graph, seed=seed),
            truth=truth,
            trials=TRIALS,
        ),
    }
    rows = []
    for name, stats in competitors.items():
        rows.append(
            {
                "algorithm": name,
                "workload": workload.name,
                "truth": truth,
                "median_est": round(stats.median_estimate, 1),
                "median_rel_err": round(stats.median_relative_error, 4),
                "mean_rel_err": round(stats.mean_relative_error, 4),
                "median_space": stats.median_space,
            }
        )
    return rows, competitors


def test_e1_light_workload(light_triangle_workload):
    rows, stats = _rows_for(light_triangle_workload)
    print_experiment("E1 (light workload)", format_records(rows))
    assert stats["mv-triangle-ro (Thm 2.1)"].median_relative_error < EPSILON


def test_e1_heavy_workload(heavy_triangle_workload):
    rows, stats = _rows_for(heavy_triangle_workload)
    print_experiment("E1 (heavy-edge workload)", format_records(rows))
    mv = stats["mv-triangle-ro (Thm 2.1)"]
    cj = stats["cormode-jowhari"]
    assert mv.median_relative_error < EPSILON
    # the paper's "who wins": heavy-edge handling beats prefix sampling
    assert mv.mean_relative_error < cj.mean_relative_error


@pytest.mark.benchmark(group="e1")
def test_e1_timing(benchmark, light_triangle_workload):
    workload = light_triangle_workload
    truth = workload.triangles

    def run_once():
        algorithm = TriangleRandomOrder(t_guess=truth, epsilon=EPSILON, seed=1)
        return algorithm.run(RandomOrderStream(workload.graph, seed=1)).estimate

    estimate = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert estimate > 0
