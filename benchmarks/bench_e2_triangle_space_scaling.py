"""E2 — Theorem 2.1 space scaling: stored words ~ Õ(m / sqrt(T)).

A family of graphs with (nearly) constant m and planted triangle count
T swept over a decade and a half.  The claim is Õ(m / sqrt(T)): the
hidden polylog is *real* — the algorithm keeps one level structure per
``i <= log2 sqrt(T)``, so the raw measured exponent sits above -1/2 by
the log-level growth.  We therefore report two fits:

* raw slope of total space vs T (should be clearly negative), and
* slope of space-per-level vs T (the per-level storage is Θ(m/sqrt(T)),
  so this fit should sit near -1/2).

The paper's literal constants put laptop-scale runs into exact mode
(every probability 1), so the sweep uses the documented practical
scaling c=0.01 without the log n factor; the slopes are the claim
under test, not the constants.
"""

import math
import statistics

import pytest

from repro.core import TriangleRandomOrder
from repro.experiments import format_records, loglog_slope, print_experiment
from repro.graphs import planted_triangles, triangle_count
from repro.streams import RandomOrderStream

# (num planted triangles, noise edges) chosen to keep m ~ 3200
SWEEP = [(50, 3050), (150, 2750), (450, 1850), (1000, 200)]
N_VERTICES = 3200
C_SCALE = 0.01


def _levels(truth: float) -> int:
    return max(1, math.ceil(math.log2(math.sqrt(truth)))) + 1


def _measure():
    rows = []
    ts, spaces, per_level = [], [], []
    for planted, noise in SWEEP:
        graph = planted_triangles(N_VERTICES, planted, extra_edges=noise, seed=7)
        truth = triangle_count(graph)
        per_seed = []
        for seed in range(3):
            result = TriangleRandomOrder(
                t_guess=truth, epsilon=0.3, c=C_SCALE, use_log_factor=False, seed=seed
            ).run(RandomOrderStream(graph, seed=50 + seed))
            per_seed.append(result.space_items)
        space = statistics.median(per_seed)
        rows.append(
            {
                "T": truth,
                "m": graph.num_edges,
                "median_space": space,
                "levels": _levels(truth),
                "space_per_level": round(space / _levels(truth), 1),
                "m_over_sqrtT": round(graph.num_edges / truth**0.5, 1),
            }
        )
        ts.append(float(truth))
        spaces.append(float(space))
        per_level.append(space / _levels(truth))
    return rows, ts, spaces, per_level


def test_e2_space_scaling():
    rows, ts, spaces, per_level = _measure()
    raw_slope = loglog_slope(ts, spaces)
    corrected_slope = loglog_slope(ts, per_level)
    rows.append(
        {
            "T": "slope",
            "m": "",
            "median_space": round(raw_slope, 3),
            "levels": "",
            "space_per_level": round(corrected_slope, 3),
            "m_over_sqrtT": "",
        }
    )
    print_experiment("E2 (space ~ m/sqrt(T), log-corrected)", format_records(rows))
    assert raw_slope < -0.2, f"raw slope {raw_slope} shows no T-savings at all"
    assert -0.75 < corrected_slope < -0.3, (
        f"per-level slope {corrected_slope} is not ~ -1/2"
    )


@pytest.mark.benchmark(group="e2")
def test_e2_timing(benchmark):
    graph = planted_triangles(N_VERTICES, 450, extra_edges=1850, seed=7)
    truth = triangle_count(graph)

    def run_once():
        return TriangleRandomOrder(
            t_guess=truth, epsilon=0.3, c=C_SCALE, use_log_factor=False, seed=1
        ).run(RandomOrderStream(graph, seed=1)).space_items

    space = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert space > 0
