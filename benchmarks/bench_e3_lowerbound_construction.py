"""E3 — Theorem 2.6 / Figure 1: the random-order lower-bound
construction behaves as proved.

Three properties are measured:

1. combinatorics — the graph has exactly T triangles iff the planted
   bit is 1 (checked over many random instances);
2. prefix secrecy — a random prefix of ~ m / sqrt(T) edges almost
   never contains two star edges at the same W vertex (the witness
   that reveals the special pair);
3. the Theorem 2.7 protocol — the streaming algorithm run across the
   random partition decides 0-vs-T correctly, with communication equal
   to its space.
"""

import math

import pytest

from repro.core import TriangleRandomOrder
from repro.experiments import format_records, print_experiment
from repro.graphs import triangle_count
from repro.lowerbounds import (
    build_figure1,
    prefix_reveals_special_pair,
    run_random_partition_protocol,
)


def test_e3_combinatorics():
    rows = []
    for seed in range(10):
        construction = build_figure1(n=8, t=12, seed=seed)
        count = triangle_count(construction.graph)
        rows.append(
            {
                "seed": seed,
                "planted_bit": construction.planted_bit,
                "triangles": count,
                "expected": construction.expected_triangles,
            }
        )
        assert count == construction.expected_triangles
    print_experiment("E3 (construction combinatorics)", format_records(rows))


def test_e3_prefix_secrecy():
    construction = build_figure1(n=10, t=25, seed=1, x=[[1] * 10] * 10)
    rows = []
    for factor in (0.5, 1.0, 4.0, 16.0):
        fraction = min(1.0, factor / math.sqrt(construction.t))
        reveals = sum(
            prefix_reveals_special_pair(construction, fraction, seed=seed)
            for seed in range(25)
        )
        rows.append(
            {
                "prefix_fraction": round(fraction, 3),
                "x_m_over_sqrtT": factor,
                "reveal_rate": reveals / 25,
            }
        )
    print_experiment("E3 (prefix secrecy)", format_records(rows))
    # short prefixes rarely reveal; long ones almost always do
    assert rows[0]["reveal_rate"] <= 0.5
    assert rows[-1]["reveal_rate"] >= 0.8


def test_e3_protocol_accuracy():
    correct = 0
    comms = []
    trials = 8
    for seed in range(trials):
        construction = build_figure1(n=8, t=16, seed=seed)
        votes = 0
        for rep in range(3):
            outcome = run_random_partition_protocol(
                construction,
                lambda: TriangleRandomOrder(t_guess=16, epsilon=0.3, seed=7 + rep),
                alice_probability=0.25,
                seed=seed * 31 + rep,
            )
            votes += outcome.decided_positive
            comms.append(outcome.communication_items)
        correct += (votes >= 2) == bool(construction.planted_bit)
    rows = [
        {
            "instances": trials,
            "correct": correct,
            "mean_communication_items": round(sum(comms) / len(comms), 1),
        }
    ]
    print_experiment("E3 (random-partition protocol)", format_records(rows))
    assert correct >= trials - 1


@pytest.mark.benchmark(group="e3")
def test_e3_timing(benchmark):
    def run_once():
        construction = build_figure1(n=8, t=16, seed=3)
        outcome = run_random_partition_protocol(
            construction,
            lambda: TriangleRandomOrder(t_guess=16, epsilon=0.3, seed=5),
            alice_probability=0.25,
            seed=11,
        )
        return outcome.communication_items

    assert benchmark.pedantic(run_once, rounds=3, iterations=1) > 0
