"""E4 — Lemma 3.1: the Useful Algorithm's three guarantees.

a. if W <= M, the estimate is W +- eps*M;
b. estimate < M implies W <= 2M (no false smalls on huge graphs);
c. estimate >= M implies W >= M/2 (no false bigs on tiny graphs).

Measured on unit-weight random graphs of swept density with both
samples drawn at the same probability, streamed in random vertex order.
"""

import random
import statistics

import pytest

from repro.core import UsefulAlgorithm, bernoulli_vertex_sample
from repro.experiments import format_records, print_experiment
from repro.graphs import erdos_renyi

SAMPLE_P = 0.5
TRIALS = 9


def _run_once(graph, m_bound, seed):
    r1, r2 = bernoulli_vertex_sample(graph.vertices(), SAMPLE_P, seed=seed)
    algorithm = UsefulAlgorithm(r1=r1, r2=r2, p=SAMPLE_P, m_bound=m_bound)
    order = sorted(graph.vertices())
    random.Random(seed).shuffle(order)
    observable = algorithm.r1 | algorithm.r2
    for v in order:
        weights = {u: 1.0 for u in graph.neighbors(v) if u in observable}
        algorithm.process_vertex(v, weights)
    return algorithm.estimate()


def test_e4_additive_error():
    rows = []
    for density, n in ((0.05, 150), (0.1, 150), (0.2, 150)):
        graph = erdos_renyi(n, density, seed=3)
        w = graph.num_edges
        m_bound = 1.5 * w
        errors = sorted(
            abs(_run_once(graph, m_bound, seed) - w) / m_bound for seed in range(TRIALS)
        )
        rows.append(
            {
                "W": w,
                "M": m_bound,
                "median_error_over_M": round(errors[TRIALS // 2], 4),
                "max_error_over_M": round(errors[-1], 4),
            }
        )
        assert errors[TRIALS // 2] <= 0.4  # eps*M with generous eps
    print_experiment("E4 (Lemma 3.1a: W-hat = W +- eps*M)", format_records(rows))


def test_e4_separation():
    dense = erdos_renyi(120, 0.3, seed=1)
    sparse = erdos_renyi(120, 0.01, seed=1)
    m_bound = dense.num_edges / 2.0  # dense: W = 2M; sparse: W << M/2
    rows = []
    for graph, label, want_large in ((dense, "W=2M", True), (sparse, "W<<M/2", False)):
        votes = sum(
            (_run_once(graph, m_bound, seed) >= m_bound) == want_large
            for seed in range(TRIALS)
        )
        rows.append({"case": label, "correct_decisions": f"{votes}/{TRIALS}"})
        assert votes >= TRIALS - 2
    print_experiment("E4 (Lemma 3.1b,c: 2M vs M/2 separation)", format_records(rows))


def test_e4_space_scales_with_heavy_count():
    """Space = samples + one counter per heavy R2 vertex (Section 3.0.3)."""
    graph = erdos_renyi(150, 0.15, seed=5)
    w = graph.num_edges
    small_m = w / 16.0  # many vertices exceed sqrt(M): more counters
    large_m = 16.0 * w  # threshold enormous: no heavy counters
    r1, r2 = bernoulli_vertex_sample(graph.vertices(), SAMPLE_P, seed=9)

    def heavy_counters(m_bound):
        algorithm = UsefulAlgorithm(r1=r1, r2=r2, p=SAMPLE_P, m_bound=m_bound)
        order = sorted(graph.vertices())
        random.Random(9).shuffle(order)
        observable = algorithm.r1 | algorithm.r2
        for v in order:
            algorithm.process_vertex(
                v, {u: 1.0 for u in graph.neighbors(v) if u in observable}
            )
        return algorithm.heavy_counter_count

    assert heavy_counters(small_m) > heavy_counters(large_m)


@pytest.mark.benchmark(group="e4")
def test_e4_timing(benchmark):
    graph = erdos_renyi(150, 0.1, seed=3)

    def run_once():
        return _run_once(graph, 1.5 * graph.num_edges, seed=2)

    assert benchmark.pedantic(run_once, rounds=3, iterations=1) >= 0
