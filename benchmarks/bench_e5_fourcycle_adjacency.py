"""E5 — Theorem 4.2: two-pass adjacency-list four-cycle counting via
diamonds, vs the wedge-pair-sampling comparator.

Claims under test:

* (1+eps) accuracy in exactly two passes on a workload mixing diamond
  sizes across decades;
* at matched expected sample size, the diamond grouping beats counting
  cycles pair-by-pair on large-diamond inputs (the variance argument
  of Section 4.1).
"""

import pytest

from repro.baselines import WedgePairSamplingFourCycles
from repro.core import FourCycleAdjacencyDiamond
from repro.experiments import format_records, print_experiment, run_trials
from repro.graphs import total_wedges
from repro.streams import AdjacencyListStream

EPSILON = 0.3
TRIALS = 5


def test_e5_accuracy_and_passes(diamond_workload):
    workload = diamond_workload
    truth = workload.four_cycles
    stats = run_trials(
        lambda seed: FourCycleAdjacencyDiamond(
            t_guess=truth, epsilon=EPSILON, c=0.5, seed=seed
        ),
        lambda seed: AdjacencyListStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        {
            "workload": workload.name,
            "truth": truth,
            "median_est": round(stats.median_estimate, 1),
            "median_rel_err": round(stats.median_relative_error, 4),
            "passes": stats.passes,
            "median_space": stats.median_space,
        }
    ]
    print_experiment("E5 (Thm 4.2 accuracy)", format_records(rows))
    assert stats.passes == 2
    assert stats.median_relative_error < EPSILON


def test_e5_vs_wedge_pair_baseline(diamond_workload):
    """Matched-budget comparison on a large-diamond-dominated graph."""
    workload = diamond_workload
    truth = workload.four_cycles
    wedges = total_wedges(workload.graph)

    diamond_stats = run_trials(
        lambda seed: FourCycleAdjacencyDiamond(
            t_guess=truth, epsilon=EPSILON, c=0.3, seed=seed
        ),
        lambda seed: AdjacencyListStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    # hand the baseline the same expected wedge-sample budget
    budget = max(10, int(diamond_stats.median_space))
    baseline_stats = run_trials(
        lambda seed: WedgePairSamplingFourCycles.for_space_budget(
            wedges, budget, seed=seed
        ),
        lambda seed: AdjacencyListStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        {
            "algorithm": "diamond (Thm 4.2)",
            "median_rel_err": round(diamond_stats.median_relative_error, 4),
            "mean_rel_err": round(diamond_stats.mean_relative_error, 4),
            "budget_items": budget,
        },
        {
            "algorithm": "wedge-pair sampling",
            "median_rel_err": round(baseline_stats.median_relative_error, 4),
            "mean_rel_err": round(baseline_stats.mean_relative_error, 4),
            "budget_items": budget,
        },
    ]
    print_experiment("E5 (diamond grouping vs pair sampling)", format_records(rows))
    assert diamond_stats.median_relative_error < EPSILON


@pytest.mark.benchmark(group="e5")
def test_e5_timing(benchmark, diamond_workload):
    workload = diamond_workload
    truth = workload.four_cycles

    def run_once():
        return FourCycleAdjacencyDiamond(
            t_guess=truth, epsilon=EPSILON, c=0.3, seed=1
        ).run(AdjacencyListStream(workload.graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) > 0
