"""E6 — Theorem 4.3a: one-pass adjacency-list counting via moments.

Claim: (1+eps) in one pass when T = Omega(n^2), estimating F2(x) with
O(1)-per-copy counters and F1(z) by hash pair sampling.  The component
table reports both moment estimates against their exact values.
"""

import statistics

import pytest

from repro.core import FourCycleMoment
from repro.experiments import format_records, print_experiment, run_trials
from repro.graphs import wedge_counts
from repro.streams import AdjacencyListStream

EPSILON = 0.2
LAYOUT = dict(groups=7, group_size=60)
TRIALS = 5


def test_e6_accuracy(dense_workload):
    workload = dense_workload
    truth = workload.four_cycles
    assert truth > workload.n**2, "workload must be in the T = Omega(n^2) regime"
    stats = run_trials(
        lambda seed: FourCycleMoment(t_guess=truth, epsilon=EPSILON, seed=seed, **LAYOUT),
        lambda seed: AdjacencyListStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        {
            "workload": workload.name,
            "n^2": workload.n**2,
            "truth": truth,
            "median_est": round(stats.median_estimate, 1),
            "median_rel_err": round(stats.median_relative_error, 4),
            "passes": stats.passes,
        }
    ]
    print_experiment("E6 (Thm 4.3a accuracy)", format_records(rows))
    assert stats.passes == 1
    assert stats.median_relative_error < 0.3


def test_e6_moment_components(dense_workload):
    workload = dense_workload
    x = wedge_counts(workload.graph)
    f2_true = sum(v * v for v in x.values())
    cap = 1.0 / EPSILON
    f1_true = sum(min(v, cap) for v in x.values())

    f2_estimates, f1_estimates = [], []
    for seed in range(TRIALS):
        result = FourCycleMoment(
            t_guess=workload.four_cycles, epsilon=EPSILON, seed=seed, **LAYOUT
        ).run(AdjacencyListStream(workload.graph, seed=seed))
        f2_estimates.append(result.details["f2_hat"])
        f1_estimates.append(result.details["f1_hat"])
    rows = [
        {
            "moment": "F2(x)",
            "true": f2_true,
            "median_est": round(statistics.median(f2_estimates), 1),
            "median_rel_err": round(
                abs(statistics.median(f2_estimates) - f2_true) / f2_true, 4
            ),
        },
        {
            "moment": "F1(z)",
            "true": f1_true,
            "median_est": round(statistics.median(f1_estimates), 1),
            "median_rel_err": (
                round(abs(statistics.median(f1_estimates) - f1_true) / f1_true, 4)
                if f1_true
                else 0
            ),
        },
    ]
    print_experiment("E6 (moment components)", format_records(rows))
    assert abs(statistics.median(f2_estimates) - f2_true) / f2_true < 0.3
    # F1 additive term is small relative to F2 in this regime
    assert f1_true < 0.2 * f2_true


@pytest.mark.benchmark(group="e6")
def test_e6_timing(benchmark, dense_workload):
    workload = dense_workload

    def run_once():
        return FourCycleMoment(
            t_guess=workload.four_cycles, epsilon=EPSILON, seed=1, **LAYOUT
        ).run(AdjacencyListStream(workload.graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) >= 0
