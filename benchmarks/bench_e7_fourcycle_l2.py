"""E7 — Theorem 4.3b: one-pass adjacency-list counting via l2 sampling.

Claim: Õ(Delta + eps^-2 n^2 / T) space — an O(Delta) adjacency buffer
plus a bank of l2 samplers over the wedge vector; each sample (uv, x_uv)
contributes a Bernoulli((x-1)/(4x)) vote and T = mean * F2.
"""

import statistics

import pytest

from repro.core import FourCycleL2Sampling
from repro.experiments import format_records, print_experiment, run_trials
from repro.streams import AdjacencyListStream

SAMPLERS = 60
LAYOUT = dict(groups=7, group_size=40)
TRIALS = 3


def test_e7_accuracy(dense_workload):
    workload = dense_workload
    truth = workload.four_cycles
    stats = run_trials(
        lambda seed: FourCycleL2Sampling(
            t_guess=truth, epsilon=0.2, num_samplers=SAMPLERS, seed=seed, **LAYOUT
        ),
        lambda seed: AdjacencyListStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    rows = [
        {
            "workload": workload.name,
            "truth": truth,
            "median_est": round(stats.median_estimate, 1),
            "median_rel_err": round(stats.median_relative_error, 4),
            "passes": stats.passes,
        }
    ]
    print_experiment("E7 (Thm 4.3b accuracy)", format_records(rows))
    assert stats.passes == 1
    assert stats.median_relative_error < 0.45


def test_e7_sampler_yield_and_space(dense_workload):
    workload = dense_workload
    result = FourCycleL2Sampling(
        t_guess=workload.four_cycles,
        epsilon=0.2,
        num_samplers=SAMPLERS,
        seed=1,
        **LAYOUT,
    ).run(AdjacencyListStream(workload.graph, seed=1))
    details = result.details
    rows = [
        {
            "samplers": SAMPLERS,
            "successful_samples": details["num_samples"],
            "bernoulli_successes": details["bernoulli_successes"],
            "delta_buffer": details["max_degree"],
            "candidate_pairs": details["num_candidate_pairs"],
        }
    ]
    print_experiment("E7 (sampler yield)", format_records(rows))
    # a healthy fraction of the bank must yield samples
    assert details["num_samples"] >= SAMPLERS // 3
    # the Delta buffer matches the true maximum degree
    assert details["max_degree"] == workload.graph.max_degree()


def test_e7_sample_values_follow_x_distribution(dense_workload):
    """Sampled x values skew toward large wedge counts (x^2 weighting)."""
    from repro.graphs import wedge_counts

    workload = dense_workload
    x = wedge_counts(workload.graph)
    mean_x = statistics.mean(x.values())
    result = FourCycleL2Sampling(
        t_guess=workload.four_cycles,
        epsilon=0.2,
        num_samplers=SAMPLERS,
        seed=2,
        **LAYOUT,
    ).run(AdjacencyListStream(workload.graph, seed=2))
    values = result.details["sampled_values"]
    assert values
    assert statistics.mean(values) > mean_x  # size-biased sampling


@pytest.mark.benchmark(group="e7")
def test_e7_timing(benchmark, dense_workload):
    workload = dense_workload

    def run_once():
        return FourCycleL2Sampling(
            t_guess=workload.four_cycles,
            epsilon=0.2,
            num_samplers=20,
            seed=1,
            groups=3,
            group_size=10,
        ).run(AdjacencyListStream(workload.graph, seed=1)).estimate

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) >= 0
