"""E8 — Theorem 5.3: three-pass arbitrary-order four-cycle counting,
vs the Bera–Chakrabarti-style baseline.

Claims under test:

* (1+eps) accuracy in three passes with real sub-sampling (p < 1);
* space scaling ~ m / T^{1/4} (log-corrected fit, as in E2);
* at the same T, the paper's algorithm stores fewer items than the
  BC baseline's Theta(m^2/T) pair budget whenever T <= m^{4/3} — the
  crossover the paper states.
"""

import statistics

import pytest

from repro.baselines import BeraChakrabartiFourCycles
from repro.core import FourCycleArbitraryThreePass
from repro.experiments import format_records, loglog_slope, print_experiment, run_trials
from repro.graphs import four_cycle_count, planted_diamonds
from repro.streams import RandomOrderStream

EPSILON = 0.3
SETTINGS = dict(epsilon=EPSILON, eta=2.0, c=0.6, use_log_factor=False)
TRIALS = 5


def test_e8_accuracy(medium_diamond_workload):
    workload = medium_diamond_workload
    truth = workload.four_cycles
    stats = run_trials(
        lambda seed: FourCycleArbitraryThreePass(t_guess=truth, seed=seed, **SETTINGS),
        lambda seed: RandomOrderStream(workload.graph, seed=seed),
        truth=truth,
        trials=TRIALS,
    )
    sample_result = stats.results[0]
    rows = [
        {
            "workload": workload.name,
            "truth": truth,
            "p": round(sample_result.details["p"], 3),
            "median_est": round(stats.median_estimate, 1),
            "median_rel_err": round(stats.median_relative_error, 4),
            "passes": stats.passes,
            "median_space": stats.median_space,
        }
    ]
    print_experiment("E8 (Thm 5.3 accuracy)", format_records(rows))
    assert stats.passes == 3
    assert sample_result.details["p"] < 1.0
    assert stats.median_relative_error < EPSILON


def test_e8_space_vs_bc_crossover(medium_diamond_workload):
    """BC needs ~ m^2/T pairs; Thm 5.3 needs ~ m/T^{1/4} items.
    On this workload T << m^{4/3}, so the three-pass algorithm must
    store fewer items."""
    workload = medium_diamond_workload
    truth = workload.four_cycles
    assert truth < workload.m ** (4 / 3)

    mv = FourCycleArbitraryThreePass(t_guess=truth, seed=1, **SETTINGS).run(
        RandomOrderStream(workload.graph, seed=1)
    )
    bc = BeraChakrabartiFourCycles(t_guess=truth, epsilon=EPSILON, seed=1).run(
        RandomOrderStream(workload.graph, seed=1)
    )
    rows = [
        {"algorithm": "three-pass (Thm 5.3)", "space_items": mv.space_items},
        {"algorithm": "bera-chakrabarti", "space_items": bc.space_items},
    ]
    print_experiment("E8 (space at T << m^{4/3})", format_records(rows))
    assert mv.space_items < bc.space_items


def test_e8_space_scaling():
    """Sampling-storage vs T with m held ~ constant: exponent ~ -1/4.

    The algorithm's space has two parts with opposite T-dependence —
    the samples S0/S1/S2 at Θ(m p) = Θ(m / T^{1/4}), and the stored
    cycles at Θ(T p^3) = Θ(T^{1/4}), which the paper bounds by
    m / T^{1/4} only via T <= 2 m^2.  The scaling claim lives in the
    sampling component, so that is what the slope is fitted on; the
    total (with its predicted rise in the stored-cycle term) is
    reported alongside.
    """
    ts, sample_spaces, rows = [], [], []
    for count, noise in ((15, 3000), (40, 2300), (110, 450)):
        graph = planted_diamonds(4000, [12] * count, extra_edges=noise, seed=3)
        truth = four_cycle_count(graph)
        per_seed_sample, per_seed_total = [], []
        for seed in range(3):
            result = FourCycleArbitraryThreePass(
                t_guess=truth, epsilon=EPSILON, eta=2.0, c=0.3, use_log_factor=False, seed=seed
            ).run(RandomOrderStream(graph, seed=40 + seed))
            breakdown = result.space.breakdown()
            per_seed_sample.append(
                breakdown.get("S0_edges", 0) + breakdown.get("S1_S2_edges", 0)
            )
            per_seed_total.append(result.space_items)
        sample_space = statistics.median(per_seed_sample)
        rows.append(
            {
                "T": truth,
                "m": graph.num_edges,
                "sample_space": sample_space,
                "total_space": statistics.median(per_seed_total),
            }
        )
        ts.append(float(truth))
        sample_spaces.append(float(sample_space))
    slope = loglog_slope(ts, sample_spaces)
    rows.append({"T": "slope", "m": "", "sample_space": round(slope, 3), "total_space": ""})
    print_experiment("E8 (sample space ~ m/T^{1/4})", format_records(rows))
    assert -0.6 < slope < -0.1, f"slope {slope} is not ~ -1/4"


@pytest.mark.benchmark(group="e8")
def test_e8_timing(benchmark, medium_diamond_workload):
    workload = medium_diamond_workload
    truth = workload.four_cycles

    def run_once():
        return FourCycleArbitraryThreePass(t_guess=truth, seed=1, **SETTINGS).run(
            RandomOrderStream(workload.graph, seed=1)
        ).estimate

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) > 0
