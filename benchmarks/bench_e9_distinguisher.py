"""E9 — Theorem 5.6: the two-pass 0-vs-T distinguisher.

Claims under test:

* detection probability >= 2/3 on T-cycle instances, zero false
  positives on cycle-free instances (one-sided);
* collected induced edges bounded by the Kővári–Sós–Turán cap
  2 |V_S|^{3/2} — the Õ(m^{3/2}/T^{3/4}) space driver.
"""

import math

import pytest

from repro.core import FourCycleDistinguisher
from repro.experiments import decision_rate, format_records, print_experiment
from repro.graphs import friendship_graph
from repro.streams import ArbitraryOrderStream, RandomOrderStream

TRIALS = 12


def test_e9_detection_rates(sparse_c4_workload):
    yes_workload = sparse_c4_workload
    truth = yes_workload.four_cycles
    no_graph = friendship_graph(600)

    yes_rate = decision_rate(
        lambda seed: FourCycleDistinguisher(t_guess=truth, c=3.0, seed=seed).decide(
            RandomOrderStream(yes_workload.graph, seed=seed)
        ),
        trials=TRIALS,
    )
    no_rate = decision_rate(
        lambda seed: FourCycleDistinguisher(t_guess=truth, c=3.0, seed=seed).decide(
            ArbitraryOrderStream.from_graph(no_graph)
        ),
        trials=TRIALS,
    )
    rows = [
        {"instance": f"T={truth} cycles", "detection_rate": yes_rate},
        {"instance": "cycle-free", "detection_rate": no_rate},
    ]
    print_experiment("E9 (0 vs T detection)", format_records(rows))
    assert yes_rate >= 2 / 3
    assert no_rate == 0.0


def test_e9_space_cap(sparse_c4_workload):
    workload = sparse_c4_workload
    truth = workload.four_cycles
    rows = []
    for seed in range(5):
        result = FourCycleDistinguisher(t_guess=truth, c=1.5, seed=seed).run(
            RandomOrderStream(workload.graph, seed=seed)
        )
        cap = 2.0 * result.details["sampled_vertices"] ** 1.5
        rows.append(
            {
                "seed": seed,
                "sampled_vertices": result.details["sampled_vertices"],
                "induced_edges": result.details["induced_edges_collected"],
                "kst_cap": round(cap, 1),
                "found": result.details["found"],
            }
        )
        assert result.details["induced_edges_collected"] <= math.ceil(cap)
    print_experiment("E9 (KST space cap)", format_records(rows))


def test_e9_space_shrinks_with_t(sparse_c4_workload):
    """Larger promised T => smaller sample => fewer stored items."""
    workload = sparse_c4_workload
    small = FourCycleDistinguisher(t_guess=50, c=1.5, seed=1).run(
        RandomOrderStream(workload.graph, seed=1)
    )
    large = FourCycleDistinguisher(t_guess=5000, c=1.5, seed=1).run(
        RandomOrderStream(workload.graph, seed=1)
    )
    assert large.space_items < small.space_items


@pytest.mark.benchmark(group="e9")
def test_e9_timing(benchmark, sparse_c4_workload):
    workload = sparse_c4_workload

    def run_once():
        return FourCycleDistinguisher(
            t_guess=workload.four_cycles, c=3.0, seed=1
        ).decide(RandomOrderStream(workload.graph, seed=1))

    benchmark.pedantic(run_once, rounds=3, iterations=1)
