"""Perf-engine benchmark: legacy seed path vs vectorized/cached engine.

Compares a representative E1 (random-order triangles) / E5 (four-cycle
baselines) epsilon sweep under two configurations:

* **legacy** — the seed repo's path: scalar-loop generators
  (``erdos_renyi_loop``) and pure-python exact counters, recomputing
  the ground truth at every sweep point, serial trials;
* **engine** — numpy generators, matrix-identity ``fast_counts``
  behind the :mod:`repro.experiments.groundtruth` LRU cache, and the
  ``n_jobs``-aware trial runner (``n_jobs=-1`` fans trials across all
  cores on multi-core hosts; on a single core it stays serial).

The sweep varies epsilon with the workload pinned, which is the shape
of the repo's E1/E5 accuracy/space sweeps: the legacy path pays
generation + exact counting per point, the engine pays it once.  Each
point runs one Theorem 2.1 triangle trial and one four-cycle
edge-sampling baseline trial, matching the trial mix of the E1/E5
benches while keeping the (unchanged) stream-processing cost from
drowning out the substrate being measured.

Run modes::

    pytest benchmarks/bench_perf_engine.py -s --benchmark-disable   # full
    REPRO_BENCH_QUICK=1 pytest ... -s --benchmark-disable           # smoke

Full mode asserts the >=4x tentpole speedup and refreshes the
``BENCH_engine.json`` baseline at the repo root; quick mode only
requires the engine to not be slower and does not touch the baseline.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.baselines import EdgeSamplingFourCycles
from repro.core import TriangleRandomOrder
from repro.experiments import cache_info, cached_ground_truth, clear_cache, run_trials
from repro.experiments.parallel import make_factory
from repro.graphs import (
    erdos_renyi,
    erdos_renyi_loop,
    four_cycle_count,
    triangle_count,
)
from repro.sketches import CountSketch
from repro.streams import RandomOrderStream

pytestmark = pytest.mark.bench

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

N = 250 if QUICK else 500
P = 0.2 if QUICK else 0.35
SEED = 11
EPSILONS = [0.6, 0.45] if QUICK else [0.6, 0.5, 0.4, 0.3]
TRIALS = 1
MIN_SPEEDUP = 1.0 if QUICK else 4.0


def _trials_for(graph, counts, epsilon, n_jobs=1):
    """The E1 + E5 trial mix shared verbatim by both paths."""
    triangle_stats = run_trials(
        make_factory(
            TriangleRandomOrder,
            t_guess=max(1.0, float(counts["triangles"])),
            epsilon=epsilon,
            use_log_factor=False,
        ),
        make_factory(RandomOrderStream, graph=graph),
        truth=counts["triangles"],
        trials=TRIALS,
        base_seed=SEED,
        n_jobs=n_jobs,
    )
    fourcycle_stats = run_trials(
        make_factory(EdgeSamplingFourCycles, p=0.1),
        make_factory(RandomOrderStream, graph=graph),
        truth=counts["four_cycles"],
        trials=TRIALS,
        base_seed=SEED,
        n_jobs=n_jobs,
    )
    return triangle_stats, fourcycle_stats


def _legacy_sweep():
    rows = []
    for epsilon in EPSILONS:
        graph = erdos_renyi_loop(N, P, seed=SEED)
        counts = {
            "triangles": triangle_count(graph),
            "four_cycles": four_cycle_count(graph),
        }
        tri, fc = _trials_for(graph, counts, epsilon)
        rows.append((epsilon, tri.median_estimate, fc.median_estimate))
    return rows


def _engine_sweep(n_jobs=-1):
    rows = []
    for epsilon in EPSILONS:
        graph = erdos_renyi(N, P, seed=SEED)
        counts = cached_ground_truth(
            "bench-gnp", {"n": N, "p": P, "seed": SEED}, graph
        )
        tri, fc = _trials_for(graph, counts, epsilon, n_jobs=n_jobs)
        rows.append((epsilon, tri.median_estimate, fc.median_estimate))
    return rows


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def _update_baseline(section, payload):
    if QUICK:
        return
    baseline = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    baseline[section] = payload
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def test_engine_sweep_speedup():
    clear_cache()
    legacy_seconds, legacy_rows = _timed(_legacy_sweep)
    clear_cache()
    engine_seconds, engine_rows = _timed(_engine_sweep)
    info = cache_info()
    speedup = legacy_seconds / max(engine_seconds, 1e-9)

    print(
        f"\nperf engine: E1/E5 epsilon sweep, n={N} p={P} "
        f"points={len(EPSILONS)} trials={TRIALS}"
    )
    print(f"  legacy path : {legacy_seconds:8.3f}s  (loop gen + python exact, serial)")
    print(f"  engine path : {engine_seconds:8.3f}s  (numpy gen + cached fast counts)")
    print(f"  speedup     : {speedup:8.2f}x   ground-truth cache: {info}")

    # Both paths must produce sane estimates for every sweep point.
    assert len(legacy_rows) == len(engine_rows) == len(EPSILONS)
    for _, tri_est, fc_est in engine_rows:
        assert tri_est >= 0 and fc_est >= 0
    # The cache is doing its job: one miss, the rest hits.
    assert info["misses"] == 1
    assert info["hits"] == len(EPSILONS) - 1

    _update_baseline(
        "e1_e5_sweep",
        {
            "n": N,
            "p": P,
            "epsilons": EPSILONS,
            "trials": TRIALS,
            "legacy_seconds": round(legacy_seconds, 4),
            "engine_seconds": round(engine_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"engine path only {speedup:.2f}x faster (need >= {MIN_SPEEDUP}x)"
    )


def test_countsketch_batch_speedup():
    # Distinct keys, as in sketching an edge stream: the scalar path
    # must hash each key row-by-row in Python, the batch path hashes
    # the whole array per row.
    n_updates = 5_000 if QUICK else 50_000
    keys = list(range(n_updates))
    deltas = [1.0] * n_updates

    scalar = CountSketch(rows=5, width=256, seed=3)
    scalar_seconds, _ = _timed(
        lambda: [scalar.update(k, d) for k, d in zip(keys, deltas)]
    )
    batched = CountSketch(rows=5, width=256, seed=3)
    batch_seconds, _ = _timed(batched.update_batch, keys, deltas)
    speedup = scalar_seconds / max(batch_seconds, 1e-9)

    print(f"\ncountsketch: {n_updates} distinct-key updates")
    print(f"  scalar update loop : {scalar_seconds:8.3f}s")
    print(f"  update_batch       : {batch_seconds:8.3f}s")
    print(f"  speedup            : {speedup:8.2f}x")

    for key in (0, 1, n_updates // 2, n_updates - 1):
        assert scalar.query(key) == batched.query(key)

    _update_baseline(
        "countsketch_batch",
        {
            "updates": n_updates,
            "scalar_seconds": round(scalar_seconds, 4),
            "batch_seconds": round(batch_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= (1.0 if QUICK else 4.0), (
        f"update_batch only {speedup:.2f}x faster"
    )


def test_telemetry_off_overhead():
    """Telemetry hooks must stay under 3% of the sweep when no session
    is active (the repo-wide default).

    Off-path instrumentation cost is a handful of no-op dispatches per
    *phase* (never per edge): each hook site pays one ``obs.current()``
    lookup, a null-span context enter/exit, or an ``enabled`` check.
    The test (a) times the sweep with telemetry off, (b) replays it
    inside a session to count exactly how many spans / metric emissions
    the run triggers, (c) microbenchmarks the null dispatches, and
    asserts the projected hook cost — with a 4x safety margin — is
    below 3% of the measured sweep time.
    """
    assert not obs.current().enabled, "a telemetry session leaked into the bench"

    # (a) sweep with telemetry off — what users pay by default
    reps = 2 if QUICK else 3
    off_seconds = None
    for _ in range(reps):
        clear_cache()
        seconds, _rows = _timed(_engine_sweep, 1)
        off_seconds = seconds if off_seconds is None else min(off_seconds, seconds)

    # (b) identical sweep inside a session: count the hook firings
    clear_cache()
    with obs.session() as telemetry:
        _engine_sweep(1)
        span_count = telemetry.tracer.span_count()
        metric_count = len(telemetry.metrics)

    # (c) null dispatch microbenchmarks
    k = 50_000
    null = obs.current()
    dispatch_seconds, _ = _timed(
        lambda: [obs.current().enabled for _ in range(k)]
    )
    span_seconds, _ = _timed(
        lambda: [null.tracer.span("x", kind="pass").__exit__(None, None, None)
                 for _ in range(k)]
    )
    per_dispatch = dispatch_seconds / k
    per_span = span_seconds / k

    # every span site and every (batched) metric site pays one dispatch;
    # span sites additionally pay the null context.  4x margin on top.
    hook_sites = span_count + metric_count
    projected = 4.0 * (hook_sites * per_dispatch + span_count * per_span)
    overhead = projected / max(off_seconds, 1e-9)

    print(f"\ntelemetry-off overhead: sweep={off_seconds:.3f}s")
    print(f"  spans/run          : {span_count}")
    print(f"  metric emissions   : {metric_count}")
    print(f"  null dispatch      : {per_dispatch * 1e9:8.1f} ns")
    print(f"  null span ctx      : {per_span * 1e9:8.1f} ns")
    print(f"  projected overhead : {overhead * 100:8.4f}% (4x margin, budget 3%)")

    assert overhead < 0.03, (
        f"telemetry-off hooks projected at {overhead * 100:.3f}% of the sweep "
        "(budget 3%) — a hook has crept into a per-edge path"
    )
