"""Performance benchmark: reference vs matrix exact counters.

Not a paper experiment — an engineering benchmark guarding the two
exact-counting implementations: the transparent pure-Python reference
(``repro.graphs.exact``) and the BLAS-backed trace identities
(``repro.graphs.fast``).  Both must agree (the property tests enforce
that); this file tracks their speed so workload builders know which to
reach for.
"""

import pytest

from repro.graphs import (
    erdos_renyi,
    fast_four_cycle_count,
    fast_triangle_count,
    four_cycle_count,
    triangle_count,
)


@pytest.fixture(scope="module")
def perf_graph():
    return erdos_renyi(300, 0.08, seed=5)


@pytest.mark.benchmark(group="perf-triangles")
def test_perf_reference_triangles(benchmark, perf_graph):
    result = benchmark(triangle_count, perf_graph)
    assert result == fast_triangle_count(perf_graph)


@pytest.mark.benchmark(group="perf-triangles")
def test_perf_matrix_triangles(benchmark, perf_graph):
    result = benchmark(fast_triangle_count, perf_graph)
    assert result >= 0


@pytest.mark.benchmark(group="perf-fourcycles")
def test_perf_reference_four_cycles(benchmark, perf_graph):
    result = benchmark(four_cycle_count, perf_graph)
    assert result == fast_four_cycle_count(perf_graph)


@pytest.mark.benchmark(group="perf-fourcycles")
def test_perf_matrix_four_cycles(benchmark, perf_graph):
    result = benchmark(fast_four_cycle_count, perf_graph)
    assert result >= 0


def test_agreement_on_perf_graph(perf_graph):
    assert triangle_count(perf_graph) == fast_triangle_count(perf_graph)
    assert four_cycle_count(perf_graph) == fast_four_cycle_count(perf_graph)
