"""Workload inventory — the reproduction's "datasets table".

Prints the profile of every registered workload family (sizes, counts,
concentration) and asserts each family's design intent: the heavy
workload really concentrates its triangles on one edge, the dense
workload really sits in the T = Omega(n^2) regime, the user-item graph
really is triangle-free and diamond-rich, and so on.  This is the
table EXPERIMENTS.md's rows implicitly reference.
"""

import pytest

from repro.experiments import ALL_WORKLOADS, build_workload, format_records, print_experiment
from repro.graphs import heaviness_summary


@pytest.fixture(scope="module")
def inventory():
    profiles = {}
    for name in sorted(ALL_WORKLOADS):
        workload = build_workload(name)
        profile = heaviness_summary(workload.graph)
        profile.update(
            {
                "name": name,
                "n": workload.n,
                "m": workload.m,
            }
        )
        profiles[name] = profile
    return profiles


def test_inventory_table(inventory):
    columns = [
        "name",
        "n",
        "m",
        "triangles",
        "four_cycles",
        "max_edge_triangles",
        "max_edge_four_cycles",
        "triangle_concentration",
        "four_cycle_concentration",
    ]
    rows = [
        {key: profile[key] for key in columns} for profile in inventory.values()
    ]
    print_experiment("Workload inventory", format_records(rows))
    assert len(rows) == len(ALL_WORKLOADS)


def test_heavy_workload_is_concentrated(inventory):
    profile = inventory["heavy-and-light-triangles"]
    assert profile["triangle_concentration"] > 0.5


def test_light_workload_is_flat(inventory):
    profile = inventory["light-triangles"]
    assert profile["triangle_concentration"] < 0.1


def test_dense_workload_regime(inventory):
    profile = inventory["dense-gnp"]
    assert profile["four_cycles"] > profile["n"] ** 2


def test_user_item_triangle_free_and_diamond_rich(inventory):
    profile = inventory["user-item"]
    assert profile["triangles"] == 0
    assert profile["four_cycles"] > 100


def test_four_cycle_free_really_is(inventory):
    assert inventory["four-cycle-free"]["four_cycles"] == 0


def test_power_law_has_heavy_tail(inventory):
    profile = inventory["power-law"]
    # hub edges concentrate a visible share of the (possibly few) counts
    assert profile["m"] > profile["n"]  # super-tree density from the tail


def test_diamond_mixture_has_concentrated_cycles(inventory):
    profile = inventory["diamond-mixture"]
    assert profile["max_edge_four_cycles"] >= 30  # the size-40 diamonds


@pytest.mark.benchmark(group="inventory")
def test_inventory_timing(benchmark):
    def run_once():
        workload = build_workload("noisy-gnp")
        return heaviness_summary(workload.graph)["four_cycles"]

    assert benchmark.pedantic(run_once, rounds=1, iterations=1) >= 0
