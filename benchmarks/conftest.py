"""Shared fixtures for the experiment benchmarks.

Workloads are session-scoped: building a graph and its exact counts is
itself expensive, and every bench that shares a family should see the
same instance so rows are comparable across files.
"""

from __future__ import annotations

import pytest

from repro.experiments import build_workload


@pytest.fixture(scope="session")
def light_triangle_workload():
    return build_workload("light-triangles", n=900, num_triangles=200, noise_edges=1200)


@pytest.fixture(scope="session")
def heavy_triangle_workload():
    return build_workload(
        "heavy-and-light-triangles",
        n=1500,
        heavy_triangles=400,
        light_triangles_count=150,
    )


@pytest.fixture(scope="session")
def diamond_workload():
    return build_workload(
        "diamond-mixture",
        n=2500,
        large=(40,) * 8,
        medium=(15,) * 16,
        small=(4,) * 30,
        noise_edges=600,
    )


@pytest.fixture(scope="session")
def medium_diamond_workload():
    return build_workload(
        "medium-diamonds", n=4000, diamond_size=12, count=80, noise_edges=800
    )


@pytest.fixture(scope="session")
def dense_workload():
    return build_workload("dense-gnp", n=50, p=0.5)


@pytest.fixture(scope="session")
def sparse_c4_workload():
    return build_workload("sparse-four-cycles", n=2000, num_cycles=350, noise_edges=500)
