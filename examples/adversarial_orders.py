#!/usr/bin/env python3
"""Why the stream *order* is a model: adversarial arrival demo.

The same graph, the same algorithm, four arrival orders.  Theorem 2.1
is a *random order* result: its heavy-edge identification reads
evidence out of prefixes, so an adversary who front-loads the heavy
edge starves it — that is the content of the Omega(m/sqrt(T)) lower
bound.  The three-pass arbitrary-order algorithm (Theorem 5.3) pays
two extra passes to be immune.

Run:  python examples/adversarial_orders.py
"""

from repro.core import FourCycleArbitraryThreePass, TriangleRandomOrder
from repro.experiments import format_records, print_experiment
from repro.graphs import four_cycle_count, heavy_edge_graph, planted_diamonds, triangle_count
from repro.streams import RandomOrderStream
from repro.streams.orders import (
    heavy_edges_first,
    heavy_edges_last,
    sorted_order,
    vertex_grouped_order,
)


def triangle_order_sensitivity() -> None:
    graph = heavy_edge_graph(900, heavy_triangles=250, light_triangles=80, seed=1)
    truth = triangle_count(graph)
    orders = {
        "random (the model)": lambda: RandomOrderStream(graph, seed=11),
        "heavy edge first (adversarial)": lambda: heavy_edges_first(graph, seed=11),
        "heavy edge last (friendly)": lambda: heavy_edges_last(graph, seed=11),
        "sorted edge list": lambda: sorted_order(graph),
        "grouped by vertex": lambda: vertex_grouped_order(graph, seed=11),
    }
    rows = []
    for label, stream_factory in orders.items():
        result = TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=5).run(
            stream_factory()
        )
        rows.append(
            {
                "arrival_order": label,
                "estimate": round(result.estimate, 1),
                "rel_error": round(result.relative_error(truth), 3),
            }
        )
    print_experiment(
        f"Theorem 2.1 under different orders (truth = {truth} triangles)",
        format_records(rows),
    )


def fourcycle_order_immunity() -> None:
    graph = planted_diamonds(900, [8] * 10, extra_edges=300, seed=3)
    truth = four_cycle_count(graph)
    orders = {
        "random": lambda: RandomOrderStream(graph, seed=11),
        "sorted": lambda: sorted_order(graph),
        "grouped by vertex": lambda: vertex_grouped_order(graph, seed=11),
    }
    rows = []
    for label, stream_factory in orders.items():
        result = FourCycleArbitraryThreePass(t_guess=truth, epsilon=0.3, seed=5).run(
            stream_factory()
        )
        rows.append(
            {
                "arrival_order": label,
                "estimate": round(result.estimate, 1),
                "rel_error": round(result.relative_error(truth), 3),
            }
        )
    print_experiment(
        f"Theorem 5.3 under different orders (truth = {truth} four-cycles)",
        format_records(rows),
    )


if __name__ == "__main__":
    triangle_order_sensitivity()
    fourcycle_order_immunity()
