#!/usr/bin/env python3
"""Streaming a graph from disk — the deployment-shaped workflow.

Real deployments do not hold the graph in memory: edges arrive from a
log file, a socket, a message queue.  This example writes a workload
to an edge-list file, then runs the paper's algorithms *directly off
the file* with `FileEdgeStream` — the only O(m) state is the optional
duplicate filter.

It also shows the equivalent command-line workflow (`python -m repro`).

Run:  python examples/file_streaming.py
"""

import tempfile
from pathlib import Path

from repro.baselines import TwoPassTriangles
from repro.core import FourCycleArbitraryThreePass
from repro.experiments import build_workload, format_records, print_experiment
from repro.graphs import write_edge_list
from repro.streams import FileEdgeStream


def main() -> None:
    workload = build_workload(
        "sparse-four-cycles", n=1200, num_cycles=200, noise_edges=400
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "edges.txt"
        write_edge_list(workload.graph, path, header=workload.describe())
        print(f"wrote {workload.m} edges to {path}")

        stream = FileEdgeStream(path)
        print(f"file stream: n={stream.num_vertices}, m={stream.num_edges}")

        # four-cycles in three passes, straight off the file
        c4 = FourCycleArbitraryThreePass(
            t_guess=workload.four_cycles, epsilon=0.3, seed=1
        ).run(stream)

        # triangles in two passes (arbitrary order), same file
        triangle_stream = FileEdgeStream(
            path, precounted=(stream.num_vertices, stream.num_edges)
        )
        t3 = TwoPassTriangles(
            t_guess=max(1, workload.triangles), epsilon=0.3, seed=1
        ).run(triangle_stream)

        print_experiment(
            "Counting straight from an edge-list file",
            format_records(
                [
                    {
                        "problem": "four-cycles",
                        "exact": workload.four_cycles,
                        "estimate": round(c4.estimate, 1),
                        "passes": c4.passes,
                    },
                    {
                        "problem": "triangles",
                        "exact": workload.triangles,
                        "estimate": round(t3.estimate, 1),
                        "passes": t3.passes,
                    },
                ]
            ),
        )

    print(
        "\nCLI equivalent:\n"
        "  python -m repro generate sparse-four-cycles --out edges.txt\n"
        "  python -m repro exact edges.txt\n"
        "  python -m repro estimate edges.txt --problem four-cycles "
        "--model arbitrary --compare-exact"
    )


if __name__ == "__main__":
    main()
