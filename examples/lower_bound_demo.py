#!/usr/bin/env python3
"""The two lower-bound constructions, end to end.

1. Figure 1 / Theorem 2.6 — a tri-partite graph whose triangle count
   (0 or T) encodes one hidden matrix bit, yet whose random-order
   prefix is information-free.  We build instances, verify the
   combinatorics, measure how often a short prefix leaks the secret,
   and run the Theorem 2.7 random-partition protocol with the paper's
   own algorithm as the message.

2. Section 5.4 / Theorem 5.8 — set disjointness embedded as two
   overlapping stars: zero four-cycles iff the sets are disjoint.  We
   solve DISJ with the Theorem 5.6 distinguisher and watch the
   communication grow as Omega(n / k) while T = C(k, 2) shrinks.

Run:  python examples/lower_bound_demo.py
"""

import math

from repro.core import FourCycleDistinguisher, TriangleRandomOrder
from repro.experiments import format_records, print_experiment
from repro.graphs import triangle_count
from repro.lowerbounds import (
    DisjointnessInstance,
    build_figure1,
    build_two_stars,
    prefix_reveals_special_pair,
    run_random_partition_protocol,
    solve_disjointness_with_distinguisher,
)


def figure1_demo() -> None:
    rows = []
    for seed in range(6):
        construction = build_figure1(n=8, t=12, seed=seed)
        rows.append(
            {
                "seed": seed,
                "hidden_bit": construction.planted_bit,
                "triangles": triangle_count(construction.graph),
            }
        )
    print_experiment("Figure 1: triangles encode the hidden bit", format_records(rows))

    construction = build_figure1(n=10, t=25, seed=1, x=[[1] * 10] * 10)
    secrecy_rows = []
    for factor in (0.5, 1.0, 4.0):
        fraction = min(1.0, factor / math.sqrt(construction.t))
        reveals = sum(
            prefix_reveals_special_pair(construction, fraction, seed=s) for s in range(20)
        )
        secrecy_rows.append(
            {"prefix_x_m/sqrtT": factor, "reveal_rate": reveals / 20}
        )
    print_experiment(
        "Prefix secrecy: short prefixes do not leak (i*, j*)",
        format_records(secrecy_rows),
    )

    outcome = run_random_partition_protocol(
        build_figure1(n=8, t=16, seed=3),
        lambda: TriangleRandomOrder(t_guess=16, epsilon=0.3, seed=1),
        alice_probability=0.25,
        seed=5,
    )
    print_experiment(
        "Theorem 2.7 protocol: the algorithm's state is the message",
        format_records(
            [
                {
                    "decided": "T triangles" if outcome.decided_positive else "0",
                    "truth": "T triangles" if outcome.truth_positive else "0",
                    "correct": outcome.correct,
                    "communication_words": outcome.communication_items,
                }
            ]
        ),
    )


def disjointness_demo() -> None:
    rows = []
    for seed in range(4):
        for answer in (0, 1):
            instance = DisjointnessInstance.random_with_answer(24, answer, seed=seed)
            construction = build_two_stars(instance, k=12)
            decided, space = solve_disjointness_with_distinguisher(
                instance,
                k=12,
                distinguisher_factory=lambda t: FourCycleDistinguisher(
                    t_guess=t, c=3.0, seed=seed
                ),
                seed=seed,
            )
            rows.append(
                {
                    "seed": seed,
                    "DISJ_answer": answer,
                    "four_cycles": construction.expected_four_cycles,
                    "protocol_decided": decided,
                    "space_words": space,
                }
            )
    print_experiment(
        "Theorem 5.8: DISJ solved through 0-vs-T four-cycle detection",
        format_records(rows),
    )


if __name__ == "__main__":
    figure1_demo()
    disjointness_demo()
