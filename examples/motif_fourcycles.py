#!/usr/bin/env python3
"""Four-cycle (C4) motif counting on a co-engagement graph.

In bipartite-flavored interaction data (users x items, proteins x
complexes), the four-cycle is the smallest non-trivial motif: two
users interacting with the same two items.  Diamond structure —
K_{2,h} blocks — is exactly what such data produces, and is the
structure Theorem 4.2 exploits.

This example builds a planted-diamond graph standing in for a
co-engagement network and runs all four of the paper's C4 counters
that apply, one per (model, pass-budget) cell:

* adjacency list, 2 passes: the diamond algorithm (Theorem 4.2);
* adjacency list, 1 pass:  the moment algorithm (Theorem 4.3a);
* adjacency list, 1 pass:  the l2-sampling algorithm (Theorem 4.3b);
* arbitrary order, 3 passes: Theorem 5.3.

Run:  python examples/motif_fourcycles.py
"""

from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryThreePass,
    FourCycleL2Sampling,
    FourCycleMoment,
)
from repro.experiments import format_records, print_experiment
from repro.graphs import dense_wedge_graph, four_cycle_count, planted_diamonds
from repro.streams import AdjacencyListStream, RandomOrderStream


def run_on_diamond_graph() -> None:
    graph = planted_diamonds(
        1500, sizes=[30] * 6 + [12] * 10 + [4] * 20, extra_edges=400, seed=4
    )
    truth = four_cycle_count(graph)

    diamond = FourCycleAdjacencyDiamond(t_guess=truth, epsilon=0.3, seed=1).run(
        AdjacencyListStream(graph, seed=9)
    )
    threepass = FourCycleArbitraryThreePass(t_guess=truth, epsilon=0.3, seed=1).run(
        RandomOrderStream(graph, seed=9)
    )
    print_experiment(
        f"Co-engagement graph: {truth} four-cycles (sparse, diamond-structured)",
        format_records(
            [
                {
                    "algorithm": "diamond (Thm 4.2)",
                    "model": "adjacency",
                    "passes": diamond.passes,
                    "estimate": round(diamond.estimate, 1),
                    "rel_error": round(diamond.relative_error(truth), 4),
                },
                {
                    "algorithm": "three-pass (Thm 5.3)",
                    "model": "arbitrary",
                    "passes": threepass.passes,
                    "estimate": round(threepass.estimate, 1),
                    "rel_error": round(threepass.relative_error(truth), 4),
                },
            ]
        ),
    )


def run_on_dense_graph() -> None:
    """The large-T regime (T = Omega(n^2)) where the one-pass
    algorithms of Theorem 4.3 apply."""
    graph = dense_wedge_graph(50, p=0.5, seed=5)
    truth = four_cycle_count(graph)

    moment = FourCycleMoment(
        t_guess=truth, epsilon=0.2, groups=7, group_size=40, seed=1
    ).run(AdjacencyListStream(graph, seed=3))
    l2 = FourCycleL2Sampling(
        t_guess=truth, epsilon=0.2, num_samplers=60, groups=7, group_size=40, seed=1
    ).run(AdjacencyListStream(graph, seed=3))

    print_experiment(
        f"Dense graph: {truth} four-cycles (T >> n^2 = {graph.num_vertices ** 2})",
        format_records(
            [
                {
                    "algorithm": "moments F2-F1 (Thm 4.3a)",
                    "passes": moment.passes,
                    "estimate": round(moment.estimate, 1),
                    "rel_error": round(moment.relative_error(truth), 4),
                },
                {
                    "algorithm": "l2 sampling (Thm 4.3b)",
                    "passes": l2.passes,
                    "estimate": round(l2.estimate, 1),
                    "rel_error": round(l2.relative_error(truth), 4),
                },
            ]
        ),
    )


if __name__ == "__main__":
    run_on_diamond_graph()
    run_on_dense_graph()
