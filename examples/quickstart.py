#!/usr/bin/env python3
"""Quickstart: count triangles and four-cycles from a stream.

Builds a small synthetic graph, streams it in each of the paper's
three models, runs one algorithm per model and compares against the
exact counts.

Run:  python examples/quickstart.py
"""

from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryThreePass,
    TriangleRandomOrder,
)
from repro.experiments import format_records, print_experiment
from repro.graphs import four_cycle_count, planted_diamonds, planted_triangles, triangle_count
from repro.streams import AdjacencyListStream, RandomOrderStream


def main() -> None:
    # ------------------------------------------------------------------
    # triangles, random order model (Theorem 2.1)
    # ------------------------------------------------------------------
    graph = planted_triangles(800, num_triangles=180, extra_edges=900, seed=1)
    truth = triangle_count(graph)

    algorithm = TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=0)
    result = algorithm.run(RandomOrderStream(graph, seed=42))

    print_experiment(
        "Triangles in one pass over a random-order stream",
        format_records(
            [
                {
                    "exact": truth,
                    "estimate": round(result.estimate, 1),
                    "rel_error": round(result.relative_error(truth), 4),
                    "passes": result.passes,
                    "space_words": result.space_items,
                    "of_m": graph.num_edges,
                }
            ]
        ),
    )

    # ------------------------------------------------------------------
    # four-cycles, adjacency list model (Theorem 4.2)
    # ------------------------------------------------------------------
    c4_graph = planted_diamonds(
        1000, sizes=[25] * 5 + [8] * 12 + [3] * 20, extra_edges=300, seed=2
    )
    c4_truth = four_cycle_count(c4_graph)

    diamond = FourCycleAdjacencyDiamond(t_guess=c4_truth, epsilon=0.3, seed=0)
    diamond_result = diamond.run(AdjacencyListStream(c4_graph, seed=7))

    # ------------------------------------------------------------------
    # four-cycles, arbitrary order model (Theorem 5.3)
    # ------------------------------------------------------------------
    threepass = FourCycleArbitraryThreePass(t_guess=c4_truth, epsilon=0.3, seed=0)
    threepass_result = threepass.run(RandomOrderStream(c4_graph, seed=7))

    print_experiment(
        "Four-cycles across two stream models",
        format_records(
            [
                {
                    "model": "adjacency list (2 passes, diamonds)",
                    "exact": c4_truth,
                    "estimate": round(diamond_result.estimate, 1),
                    "rel_error": round(diamond_result.relative_error(c4_truth), 4),
                },
                {
                    "model": "arbitrary order (3 passes)",
                    "exact": c4_truth,
                    "estimate": round(threepass_result.estimate, 1),
                    "rel_error": round(threepass_result.relative_error(c4_truth), 4),
                },
            ]
        ),
    )


if __name__ == "__main__":
    main()
