#!/usr/bin/env python3
"""Triangle counting on a social-network-like stream.

The paper's introduction motivates triangle counting with network
analysis: triangle counts drive the transitivity (global clustering
coefficient) of a social graph.  This example:

1. generates a preferential-attachment graph (skewed degrees, organic
   triangle structure — the shape of real follower graphs);
2. estimates its triangle count from a single random-order pass
   *without knowing T in advance*, using the geometric guess schedule;
3. derives the transitivity estimate from the triangle estimate and
   the exactly-countable wedge total;
4. compares against the fixed-memory TRIEST baseline at the same
   memory budget.

Run:  python examples/social_network_triangles.py
"""

from repro.baselines import TriestImpr
from repro.core import TriangleRandomOrder
from repro.experiments import (
    estimate_with_guesses,
    format_records,
    guess_schedule,
    print_experiment,
)
from repro.graphs import barabasi_albert, total_wedges, triangle_count
from repro.streams import RandomOrderStream


def main() -> None:
    graph = barabasi_albert(800, attach=5, seed=3)
    truth = triangle_count(graph)
    wedges = total_wedges(graph)
    true_transitivity = 3.0 * truth / wedges

    # ---- estimate T without knowing it: geometric guess schedule -----
    outcome = estimate_with_guesses(
        algorithm_factory=lambda guess, seed: TriangleRandomOrder(
            t_guess=guess, epsilon=0.3, seed=seed
        ),
        stream_factory=lambda seed: RandomOrderStream(graph, seed=seed),
        guesses=guess_schedule(graph.num_edges, levels=7),
        seed=1,
    )
    print_experiment(
        "Unknown-T calibration (one instance per guess)",
        format_records(outcome.table()),
    )

    estimated_transitivity = 3.0 * outcome.estimate / wedges

    # ---- fixed-memory comparator --------------------------------------
    budget = max(12, graph.num_edges // 4)
    triest = TriestImpr(memory=budget, seed=5).run(RandomOrderStream(graph, seed=11))

    print_experiment(
        "Social-graph triangle analysis",
        format_records(
            [
                {
                    "quantity": "triangles (exact)",
                    "value": truth,
                },
                {
                    "quantity": "triangles (Thm 2.1, unknown T)",
                    "value": round(outcome.estimate, 1),
                },
                {
                    "quantity": f"triangles (TRIEST-impr, {budget} edges)",
                    "value": round(triest.estimate, 1),
                },
                {
                    "quantity": "transitivity (exact)",
                    "value": round(true_transitivity, 5),
                },
                {
                    "quantity": "transitivity (estimated)",
                    "value": round(estimated_transitivity, 5),
                },
            ]
        ),
    )


if __name__ == "__main__":
    main()
