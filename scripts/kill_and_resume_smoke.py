#!/usr/bin/env python
"""Kill-and-resume smoke test for the checkpoint layer.

Scenario: an experiment run is killed (real SIGTERM) right after its
first completed checkpoint unit; a second invocation resumes from the
checkpoint file through the real CLI and must

* report the interrupted unit as resumed (served from the file), and
* print a record table byte-identical to an uninterrupted run.

The kill is deterministic — the child schedules its own SIGTERM after
the first unit lands — so this passes or fails on the checkpoint
logic, never on scheduler timing.  Exits 0 on success.

Usage: python scripts/kill_and_resume_smoke.py [experiment] [seed]
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
EXPERIMENT = sys.argv[1] if len(sys.argv) > 1 else "E12"
SEED = sys.argv[2] if len(sys.argv) > 2 else "0"

# The interrupted run: complete one unit, then die by SIGTERM exactly
# the way an OOM-killer / preemption would end the process.
_CHILD = """
import os, signal, sys
from repro.resilience import Checkpoint, CheckpointContext
from repro.experiments import experiment_checkpoint_key, run_experiment

path, experiment, seed = sys.argv[1], sys.argv[2], int(sys.argv[3])
ctx = CheckpointContext(
    Checkpoint(path, key=experiment_checkpoint_key(experiment, seed))
)
real_unit = ctx.unit

def dying_unit(name, thunk):
    value = real_unit(name, thunk)  # persisted atomically before the kill
    os.kill(os.getpid(), signal.SIGTERM)
    raise AssertionError("unreachable: SIGTERM should have ended the process")

ctx.unit = dying_unit
run_experiment(experiment, seed=seed, checkpoint=ctx)
"""


def _run(argv, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        argv, cwd=REPO, env=env, capture_output=True, text=True, **kwargs
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        ck = os.path.join(tmp, "smoke.jsonl")

        interrupted = _run(
            [sys.executable, "-c", _CHILD, ck, EXPERIMENT, SEED]
        )
        if interrupted.returncode != -signal.SIGTERM:
            print(
                "FAIL: interrupted run should die by SIGTERM, got "
                f"returncode {interrupted.returncode}\n{interrupted.stderr}"
            )
            return 1
        units = sum(
            1 for line in open(ck, encoding="utf-8") if '"type": "unit"' in line
        )
        if units != 1:
            print(f"FAIL: expected exactly 1 persisted unit after the kill, got {units}")
            return 1

        resumed = _run(
            [
                sys.executable, "-m", "repro", "run-experiment", EXPERIMENT,
                "--seed", SEED, "--checkpoint", ck, "--resume",
            ]
        )
        if resumed.returncode != 0:
            print(f"FAIL: resume exited {resumed.returncode}\n{resumed.stderr}")
            return 1
        if "1 unit(s) resumed" not in resumed.stdout:
            print(f"FAIL: resume did not reuse the checkpointed unit:\n{resumed.stdout}")
            return 1

        reference = _run(
            [
                sys.executable, "-m", "repro", "run-experiment", EXPERIMENT,
                "--seed", SEED,
            ]
        )
        if reference.returncode != 0:
            print(f"FAIL: reference run exited {reference.returncode}\n{reference.stderr}")
            return 1

        resumed_table = [
            line for line in resumed.stdout.splitlines()
            if not line.startswith("checkpoint ")
        ]
        if resumed_table != reference.stdout.splitlines():
            print("FAIL: resumed records differ from an uninterrupted run")
            print("--- resumed ---\n" + resumed.stdout)
            print("--- reference ---\n" + reference.stdout)
            return 1

    print(
        f"OK: {EXPERIMENT} killed by SIGTERM after 1 unit, resumed the unit "
        "from the checkpoint, and reproduced the uninterrupted records "
        "byte-identically"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
