"""Legacy setuptools shim.

The project is configured entirely in pyproject.toml; this file exists
so environments without PEP 517 editable support (e.g. offline boxes
missing the `wheel` package) can still `python setup.py develop`.
"""

from setuptools import setup

setup()
