"""repro — Triangle and four-cycle counting in the data stream model.

A full reproduction of McGregor & Vorotnikova (PODS 2020): the three
graph stream models, the paper's five algorithms and two lower-bound
constructions, the baselines it improves on, and an experiment harness
that validates every theorem's claim empirically.
"""

from . import api, baselines, core, experiments, graphs, lowerbounds, sketches, streams
from .core import EstimateResult
from .graphs import Graph
from .streams import (
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
    SpaceMeter,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "baselines",
    "core",
    "experiments",
    "graphs",
    "lowerbounds",
    "sketches",
    "streams",
    "EstimateResult",
    "Graph",
    "SpaceMeter",
    "ArbitraryOrderStream",
    "RandomOrderStream",
    "AdjacencyListStream",
    "__version__",
]
