"""High-level facade: pick the right algorithm for a (problem, model).

The eight algorithm classes in :mod:`repro.core` are the paper's
theorems; this module is the front door a downstream user actually
wants: "count triangles in this stream" — with the model dispatch,
unknown-T calibration and median boosting handled.

    from repro import api
    result = api.estimate(graph, problem="triangles", model="random")
    result = api.estimate(graph, problem="four-cycles", model="adjacency")
"""

from __future__ import annotations

from typing import Any, Optional

from .core import (
    EstimateResult,
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryOnePass,
    FourCycleArbitraryThreePass,
    FourCycleMoment,
    TriangleRandomOrder,
)
from .core.boosting import MedianBoost
from .experiments.calibration import estimate_with_guesses
from .experiments.sweeps import guess_schedule
from .graphs.graph import Graph
from .streams.models import (
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
    StreamSource,
)

PROBLEMS = ("triangles", "four-cycles")
MODELS = ("random", "arbitrary", "adjacency")


def stream_for(graph: Graph, model: str, seed: int = 0) -> StreamSource:
    """A fresh stream of ``graph`` in the requested model."""
    if model == "random":
        return RandomOrderStream(graph, seed=seed)
    if model == "arbitrary":
        return ArbitraryOrderStream.from_graph(graph)
    if model == "adjacency":
        return AdjacencyListStream(graph, seed=seed)
    raise ValueError(f"unknown model {model!r}; expected one of {MODELS}")


def make_counter(
    problem: str,
    model: str,
    t_guess: float,
    epsilon: float = 0.2,
    seed: int = 0,
    **kwargs: Any,
):
    """Instantiate the paper's algorithm for a (problem, model) cell.

    Selection:

    * triangles / random     -> Theorem 2.1
    * triangles / arbitrary  -> Theorem 2.1 (documented caveat: its
      guarantee assumes random order; arbitrary-order triangle
      counting needs two passes — see ``repro.baselines.TwoPassTriangles``)
    * four-cycles / adjacency -> Theorem 4.2 (or Theorem 4.3a with
      ``prefer_one_pass=True``)
    * four-cycles / arbitrary or random -> Theorem 5.3 (or Theorem 5.7
      with ``prefer_one_pass=True`` for dense graphs)
    """
    prefer_one_pass = bool(kwargs.pop("prefer_one_pass", False))
    if problem == "triangles":
        if model == "adjacency":
            raise ValueError(
                "the paper gives no adjacency-list triangle algorithm; "
                "use model='random' or the two-pass baseline"
            )
        return TriangleRandomOrder(
            t_guess=t_guess, epsilon=epsilon, seed=seed, **kwargs
        )
    if problem == "four-cycles":
        if model == "adjacency":
            if prefer_one_pass:
                return FourCycleMoment(
                    t_guess=t_guess, epsilon=epsilon, seed=seed, **kwargs
                )
            return FourCycleAdjacencyDiamond(
                t_guess=t_guess, epsilon=epsilon, seed=seed, **kwargs
            )
        if prefer_one_pass:
            return FourCycleArbitraryOnePass(
                t_guess=t_guess, epsilon=epsilon, seed=seed, **kwargs
            )
        return FourCycleArbitraryThreePass(
            t_guess=t_guess, epsilon=epsilon, seed=seed, **kwargs
        )
    raise ValueError(f"unknown problem {problem!r}; expected one of {PROBLEMS}")


def estimate(
    graph: Graph,
    problem: str = "triangles",
    model: str = "random",
    t_guess: Optional[float] = None,
    epsilon: float = 0.2,
    seed: int = 0,
    boost_copies: int = 1,
    **kwargs: Any,
) -> EstimateResult:
    """One-call estimation on an in-memory graph.

    Args:
        t_guess: the count parameter; ``None`` runs the geometric
            guess schedule (one instance per guess, self-consistency
            selection) and returns the selected instance's estimate
            wrapped in a synthetic result.
        boost_copies: run this many independent copies and take the
            median (the paper's log(1/delta) amplification).
    """
    if t_guess is not None:
        def factory(copy_seed: int):
            return make_counter(
                problem, model, t_guess=t_guess, epsilon=epsilon, seed=copy_seed, **kwargs
            )

        if boost_copies > 1:
            algorithm = MedianBoost(factory, copies=boost_copies, seed=seed)
        else:
            algorithm = factory(seed)
        return algorithm.run(stream_for(graph, model, seed=seed))

    outcome = estimate_with_guesses(
        algorithm_factory=lambda guess, inner_seed: make_counter(
            problem, model, t_guess=guess, epsilon=epsilon, seed=inner_seed, **kwargs
        ),
        stream_factory=lambda inner_seed: stream_for(graph, model, seed=inner_seed),
        guesses=guess_schedule(graph.num_edges),
        seed=seed,
    )
    from .streams.meter import SpaceMeter

    meter = SpaceMeter()
    return EstimateResult(
        estimate=outcome.estimate,
        passes=1,
        space=meter,
        algorithm=f"auto-{problem}-{model}",
        details={"guess_table": outcome.table(), "selected_guess": outcome.selected_guess},
    )


def estimate_transitivity(
    graph: Graph,
    t_guess: Optional[float] = None,
    epsilon: float = 0.2,
    seed: int = 0,
    **kwargs: Any,
) -> float:
    """Streaming estimate of the global clustering coefficient.

    The application the paper's introduction leads with: transitivity
    is ``3 T / W`` with ``T`` the triangle count and ``W`` the wedge
    count.  ``T`` comes from the Theorem 2.1 estimator over a
    random-order pass; ``W`` is computed exactly alongside it — degree
    counting needs one counter per touched vertex, O(n) words, which
    the streaming literature treats as free relative to the triangle
    problem.
    """
    total_wedges = 0
    degrees: dict = {}
    for u, v in stream_for(graph, "random", seed=seed).edges():
        for x in (u, v):
            d = degrees.get(x, 0)
            total_wedges += d  # new edge closes d new wedges at x
            degrees[x] = d + 1
    if total_wedges == 0:
        return 0.0
    result = estimate(
        graph,
        problem="triangles",
        model="random",
        t_guess=t_guess,
        epsilon=epsilon,
        seed=seed,
        **kwargs,
    )
    return 3.0 * result.estimate / total_wedges
