"""Baselines the paper improves on, plus trivial reference counters."""

from .bera_chakrabarti import BeraChakrabartiFourCycles
from .cormode_jowhari import CormodeJowhariTriangles
from .edge_sampling import EdgeSamplingFourCycles, EdgeSamplingTriangles
from .exact_stream import ExactFourCycleStream, ExactTriangleStream
from .mvv_twopass import TwoPassTriangles
from .triest import TriestBase, TriestImpr
from .wedge_pair_sampling import WedgePairSamplingFourCycles

__all__ = [
    "BeraChakrabartiFourCycles",
    "CormodeJowhariTriangles",
    "EdgeSamplingTriangles",
    "EdgeSamplingFourCycles",
    "ExactTriangleStream",
    "ExactFourCycleStream",
    "TwoPassTriangles",
    "TriestBase",
    "TriestImpr",
    "WedgePairSamplingFourCycles",
]
