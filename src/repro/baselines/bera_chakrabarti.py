"""Bera–Chakrabarti-style four-cycle counting in arbitrary order.

Bera & Chakrabarti (STACS 2017) gave the previous best arbitrary-order
four-cycle bound the paper quotes: a (1+eps)-approximation in
``Õ(eps^-2 m^2 / T)`` space.  Their general technique samples tuples of
edges uniformly and tests whether they extend to the target subgraph
in later passes.  We implement the faithful-in-spirit two-pass variant
for C4:

* **Pass 1** draws ``k`` independent ordered pairs of uniform edges
  (two reservoir samplers per pair).
* **Pass 2** checks, for each vertex-disjoint pair, whether it forms
  the two *opposite* edges of a four-cycle — i.e. whether either of the
  two possible connecting edge pairs is present.

Every four-cycle has 4 ordered opposite-edge pairs among the ``m^2``
ordered pairs, so ``E[Z] = 4T/m^2`` per pair and ``T_hat = m^2 *
mean(Z) / 4``.  Concentration needs ``k = Theta(eps^-2 m^2 / T)``
samples — the ``m^2/T`` space the paper's Theorem 5.3 beats whenever
``T <= m^{4/3}``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from .. import obs as _obs
from ..core.result import EstimateResult
from ..seeding import component_rng
from ..graphs.graph import Edge, normalize_edge
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource


class BeraChakrabartiFourCycles:
    """Two-pass edge-pair sampling C4 estimator.

    Args:
        t_guess: the parameter ``T``; the number of sampled pairs is
            ``k = ceil(c * eps^-2 * m^2 / T)``, capped by ``max_pairs``.
        epsilon: target accuracy.
        c: scale on the pair count.
        max_pairs: hard cap to keep adversarial parameterizations from
            requesting more pairs than edges squared.
        seed: seeds the reservoir samplers.
    """

    name = "bera-chakrabarti"

    def __init__(
        self,
        t_guess: float,
        epsilon: float = 0.2,
        c: float = 1.0,
        max_pairs: int = 200_000,
        seed: int = 0,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.c = c
        self.max_pairs = max_pairs
        self.seed = seed

    def run(self, stream: StreamSource) -> EstimateResult:
        meter = SpaceMeter()
        telemetry = _obs.current()
        m = stream.num_edges
        if m < 4:
            return EstimateResult(0.0, 1, meter, self.name, {"empty": True})
        k = min(
            self.max_pairs,
            max(1, math.ceil(self.c * m * m / (self.epsilon**2 * self.t_guess))),
        )

        # ---- pass 1: draw k ordered uniform edge pairs ----------------
        # m is known up front, so a uniform edge sample is just a
        # pre-drawn stream position (equivalent to, and much faster
        # than, 2k reservoir samplers).
        rng = component_rng("bera-chakrabarti.positions", seed=self.seed)
        positions = [rng.randrange(m) for _ in range(2 * k)]
        wanted: Dict[int, List[int]] = {}
        for slot, pos in enumerate(positions):
            wanted.setdefault(pos, []).append(slot)
        slot_edges: List[Edge] = [None] * (2 * k)  # type: ignore[list-item]
        with telemetry.tracer.span("pass1:pair-sample", kind="pass"):
            for pos, edge in enumerate(stream.edges()):
                for slot in wanted.get(pos, ()):
                    slot_edges[slot] = edge
        meter.set("sampled_edges", 2 * k)

        pairs: List[Tuple[Edge, Edge]] = [
            (slot_edges[2 * j], slot_edges[2 * j + 1]) for j in range(k)
        ]

        # connecting edges to watch for in pass 2, indexed per pair
        watch: Dict[Edge, List[int]] = {}
        completions: List[List[Tuple[Edge, Edge]]] = []
        for j, (e1, e2) in enumerate(pairs):
            options: List[Tuple[Edge, Edge]] = []
            if e1 is not None and e2 is not None:
                a, b = e1
                c_v, d_v = e2
                if len({a, b, c_v, d_v}) == 4:
                    options = [
                        (normalize_edge(b, c_v), normalize_edge(d_v, a)),
                        (normalize_edge(b, d_v), normalize_edge(c_v, a)),
                    ]
            completions.append(options)
            for pair_of_edges in options:
                for edge in pair_of_edges:
                    watch.setdefault(edge, []).append(j)
        meter.set("watched_edges", len(watch))

        # ---- pass 2: observe which connecting edges exist -------------
        present: Set[Edge] = set()
        with telemetry.tracer.span("pass2:check-completions", kind="pass") as span:
            for u, v in stream.edges():
                edge = normalize_edge(u, v)
                if edge in watch:
                    present.add(edge)
            span.set("watched_edges", len(watch))
        meter.set("present_marks", len(present))

        z_total = 0
        for options in completions:
            for first, second in options:
                if first in present and second in present:
                    z_total += 1
        estimate = (m * m * z_total) / (4.0 * k)
        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.sampled_pairs", k)
            telemetry.metrics.inc(f"{self.name}.watched_edges", len(watch))
            telemetry.metrics.inc(f"{self.name}.completed_pairs", z_total)

        details = {"pairs": k, "z_total": z_total}
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)
