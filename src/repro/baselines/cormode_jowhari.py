"""Cormode–Jowhari-style prefix sampling for random-order triangles.

Cormode & Jowhari (Theor. Comput. Sci. 2017) — the result Theorem 2.1
improves on — count triangles in a random-order stream by storing a
prefix and watching for edges that close wedges inside it, *without*
any heavy-edge machinery.  We implement that estimator in its natural
unbiased form:

    S = first beta*m stream positions;
    X = #(wedge inside S, third edge after S);
    T_hat = X / (3 beta^2 (1 - beta)).

In a uniformly random order each triangle contributes a closed wedge
with probability ``~ 3 beta^2 (1 - beta)``, so ``E[T_hat] = T``.  The
catch — and the reason CJ only certify a (3+eps) approximation in
``Õ(eps^-4.5 m / sqrt(T))`` space — is that a single edge lying in many
triangles makes ``X`` concentrate only after far more space, and the
one-sided failure pushes the guarantee to a constant factor.
Experiment E1 shows exactly this: on heavy-edge workloads this
baseline's error distribution is wide while Theorem 2.1's algorithm
stays within (1 + eps).
"""

from __future__ import annotations

import math
from typing import Dict, Set

from .. import obs as _obs
from ..core.result import EstimateResult
from ..graphs.graph import Vertex
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource


class CormodeJowhariTriangles:
    """Prefix-wedge triangle estimator for random-order streams.

    Args:
        t_guess: the parameter ``T``; the prefix fraction is
            ``beta = min(1, c / (eps * sqrt(T)))``, the same space
            budget Theorem 2.1's rough estimator uses (fair frontier
            comparisons).
        epsilon: nominal accuracy parameter.
        c: prefix-fraction scale.
    """

    name = "cormode-jowhari"

    def __init__(self, t_guess: float, epsilon: float = 0.1, c: float = 1.0) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.c = c

    def run(self, stream: StreamSource) -> EstimateResult:
        meter = SpaceMeter()
        m = stream.num_edges
        if m == 0:
            return EstimateResult(0.0, 1, meter, self.name, {"empty": True})
        beta = min(1.0, self.c / (self.epsilon * math.sqrt(self.t_guess)))
        prefix_len = max(1, math.ceil(beta * m))
        beta_effective = prefix_len / m

        telemetry = _obs.current()
        adj: Dict[Vertex, Set[Vertex]] = {}
        closed_wedges = 0
        with telemetry.tracer.span("pass1:prefix-wedges", kind="pass"):
            for pos, (u, v) in enumerate(stream.edges(), start=1):
                if pos <= prefix_len:
                    adj.setdefault(u, set()).add(v)
                    adj.setdefault(v, set()).add(u)
                    meter.add("prefix_edges")
                    continue
                set_u = adj.get(u)
                set_v = adj.get(v)
                if not set_u or not set_v:
                    continue
                if len(set_u) > len(set_v):
                    set_u, set_v = set_v, set_u
                closed_wedges += sum(1 for w in set_u if w in set_v)
        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.closed_wedges", closed_wedges)

        if beta_effective >= 1.0:
            # prefix is the whole stream: count triangles inside it exactly
            estimate = float(_count_triangles(adj))
        else:
            denominator = 3.0 * beta_effective**2 * (1.0 - beta_effective)
            estimate = closed_wedges / denominator
        details = {
            "beta": beta_effective,
            "prefix_len": prefix_len,
            "closed_wedges": closed_wedges,
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)


def _count_triangles(adj: Dict[Vertex, Set[Vertex]]) -> int:
    total = 0
    for u, neighbors in adj.items():
        for v in neighbors:
            if repr(u) < repr(v):
                small, large = (
                    (neighbors, adj[v])
                    if len(neighbors) <= len(adj[v])
                    else (adj[v], neighbors)
                )
                total += sum(1 for w in small if w in large)
    return total // 3
