"""Naive independent edge sampling — the sanity-floor baseline.

Sample every edge independently with probability ``p`` (hash-defined),
count the target subgraphs that survive entirely, and scale by
``p^-3`` (triangles) or ``p^-4`` (four-cycles).  Unbiased but with
variance ``~ T / p^k``: to concentrate it needs ``p^3 T >> 1``, i.e.
space ``m / T^{1/3}`` for triangles and ``m / T^{1/4}`` for four-cycles
— and far worse on graphs where counts concentrate on few edges.  The
paper's algorithms beat it exactly where it is weak, which is what the
frontier experiment (E13) shows.
"""

from __future__ import annotations

from .. import obs as _obs
from ..core.result import EstimateResult
from ..graphs import four_cycle_count, triangle_count
from ..graphs.graph import Graph, normalize_edge
from ..sketches.hashing import KWiseHash
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource


class _EdgeSampling:
    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0 < p <= 1:
            raise ValueError(f"sampling probability must be in (0, 1], got {p}")
        self.p = p
        self.seed = seed

    def _collect(self, stream: StreamSource) -> tuple[Graph, SpaceMeter]:
        meter = SpaceMeter()
        telemetry = _obs.current()
        sample_hash = KWiseHash(k=2, seed=self.seed, namespace="edge-sampling.sample")
        graph = Graph()
        with telemetry.tracer.span("pass1:sample", kind="pass"):
            for u, v in stream.edges():
                if sample_hash.bernoulli(normalize_edge(u, v), self.p):
                    if graph.add_edge(u, v):
                        meter.add("sampled_edges")
        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.sampled_edges", graph.num_edges)
        return graph, meter


class EdgeSamplingTriangles(_EdgeSampling):
    """T_hat = (surviving triangles) / p^3."""

    name = "edge-sampling-triangles"

    def run(self, stream: StreamSource) -> EstimateResult:
        graph, meter = self._collect(stream)
        surviving = triangle_count(graph)
        estimate = surviving / self.p**3
        details = {"surviving": surviving, "p": self.p}
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)


class EdgeSamplingFourCycles(_EdgeSampling):
    """T_hat = (surviving four-cycles) / p^4."""

    name = "edge-sampling-fourcycles"

    def run(self, stream: StreamSource) -> EstimateResult:
        graph, meter = self._collect(stream)
        surviving = four_cycle_count(graph)
        estimate = surviving / self.p**4
        details = {"surviving": surviving, "p": self.p}
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)
