"""Store-everything exact streaming counters.

The trivial upper end of the space spectrum: buffer the whole stream
(m words) and count exactly.  Used as ground truth inside streaming
experiments and as the space ceiling in the frontier plots.
"""

from __future__ import annotations

from .. import obs as _obs
from ..core.result import EstimateResult
from ..graphs import four_cycle_count, triangle_count
from ..graphs.graph import Graph
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource


class _ExactStream:
    """Shared buffering logic for the two exact counters."""

    name = "exact-stream"

    def _collect(self, stream: StreamSource) -> tuple[Graph, SpaceMeter]:
        meter = SpaceMeter()
        telemetry = _obs.current()
        graph = Graph()
        with telemetry.tracer.span("pass1:buffer", kind="pass"):
            for u, v in stream.edges():
                if graph.add_edge(u, v):
                    meter.add("stored_edges")
        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.stored_edges", graph.num_edges)
        return graph, meter


class ExactTriangleStream(_ExactStream):
    """One pass, m words, exact triangle count."""

    name = "exact-triangles"

    def run(self, stream: StreamSource) -> EstimateResult:
        graph, meter = self._collect(stream)
        count = triangle_count(graph)
        return EstimateResult(float(count), stream.passes_taken, meter, self.name, {})


class ExactFourCycleStream(_ExactStream):
    """One pass, m words, exact four-cycle count.

    In the adjacency list model each edge arrives twice; duplicates are
    ignored, so the space is still m words.
    """

    name = "exact-fourcycles"

    def run(self, stream: StreamSource) -> EstimateResult:
        graph, meter = self._collect(stream)
        count = four_cycle_count(graph)
        return EstimateResult(float(count), stream.passes_taken, meter, self.name, {})
