"""McGregor–Vorotnikova–Vu-style two-pass arbitrary-order triangles.

The paper's Section 2 notes that in *arbitrary* order, heavy-edge
identification "is possible in two passes" (citing McGregor,
Vorotnikova & Vu, PODS 2016, and Cormode & Jowhari).  This baseline
implements the core two-pass estimator those results build on:

* **Pass 1** samples each edge independently with probability ``p``
  into ``S``.
* **Pass 2** counts, exactly, the number of triangles through each
  sampled edge: when stream edge ``(a, w)`` arrives with ``a`` an
  endpoint of some ``e = (u, v) in S``, the pair ``(e, w)`` is
  half-closed; when the second half arrives the wedge is complete and
  ``t_e`` increments.

``T_hat = sum_e t_e / (3 p)`` is unbiased (each triangle is seen once
per sampled edge).  Space is ``|S|`` plus the half-wedge table —
``sum_{e in S} (deg(u) + deg(v))`` keys — which is how the two-pass
results spend their Õ(m/sqrt(T)) budget.  Its role here: the two-pass
comparator that Theorem 2.1 matches with ONE pass given random order.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from .. import obs as _obs
from ..core.result import EstimateResult
from ..graphs.graph import Edge, Vertex, normalize_edge
from ..sketches.hashing import KWiseHash
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource


class TwoPassTriangles:
    """Two-pass arbitrary-order triangle counting by edge sampling.

    Args:
        t_guess: the parameter ``T``; the sampling probability is
            ``p = min(1, c / (eps * sqrt(T)))`` — the same budget shape
            as the one-pass random-order algorithm, for fair frontier
            rows.
        epsilon: target accuracy.
        c: sampling-scale knob.
        seed: seeds the sampling hash.
    """

    name = "mvv-twopass-triangles"

    def __init__(
        self, t_guess: float, epsilon: float = 0.1, c: float = 1.0, seed: int = 0
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.c = c
        self.seed = seed

    def run(self, stream: StreamSource) -> EstimateResult:
        meter = SpaceMeter()
        telemetry = _obs.current()
        p = min(1.0, self.c / (self.epsilon * math.sqrt(self.t_guess)))
        sample_hash = KWiseHash(k=2, seed=self.seed, namespace="mvv-twopass.sample")

        # ---- pass 1: the edge sample, indexed by endpoint -------------
        sampled: Set[Edge] = set()
        by_endpoint: Dict[Vertex, List[Edge]] = {}
        with telemetry.tracer.span("pass1:sample", kind="pass"):
            for u, v in stream.edges():
                edge = normalize_edge(u, v)
                if sample_hash.bernoulli(edge, p):
                    sampled.add(edge)
                    by_endpoint.setdefault(u, []).append(edge)
                    by_endpoint.setdefault(v, []).append(edge)
                    meter.add("sampled_edges")

        # ---- pass 2: exact per-sampled-edge triangle counts -----------
        half_wedges: Set[Tuple[Edge, Vertex]] = set()
        triangle_hits: Dict[Edge, int] = {}
        with telemetry.tracer.span("pass2:count", kind="pass"):
            for a, b in stream.edges():
                for endpoint, other in ((a, b), (b, a)):
                    for edge in by_endpoint.get(endpoint, ()):
                        if other in edge:  # the sampled edge itself
                            continue
                        key = (edge, other)
                        if key in half_wedges:
                            # both wedge arms seen: a triangle through `edge`
                            triangle_hits[edge] = triangle_hits.get(edge, 0) + 1
                        else:
                            half_wedges.add(key)
                            meter.add("half_wedges")

        total_hits = sum(triangle_hits.values())
        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.sampled_edges", len(sampled))
            telemetry.metrics.inc(f"{self.name}.triangle_hits", total_hits)
        estimate = total_hits / (3.0 * p)
        details = {
            "p": p,
            "sampled_edges": len(sampled),
            "triangle_hits": total_hits,
            "edges_in_triangles": len(triangle_hits),
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)
