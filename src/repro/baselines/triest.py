"""TRIEST — reservoir-based one-pass triangle counting.

De Stefani, Epasto, Riondato & Upfal (KDD 2016).  The natural
fixed-memory comparator the repro band cites: a reservoir of ``M``
edges plus a running triangle counter.  Two variants:

* **base** — counters track triangles *inside the reservoir* (updated
  on both insertions and evictions); the estimate rescales by
  ``t(t-1)(t-2) / (M(M-1)(M-2))``.
* **impr** — counts on *every* arriving edge against the current
  reservoir with weight ``max(1, (t-1)(t-2) / (M(M-1)))``, never
  decrements; unbiased with strictly smaller variance than base.

Neither variant is parameterized by ``T`` (memory is fixed up front),
which is the practical contrast with the paper's ``m/sqrt(T)``-space
algorithm in experiment E1.
"""

from __future__ import annotations

from typing import Dict, Set

from .. import obs as _obs
from ..core.result import EstimateResult
from ..graphs.graph import Vertex
from ..seeding import component_rng
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource


class _ReservoirGraph:
    """An edge reservoir maintained as an adjacency structure.

    ``variant`` namespaces the eviction RNG so the base and impr
    variants (and anything else holding a reservoir at the same seed)
    draw decorrelated streams.
    """

    def __init__(self, capacity: int, seed: int, variant: str = "base") -> None:
        self.capacity = capacity
        self._rng = component_rng("triest.reservoir", variant, seed=seed)
        self.edges: list = []
        self.adj: Dict[Vertex, Set[Vertex]] = {}
        self.evictions = 0

    def common_neighbors(self, u: Vertex, v: Vertex) -> int:
        set_u = self.adj.get(u)
        set_v = self.adj.get(v)
        if not set_u or not set_v:
            return 0
        if len(set_u) > len(set_v):
            set_u, set_v = set_v, set_u
        return sum(1 for w in set_u if w in set_v)

    def _insert(self, u: Vertex, v: Vertex) -> None:
        self.edges.append((u, v))
        self.adj.setdefault(u, set()).add(v)
        self.adj.setdefault(v, set()).add(u)

    def _remove_at(self, slot: int):
        u, v = self.edges[slot]
        self.adj[u].discard(v)
        self.adj[v].discard(u)
        return u, v

    def offer(self, u: Vertex, v: Vertex, t: int, on_remove=None) -> bool:
        """Algorithm-R step at time ``t`` (1-based).

        ``on_remove(evicted_edge)`` fires after the evicted edge left the
        adjacency structure but *before* the new edge enters it, so
        eviction-time counter updates see a consistent reservoir.
        Returns whether the new edge was kept.
        """
        if len(self.edges) < self.capacity:
            self._insert(u, v)
            return True
        slot = self._rng.randrange(t)
        if slot < self.capacity:
            evicted = self._remove_at(slot)
            self.evictions += 1
            if on_remove is not None:
                on_remove(evicted)
            self.edges[slot] = (u, v)
            self.adj.setdefault(u, set()).add(v)
            self.adj.setdefault(v, set()).add(u)
            return True
        return False


class TriestBase:
    """TRIEST-base with reservoir capacity ``memory`` (edges)."""

    name = "triest-base"

    def __init__(self, memory: int, seed: int = 0) -> None:
        if memory < 6:
            raise ValueError(f"TRIEST needs memory >= 6, got {memory}")
        self.memory = memory
        self.seed = seed

    def run(self, stream: StreamSource) -> EstimateResult:
        meter = SpaceMeter()
        telemetry = _obs.current()
        reservoir = _ReservoirGraph(self.memory, seed=self.seed, variant="base")
        tau = 0
        t = 0

        with telemetry.tracer.span("pass1:reservoir", kind="pass"):
            for u, v in stream.edges():
                t += 1

                def on_remove(evicted, _r=reservoir):
                    nonlocal tau
                    tau -= _r.common_neighbors(*evicted)

                if reservoir.offer(u, v, t, on_remove=on_remove):
                    # count triangles the new edge closes inside the reservoir
                    tau += reservoir.common_neighbors(u, v)
                meter.set("reservoir_edges", len(reservoir.edges))
        if telemetry.enabled:
            telemetry.metrics.inc(
                f"{self.name}.reservoir_evictions", reservoir.evictions
            )

        m_cap = self.memory
        if t <= m_cap:
            scale = 1.0
        else:
            scale = max(
                1.0,
                (t * (t - 1) * (t - 2)) / (m_cap * (m_cap - 1) * (m_cap - 2)),
            )
        estimate = max(0.0, tau * scale)
        details = {"tau": tau, "scale": scale, "stream_length": t}
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)


class TriestImpr:
    """TRIEST-impr: weighted increments, no decrements."""

    name = "triest-impr"

    def __init__(self, memory: int, seed: int = 0) -> None:
        if memory < 6:
            raise ValueError(f"TRIEST needs memory >= 6, got {memory}")
        self.memory = memory
        self.seed = seed

    def run(self, stream: StreamSource) -> EstimateResult:
        meter = SpaceMeter()
        telemetry = _obs.current()
        reservoir = _ReservoirGraph(self.memory, seed=self.seed, variant="impr")
        tau = 0.0
        t = 0
        m_cap = self.memory
        with telemetry.tracer.span("pass1:reservoir", kind="pass"):
            for u, v in stream.edges():
                t += 1
                # impr: count before the sampling decision, with weight eta(t)
                eta = max(1.0, ((t - 1) * (t - 2)) / (m_cap * (m_cap - 1)))
                closed = reservoir.common_neighbors(u, v)
                if closed:
                    tau += eta * closed
                reservoir.offer(u, v, t)
                meter.set("reservoir_edges", len(reservoir.edges))
        if telemetry.enabled:
            telemetry.metrics.inc(
                f"{self.name}.reservoir_evictions", reservoir.evictions
            )
        details = {"stream_length": t}
        return EstimateResult(max(0.0, tau), stream.passes_taken, meter, self.name, details)
