"""Wedge-pair sampling — the adjacency-list C4 comparator.

A simplified stand-in for the Kallaugher–McGregor–Price–Vorotnikova
(PODS 2019) adjacency-list four-cycle algorithm the paper's Theorem 4.2
improves on.  Their algorithm counts cycles individually by sampling
wedges; this baseline does the same in its cleanest unbiased form:

* every wedge ``u - t - v`` (a neighbor pair in ``t``'s adjacency list)
  is sampled independently with probability ``p_w`` (hash-defined);
* sampled wedges are bucketed by endpoint pair ``{u, v}``;
* ``X = sum_pairs C(k_pair, 2)`` where ``k_pair`` is the number of
  sampled wedges in the bucket.  Since two distinct wedges with the
  same endpoints form exactly one four-cycle and survive together with
  probability ``p_w^2``, ``E[X] = 2 T p_w^2`` and ``T_hat = X / (2
  p_w^2)``.

Counting cycles pair-by-pair is exactly what the diamond grouping of
Theorem 4.2 avoids: on large diamonds the bucket sizes are Binomial
and ``C(k, 2)`` has variance ``~ d^3 p_w^3``, which forces ``p_w``
(and hence space) up.  Experiment E5 shows the contrast.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .. import obs as _obs
from ..core.result import EstimateResult
from ..graphs.graph import Vertex, normalize_edge
from ..sketches.hashing import KWiseHash
from ..streams.meter import SpaceMeter
from ..streams.models import AdjacencyListStream


class WedgePairSamplingFourCycles:
    """One-pass adjacency-list C4 estimator by independent wedge sampling.

    Args:
        wedge_probability: the sampling rate ``p_w``.  For a fair
            frontier comparison pick it so the expected sample
            ``p_w * W`` (W = total wedges) matches the competing
            algorithm's space.
        seed: seeds the wedge-sampling hash.
    """

    name = "wedge-pair-sampling"

    def __init__(self, wedge_probability: float, seed: int = 0) -> None:
        if not 0 < wedge_probability <= 1:
            raise ValueError(
                f"wedge probability must be in (0, 1], got {wedge_probability}"
            )
        self.wedge_probability = wedge_probability
        self.seed = seed

    def run(self, stream: AdjacencyListStream) -> EstimateResult:
        if not getattr(stream, "provides_adjacency", False):
            raise TypeError("WedgePairSamplingFourCycles needs an adjacency-list stream")
        meter = SpaceMeter()
        telemetry = _obs.current()
        wedge_hash = KWiseHash(
            k=2, seed=self.seed, namespace="wedge-pair-sampling.wedge"
        )
        buckets: Dict[Tuple[Vertex, Vertex], int] = {}

        with telemetry.tracer.span("pass1:wedge-sample", kind="pass") as span:
            for center, neighbors in stream.adjacency_lists():
                ordered = sorted(neighbors, key=repr)
                for i, u in enumerate(ordered):
                    for v in ordered[i + 1 :]:
                        if wedge_hash.bernoulli((center, u, v), self.wedge_probability):
                            pair = normalize_edge(u, v)
                            if pair not in buckets:
                                buckets[pair] = 0
                                meter.add("wedge_buckets")
                            buckets[pair] += 1
            span.set("space_peak", meter.peak)

        pairs_sum = sum(k * (k - 1) // 2 for k in buckets.values())
        if telemetry.enabled:
            telemetry.metrics.inc(
                f"{self.name}.sampled_wedges", sum(buckets.values())
            )
            telemetry.metrics.inc(f"{self.name}.wedge_buckets", len(buckets))
        estimate = pairs_sum / (2.0 * self.wedge_probability**2)
        details = {
            "sampled_wedges": sum(buckets.values()),
            "buckets": len(buckets),
            "colliding_pairs": pairs_sum,
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)

    @classmethod
    def for_space_budget(
        cls, total_wedges: int, budget_items: int, seed: int = 0
    ) -> "WedgePairSamplingFourCycles":
        """Pick ``p_w`` so the expected sampled-wedge count is ``budget_items``."""
        if total_wedges <= 0:
            raise ValueError("graph has no wedges")
        p = min(1.0, budget_items / total_wedges)
        return cls(wedge_probability=max(p, 1e-9), seed=seed)
