"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``workloads``  — list the named workload families.
* ``generate``   — build a workload and write it as an edge-list file.
* ``exact``      — exact triangle / four-cycle counts of an edge list.
* ``estimate``   — run a streaming algorithm over an edge-list file.
* ``experiments``— print the experiment index (id -> bench target).
* ``obs``        — observability: render a trace file into a report.

``estimate``, ``run-experiment`` and ``paper-table`` accept ``--trace
PATH`` to record a JSON-lines telemetry trace (spans, metrics, run
manifest) that ``repro obs report PATH`` renders afterwards.

``run-experiment`` and ``paper-table`` accept ``--checkpoint PATH`` to
persist each completed unit of work atomically, and ``--resume`` to
restart an interrupted run from that file — recomputing only the
missing units, with byte-identical results (see docs/robustness.md).

Examples::

    python -m repro generate diamond-mixture --out /tmp/g.txt
    python -m repro exact /tmp/g.txt
    python -m repro estimate /tmp/g.txt --problem four-cycles \
        --model adjacency --epsilon 0.3 --trials 5
    python -m repro run-experiment E1 --trace /tmp/e1.jsonl
    python -m repro run-experiment E16 --checkpoint /tmp/ck.jsonl --resume
    python -m repro obs report /tmp/e1.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import statistics
import sys
from typing import List, Optional

from . import api
from . import obs as _obs
from .experiments import ALL_WORKLOADS, build_workload, format_records
from .graphs import four_cycle_count, graph_summary, triangle_count
from .graphs.io import read_edge_list, write_edge_list

EXPERIMENT_INDEX = [
    ("E1", "Thm 2.1 accuracy vs baselines", "benchmarks/bench_e1_triangle_random_order.py"),
    ("E2", "Thm 2.1 space ~ m/sqrt(T)", "benchmarks/bench_e2_triangle_space_scaling.py"),
    ("E3", "Thm 2.6 / Figure 1 lower bound", "benchmarks/bench_e3_lowerbound_construction.py"),
    ("E4", "Lemma 3.1 Useful Algorithm", "benchmarks/bench_e4_useful_algorithm.py"),
    ("E5", "Thm 4.2 diamonds", "benchmarks/bench_e5_fourcycle_adjacency.py"),
    ("E6", "Thm 4.3a moments", "benchmarks/bench_e6_fourcycle_moment.py"),
    ("E7", "Thm 4.3b l2 sampling", "benchmarks/bench_e7_fourcycle_l2.py"),
    ("E8", "Thm 5.3 three passes", "benchmarks/bench_e8_fourcycle_threepass.py"),
    ("E9", "Thm 5.6 distinguisher", "benchmarks/bench_e9_distinguisher.py"),
    ("E10", "Thm 5.7 one-pass dense", "benchmarks/bench_e10_onepass_dense.py"),
    ("E11", "Thm 5.8 DISJ lower bound", "benchmarks/bench_e11_lowerbound_disj.py"),
    ("E12", "Lemma 5.1 structural", "benchmarks/bench_e12_structural_lemma.py"),
    ("E13", "cross-model frontier", "benchmarks/bench_e13_frontier.py"),
    ("E14", "error-vs-space frontier curves", "benchmarks/bench_e14_error_vs_space.py"),
    ("E15", "Section 4 tradeoff table", "benchmarks/bench_e15_adjacency_tradeoffs.py"),
    ("E16", "robustness: error vs stream-fault rate", "src/repro/experiments/robustness.py"),
    ("A1", "ablations of design choices", "benchmarks/bench_a1_ablations.py"),
    ("A2", "median-boost amplification", "benchmarks/bench_a2_boosting.py"),
]


def _estimate_with_seed(estimate_one, seed: int):
    """Module-level trial worker (picklable for ``--jobs`` fan-out)."""
    return estimate_one(seed=seed)


def _maybe_trace(args: argparse.Namespace):
    """A telemetry session writing to ``--trace``, or a no-op context."""
    path = getattr(args, "trace", None)
    if not path:
        return contextlib.nullcontext(_obs.current())
    config = {
        key: value
        for key, value in vars(args).items()
        if key not in ("func",) and not callable(value)
    }
    return _obs.session(path=path, config=config)


def _checkpoint_context(args: argparse.Namespace, key: str):
    """A :class:`CheckpointContext` from ``--checkpoint``/``--resume``.

    Returns the inactive context when no path was given.  ``key`` is
    the run's config hash: resuming against a checkpoint recorded for
    a different config/seed fails loudly instead of mixing results.
    """
    from .resilience.checkpoint import NULL_CHECKPOINT, Checkpoint, CheckpointContext

    path = getattr(args, "checkpoint", None)
    if not path:
        if getattr(args, "resume", False):
            raise SystemExit("--resume requires --checkpoint PATH")
        return NULL_CHECKPOINT
    store = Checkpoint(path, key=key, resume=bool(getattr(args, "resume", False)))
    return CheckpointContext(store)


def _record_checkpoint_lineage(telemetry, checkpoint) -> None:
    """Attach the checkpoint's resume lineage to the run manifest."""
    lineage = checkpoint.lineage()
    if lineage is None or not telemetry.enabled:
        return
    manifest = getattr(telemetry, "manifest", None)
    if manifest is not None:
        manifest.record_invocation("checkpoint", lineage)


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [{"name": name} for name in sorted(ALL_WORKLOADS)]
    print(format_records(rows))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = build_workload(args.name, **({"seed": args.seed} if args.seed is not None else {}))
    header = (
        f"workload={workload.name} params={workload.params} "
        f"triangles={workload.triangles} four_cycles={workload.four_cycles}"
    )
    written = write_edge_list(workload.graph, args.out, header=header)
    print(workload.describe())
    print(f"wrote {written} edges to {args.out}")
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    graph, report = read_edge_list(args.path)
    summary = graph_summary(graph)
    rows = [{"quantity": key, "value": value} for key, value in summary.items()]
    rows.append({"quantity": "duplicates_dropped", "value": report.duplicates_dropped})
    rows.append({"quantity": "self_loops_dropped", "value": report.self_loops_dropped})
    print(format_records(rows))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    import functools

    from .experiments.parallel import parallel_map

    graph, _report = read_edge_list(args.path)
    estimate_one = functools.partial(
        api.estimate,
        graph,
        problem=args.problem,
        model=args.model,
        t_guess=args.t_guess,
        epsilon=args.epsilon,
        boost_copies=args.boost,
    )
    truth = None
    if args.compare_exact:
        truth = (
            triangle_count(graph)
            if args.problem == "triangles"
            else four_cycle_count(graph)
        )
    with _maybe_trace(args) as telemetry:
        with telemetry.tracer.span(
            "estimate", kind="experiment", problem=args.problem, model=args.model
        ):
            results = parallel_map(
                functools.partial(_estimate_with_seed, estimate_one),
                [args.seed + trial for trial in range(args.trials)],
                n_jobs=args.jobs,
            )
        if telemetry.enabled:
            payload = {
                "problem": args.problem,
                "model": args.model,
                "trials": args.trials,
                "epsilon": args.epsilon,
                "estimates": [result.estimate for result in results],
                "space_items": [result.space_items for result in results],
            }
            if truth is not None:
                payload["truth"] = truth
            telemetry.record_run("estimate", payload)
    estimates: List[float] = [result.estimate for result in results]
    spaces: List[int] = [result.space_items for result in results]
    passes = results[-1].passes if results else 0
    rows = [
        {
            "problem": args.problem,
            "model": args.model,
            "median_estimate": round(statistics.median(estimates), 2),
            "trials": args.trials,
            "passes": passes,
            "median_space": statistics.median(spaces),
        }
    ]
    if args.compare_exact:
        truth = (
            triangle_count(graph) if args.problem == "triangles" else four_cycle_count(graph)
        )
        rows[0]["exact"] = truth
        if truth:
            rows[0]["median_rel_err"] = round(
                abs(statistics.median(estimates) - truth) / truth, 4
            )
    print(format_records(rows))
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace}")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    from .experiments.suite import SUITE

    rows = [
        {
            "id": exp_id,
            "claim": claim,
            "bench": bench,
            "light_variant": "yes" if exp_id in SUITE else "",
        }
        for exp_id, claim, bench in EXPERIMENT_INDEX
    ]
    print(format_records(rows))
    print(
        "\nfull run:  pytest <bench> -s --benchmark-disable"
        "\nlight run: python -m repro run-experiment <id>"
    )
    return 0


def _cmd_paper_table(args: argparse.Namespace) -> int:
    from .experiments.paper_table import paper_table, paper_table_checkpoint_key

    checkpoint = _checkpoint_context(
        args, key=paper_table_checkpoint_key(args.seed, args.trials)
    )
    with _maybe_trace(args) as telemetry:
        _record_checkpoint_lineage(telemetry, checkpoint)
        table = paper_table(seed=args.seed, trials=args.trials, checkpoint=checkpoint)
    print("Section 1.1 contributions table, with measured columns")
    print(format_records(table))
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace}")
    if checkpoint.active:
        print(
            f"checkpoint {args.checkpoint}: {checkpoint.hits} row(s) resumed, "
            f"{checkpoint.misses} computed"
        )
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    from .experiments.suite import SUITE, experiment_checkpoint_key, run_experiment

    checkpoint = _checkpoint_context(
        args, key=experiment_checkpoint_key(args.id, args.seed)
    )
    with _maybe_trace(args) as telemetry:
        _record_checkpoint_lineage(telemetry, checkpoint)
        records = run_experiment(
            args.id, seed=args.seed, n_jobs=args.jobs, checkpoint=checkpoint
        )
    experiment = SUITE[args.id.upper()]
    print(experiment.title)
    print(format_records(records))
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace}")
    if checkpoint.active:
        print(
            f"checkpoint {args.checkpoint}: {checkpoint.hits} unit(s) resumed, "
            f"{checkpoint.misses} computed"
        )
    return 0


def _resolve_verify_plans(args: argparse.Namespace) -> List[str]:
    from .verify import PLANS

    names = getattr(args, "algorithm", None)
    if not names:
        return sorted(PLANS)
    unknown = [name for name in names if name not in PLANS]
    if unknown:
        known = ", ".join(sorted(PLANS))
        raise SystemExit(f"unknown algorithm(s) {unknown}; known: {known}")
    return list(names)


def _verify_epsilon_delta(args: argparse.Namespace):
    from .verify.certify import PAPER_DELTA, PAPER_EPSILON

    if getattr(args, "budget_from_paper", False):
        return PAPER_EPSILON, PAPER_DELTA
    return args.epsilon, args.delta


def _cmd_verify_guarantee(args: argparse.Namespace) -> int:
    from .verify import certificates_to_json, certify, certify_checkpoint_key
    from .verify.report import render_certificates, summarize_verdicts, write_json

    names = _resolve_verify_plans(args)
    epsilon, delta = _verify_epsilon_delta(args)
    checkpoint = _checkpoint_context(
        args,
        key=certify_checkpoint_key(
            names, epsilon, delta, args.seed, args.quick, args.batch, args.max_trials
        ),
    )
    with _maybe_trace(args) as telemetry:
        _record_checkpoint_lineage(telemetry, checkpoint)
        certificates = [
            certify(
                name,
                epsilon,
                delta,
                confidence=args.confidence,
                batch_size=args.batch,
                max_trials=args.max_trials,
                seed=args.seed,
                n_jobs=args.jobs,
                quick=args.quick,
                method=args.method,
                checkpoint=checkpoint,
            )
            for name in names
        ]
    print(
        f"guarantee certification: eps={epsilon} delta={delta:.4f} "
        f"confidence={args.confidence}"
    )
    print(render_certificates(certificates))
    if args.json:
        write_json(args.json, certificates_to_json(certificates=certificates))
        print(f"certificates written to {args.json}")
    if checkpoint.active:
        print(
            f"checkpoint {args.checkpoint}: {checkpoint.hits} batch(es) resumed, "
            f"{checkpoint.misses} computed"
        )
    failing = summarize_verdicts(certificates)["FAIL"]
    if failing:
        print(f"FAILED guarantees: {', '.join(failing)}", file=sys.stderr)
        return 1
    return 0


def _cmd_verify_variance(args: argparse.Namespace) -> int:
    from .verify import certificates_to_json, check_variance
    from .verify.report import render_variance, write_json

    names = _resolve_verify_plans(args)
    epsilon, delta = _verify_epsilon_delta(args)
    with _maybe_trace(args):
        reports = [
            check_variance(
                name,
                epsilon,
                delta,
                trials=args.trials,
                seed=args.seed,
                n_jobs=args.jobs,
                quick=args.quick,
            )
            for name in names
        ]
    print(f"variance-ratio checks: eps={epsilon} delta={delta:.4f} trials={args.trials}")
    print(render_variance(reports))
    if args.json:
        write_json(args.json, certificates_to_json(variance_reports=reports))
        print(f"report written to {args.json}")
    failing = [report.algorithm for report in reports if report.verdict == "FAIL"]
    if failing:
        print(f"FAILED variance checks: {', '.join(failing)}", file=sys.stderr)
        return 1
    return 0


def _cmd_verify_seeds(args: argparse.Namespace) -> int:
    from .verify import audit_seeds, default_probes
    from .verify.report import certificates_to_json, render_seed_audit, write_json

    probes = default_probes()
    collisions = audit_seeds(probes)
    print(render_seed_audit(collisions, probes=len(probes)))
    if args.json:
        write_json(args.json, certificates_to_json(seed_collisions=collisions))
        print(f"report written to {args.json}")
    return 1 if collisions else 0


def _cmd_verify_all(args: argparse.Namespace) -> int:
    from .verify import (
        audit_seeds,
        certify,
        certify_checkpoint_key,
        check_variance,
        default_probes,
    )
    from .verify.report import (
        certificates_to_json,
        render_certificates,
        render_seed_audit,
        render_variance,
        summarize_verdicts,
        write_json,
    )

    names = _resolve_verify_plans(args)
    epsilon, delta = _verify_epsilon_delta(args)
    probes = default_probes()
    collisions = audit_seeds(probes)
    print(render_seed_audit(collisions, probes=len(probes)))
    checkpoint = _checkpoint_context(
        args,
        key=certify_checkpoint_key(
            names, epsilon, delta, args.seed, args.quick, args.batch, args.max_trials
        ),
    )
    with _maybe_trace(args) as telemetry:
        _record_checkpoint_lineage(telemetry, checkpoint)
        certificates = [
            certify(
                name,
                epsilon,
                delta,
                confidence=args.confidence,
                batch_size=args.batch,
                max_trials=args.max_trials,
                seed=args.seed,
                n_jobs=args.jobs,
                quick=args.quick,
                method=args.method,
                checkpoint=checkpoint,
            )
            for name in names
        ]
        reports = [
            check_variance(
                name,
                epsilon,
                delta,
                trials=args.trials,
                seed=args.seed,
                n_jobs=args.jobs,
                quick=args.quick,
                checkpoint=checkpoint,
            )
            for name in names
        ]
    print(
        f"\nguarantee certification: eps={epsilon} delta={delta:.4f} "
        f"confidence={args.confidence}"
    )
    print(render_certificates(certificates))
    print(f"\nvariance-ratio checks: trials={args.trials}")
    print(render_variance(reports))
    if args.json:
        write_json(
            args.json,
            certificates_to_json(
                certificates=certificates,
                variance_reports=reports,
                seed_collisions=collisions,
            ),
        )
        print(f"report written to {args.json}")
    if checkpoint.active:
        print(
            f"checkpoint {args.checkpoint}: {checkpoint.hits} unit(s) resumed, "
            f"{checkpoint.misses} computed"
        )
    failing = summarize_verdicts(certificates)["FAIL"]
    variance_failing = [r.algorithm for r in reports if r.verdict == "FAIL"]
    problems = []
    if collisions:
        problems.append("seed audit")
    if failing:
        problems.append(f"guarantees ({', '.join(failing)})")
    if variance_failing:
        problems.append(f"variance ({', '.join(variance_failing)})")
    if problems:
        print(f"verification FAILED: {'; '.join(problems)}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    # imported lazily: repro.obs.report pulls in experiments.reporting,
    # which would make repro.obs -> repro.experiments a hard cycle
    from .obs.report import report_file

    flagged = report_file(
        args.path,
        error_budget=args.error_budget,
        space_budget=args.space_budget,
    )
    if flagged and args.strict:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Triangle and four-cycle counting in the data stream model "
        "(McGregor & Vorotnikova, PODS 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workload families").set_defaults(
        func=_cmd_workloads
    )

    generate = sub.add_parser("generate", help="write a workload as an edge list")
    generate.add_argument("name", help="workload name (see `workloads`)")
    generate.add_argument("--out", required=True, help="output edge-list path")
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(func=_cmd_generate)

    exact = sub.add_parser("exact", help="exact counts of an edge-list file")
    exact.add_argument("path")
    exact.set_defaults(func=_cmd_exact)

    estimate = sub.add_parser("estimate", help="streaming estimate over a file")
    estimate.add_argument("path")
    estimate.add_argument("--problem", choices=api.PROBLEMS, default="triangles")
    estimate.add_argument("--model", choices=api.MODELS, default="random")
    estimate.add_argument(
        "--t-guess",
        type=float,
        default=None,
        help="count parameter T; omit to auto-calibrate with a guess schedule",
    )
    estimate.add_argument("--epsilon", type=float, default=0.2)
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument("--trials", type=int, default=1)
    estimate.add_argument("--boost", type=int, default=1, help="median-boost copies")
    estimate.add_argument(
        "--compare-exact",
        action="store_true",
        help="also compute the exact count and report the error",
    )
    estimate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent trials (-1 = all cores)",
    )
    estimate.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSON-lines telemetry trace (render with `repro obs report`)",
    )
    estimate.set_defaults(func=_cmd_estimate)

    sub.add_parser("experiments", help="print the experiment index").set_defaults(
        func=_cmd_experiments
    )

    table = sub.add_parser(
        "paper-table", help="regenerate the paper's contributions table (measured)"
    )
    table.add_argument("--seed", type=int, default=0)
    table.add_argument("--trials", type=int, default=3)
    table.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSON-lines telemetry trace (render with `repro obs report`)",
    )
    table.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="persist each completed row to this file (atomic JSON lines)",
    )
    table.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint, recomputing only missing rows",
    )
    table.set_defaults(func=_cmd_paper_table)

    run_exp = sub.add_parser(
        "run-experiment", help="run a light experiment variant inline"
    )
    run_exp.add_argument("id", help="experiment id, e.g. E9")
    run_exp.add_argument("--seed", type=int, default=0)
    run_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent trials (-1 = all cores)",
    )
    run_exp.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSON-lines telemetry trace (render with `repro obs report`)",
    )
    run_exp.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="persist each completed unit to this file (atomic JSON lines)",
    )
    run_exp.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint, recomputing only missing units",
    )
    run_exp.set_defaults(func=_cmd_run_experiment)

    verify = sub.add_parser(
        "verify", help="statistical guarantee certification (see docs/verification.md)"
    )
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)

    def _add_verify_common(p, trials_flag=False, certify_flags=False):
        p.add_argument(
            "--algorithm",
            action="append",
            default=None,
            metavar="NAME",
            help="restrict to this algorithm plan (repeatable; default: all)",
        )
        p.add_argument("--epsilon", type=float, default=0.3)
        p.add_argument(
            "--delta",
            type=float,
            default=1.0 / 3.0,
            help="target failure probability of the (1 +- eps) guarantee",
        )
        p.add_argument(
            "--budget-from-paper",
            action="store_true",
            help="certify at the paper's canonical (eps=0.3, delta=1/3) budget, "
            "overriding --epsilon/--delta",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent trials (-1 = all cores)",
        )
        p.add_argument(
            "--quick",
            action="store_true",
            help="smaller planted workloads (CI smoke scale)",
        )
        p.add_argument(
            "--json", default=None, metavar="PATH", help="also write results as JSON"
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="write a JSON-lines telemetry trace (render with `repro obs report`)",
        )
        if trials_flag:
            p.add_argument(
                "--trials",
                type=int,
                default=64,
                help="trials per variance estimate",
            )
        if certify_flags:
            p.add_argument("--confidence", type=float, default=0.95)
            p.add_argument(
                "--batch", type=int, default=25, help="trials per sequential batch"
            )
            p.add_argument(
                "--max-trials",
                type=int,
                default=200,
                help="trial budget before declaring INCONCLUSIVE",
            )
            p.add_argument(
                "--method",
                choices=["wilson", "clopper-pearson"],
                default="wilson",
                help="confidence-interval method for the failure probability",
            )
            p.add_argument(
                "--checkpoint",
                default=None,
                metavar="PATH",
                help="persist each completed batch to this file (atomic JSON lines)",
            )
            p.add_argument(
                "--resume",
                action="store_true",
                help="resume from --checkpoint, recomputing only missing batches",
            )

    guarantee = verify_sub.add_parser(
        "guarantee",
        help="certify P(|est - T| > eps T) <= delta with a binomial CI",
    )
    _add_verify_common(guarantee, certify_flags=True)
    guarantee.set_defaults(func=_cmd_verify_guarantee)

    variance = verify_sub.add_parser(
        "variance", help="empirical vs theoretical variance-ratio checks"
    )
    _add_verify_common(variance, trials_flag=True)
    variance.set_defaults(func=_cmd_verify_variance)

    seeds_cmd = verify_sub.add_parser(
        "seeds",
        help="static seed audit: flag components with correlated RNG streams",
    )
    seeds_cmd.add_argument(
        "--json", default=None, metavar="PATH", help="also write results as JSON"
    )
    seeds_cmd.set_defaults(func=_cmd_verify_seeds)

    verify_all = verify_sub.add_parser(
        "all", help="seed audit + guarantee certificates + variance checks"
    )
    _add_verify_common(verify_all, trials_flag=True, certify_flags=True)
    verify_all.set_defaults(func=_cmd_verify_all)

    obs = sub.add_parser("obs", help="observability commands")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="render a trace file into per-phase timing/space tables"
    )
    report.add_argument("path", help="JSON-lines trace written via --trace")
    report.add_argument(
        "--error-budget",
        type=float,
        default=None,
        help="flag trials whose relative error exceeds this "
        "(default: the run's epsilon, when recorded)",
    )
    report.add_argument(
        "--space-budget",
        type=float,
        default=None,
        help="flag trials whose space (items) exceeds this",
    )
    report.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any trial is flagged",
    )
    report.set_defaults(func=_cmd_obs_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
