"""The paper's algorithms (Theorems 2.1, 4.2, 4.3, 5.3, 5.6, 5.7)."""

from .boosting import MedianBoost, copies_for_failure_probability
from .distinguisher_search import SearchOutcome, estimate_by_search
from .fourcycle_adjacency_diamond import FourCycleAdjacencyDiamond
from .fourcycle_arbitrary_onepass import FourCycleArbitraryOnePass
from .fourcycle_arbitrary_threepass import (
    FourCycleArbitraryThreePass,
    subsample_q,
)
from .fourcycle_distinguisher import FourCycleDistinguisher, distinguish_with_boost
from .fourcycle_l2sampling import FourCycleL2Sampling
from .fourcycle_moment import FourCycleMoment
from .result import EstimateResult
from .triangle_random_order import TriangleRandomOrder
from .useful import UsefulAlgorithm, bernoulli_vertex_sample

__all__ = [
    "EstimateResult",
    "TriangleRandomOrder",
    "UsefulAlgorithm",
    "bernoulli_vertex_sample",
    "FourCycleAdjacencyDiamond",
    "FourCycleMoment",
    "FourCycleL2Sampling",
    "FourCycleArbitraryThreePass",
    "FourCycleArbitraryOnePass",
    "FourCycleDistinguisher",
    "distinguish_with_boost",
    "subsample_q",
    "MedianBoost",
    "copies_for_failure_probability",
    "SearchOutcome",
    "estimate_by_search",
]
