"""Success-probability amplification by independent copies.

Every theorem in the paper ends with the same remark: run Θ(log 1/δ)
copies in parallel and take the median (or, for distinguishers, the
majority).  :class:`MedianBoost` packages that pattern for any
algorithm in this library.

"Parallel" copies observe the *same* stream tokens, so the boost runs
each copy over re-iterations of the same stream instance — all our
stream sources replay identical token sequences per pass — and reports
the pass count of a single copy (what the parallel composition would
cost) while charging the *sum* of the copies' space.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List

from .. import obs as _obs
from ..sketches.estimators import median
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource
from .result import EstimateResult

AlgorithmFactory = Callable[[int], Any]  # copy seed -> algorithm


def copies_for_failure_probability(delta: float, base_failure: float = 1.0 / 3) -> int:
    """How many copies drive a ``base_failure``-error algorithm below
    failure probability ``delta`` under a median/majority combine.

    The standard Chernoff bound gives ``k >= ln(1/delta) / (2 (1/2 -
    base_failure)^2)``; the result is rounded up to the next odd
    integer so the median is a single run's output.
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if not 0 < base_failure < 0.5:
        raise ValueError(
            f"base failure probability must be in (0, 0.5), got {base_failure}"
        )
    k = math.ceil(math.log(1.0 / delta) / (2.0 * (0.5 - base_failure) ** 2))
    return k + 1 if k % 2 == 0 else k


class MedianBoost:
    """Median-of-copies wrapper around any ``run(stream)`` algorithm.

    Args:
        algorithm_factory: ``copy_seed -> algorithm``; called once per
            copy with distinct seeds derived from ``seed``.
        copies: number of independent copies (odd keeps the median a
            real run output; even is allowed and averages the middle
            pair).
        seed: base seed for the copy seeds.
    """

    name = "median-boost"

    def __init__(
        self, algorithm_factory: AlgorithmFactory, copies: int = 5, seed: int = 0
    ) -> None:
        if copies < 1:
            raise ValueError(f"need at least one copy, got {copies}")
        self.algorithm_factory = algorithm_factory
        self.copies = copies
        self.seed = seed

    def run(self, stream: StreamSource) -> EstimateResult:
        results: List[EstimateResult] = []
        passes_per_copy = 0
        meter = SpaceMeter()
        telemetry = _obs.current()
        for j in range(self.copies):
            before = stream.passes_taken
            algorithm = self.algorithm_factory(self.seed * 100_003 + j)
            with telemetry.tracer.span(f"copy[{j}]", kind="copy"):
                result = algorithm.run(stream)
            passes_per_copy = max(passes_per_copy, stream.passes_taken - before)
            results.append(result)
            meter.merge(result.space, prefix=f"copy{j}_")
        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.copies", self.copies)
        estimate = median([r.estimate for r in results])
        details = {
            "copies": self.copies,
            "estimates": [r.estimate for r in results],
            "inner_algorithm": results[0].algorithm,
        }
        return EstimateResult(estimate, passes_per_copy, meter, self.name, details)
