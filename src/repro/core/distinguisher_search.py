"""Coarse four-cycle estimation by distinguisher search.

A derived application of Theorem 5.6: a 0-vs-T distinguisher run on a
descending geometric schedule of promises yields a constant-factor
*estimate* of T in two passes per probe.  The distinguisher detects a
graph with at least T' cycles with constant probability when promised
``t_guess <= T'`` (its sample rate ``c/sqrt(t_guess)`` is then dense
enough), and never errs on cycle-free graphs — so the largest promise
at which a majority of copies detect is a calibrated lower-bound-style
estimate of T.

This is a heuristic composition, not a theorem from the paper: the
in-between regime (graphs with some cycles but fewer than the promise)
has no guarantee, which is why the answer is quoted as a bracket
``[detected_at, detected_at * ratio)`` rather than a point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..streams.models import StreamSource
from .fourcycle_distinguisher import FourCycleDistinguisher

StreamFactory = Callable[[int], StreamSource]


@dataclass
class SearchOutcome:
    """The probe trace and the resulting bracket."""

    probes: List[Tuple[float, float]]  # (promise, detection rate)
    lower: float  # largest promise with majority detection (0 if none)
    upper: float  # next probe up (the bracket's open end)
    c: float = 3.0  # the distinguisher's sampling constant

    @property
    def bracket(self) -> Tuple[float, float]:
        return (self.lower, self.upper)

    @property
    def point_estimate(self) -> float:
        """Calibrated point estimate (0 for no detection).

        At promise ``t`` the expected number of sampled cycle pairs is
        about ``2 c^2 T / t`` (each of the ~T cycles has 2 disjoint
        pairs, each surviving with probability ``(c/sqrt(t))^2``), so
        majority detection switches off near ``t ~ 2 c^2 T``.  The
        geometric bracket midpoint divided by ``2 c^2`` therefore
        centers on ``T``.
        """
        if self.lower <= 0:
            return 0.0
        midpoint = (self.lower * self.upper) ** 0.5
        return midpoint / (2.0 * self.c**2)


def estimate_by_search(
    stream_factory: StreamFactory,
    max_promise: float,
    ratio: float = 4.0,
    copies_per_probe: int = 5,
    c: float = 3.0,
    seed: int = 0,
) -> SearchOutcome:
    """Probe promises ``max_promise, max_promise/ratio, ...`` down to 1.

    Args:
        stream_factory: ``seed -> fresh stream`` of the same graph
            (each probe copy takes two passes).
        max_promise: the largest T to consider (e.g. ``2 m^2``).
        ratio: geometric step between probes.
        copies_per_probe: distinguisher copies per promise; majority
            vote decides detection.

    Returns the probe trace and the detection bracket.
    """
    if max_promise < 1:
        raise ValueError(f"max_promise must be >= 1, got {max_promise}")
    if ratio <= 1:
        raise ValueError(f"ratio must exceed 1, got {ratio}")
    probes: List[Tuple[float, float]] = []
    promise = float(max_promise)
    previous = promise * ratio
    while promise >= 1.0:
        hits = 0
        for copy in range(copies_per_probe):
            algorithm = FourCycleDistinguisher(
                t_guess=promise, c=c, seed=seed * 10_007 + copy
            )
            if algorithm.decide(stream_factory(seed * 10_007 + copy)):
                hits += 1
        rate = hits / copies_per_probe
        probes.append((promise, rate))
        if rate > 0.5:
            return SearchOutcome(probes=probes, lower=promise, upper=previous, c=c)
        previous = promise
        promise /= ratio
    return SearchOutcome(probes=probes, lower=0.0, upper=previous, c=c)
