"""Theorem 4.2: two-pass (1+eps)-approximate four-cycle counting in the
adjacency list model via diamonds, using Õ(eps^-5 m / sqrt(T)) space.

A *(u, v)-diamond* of size ``h`` is the complete bipartite graph
between ``{u, v}`` and their ``h`` common neighbors; it holds
``C(h, 2)`` four-cycles, and every four-cycle lies in exactly two
diamonds (one per diagonal).  Instead of counting cycles one by one,
the algorithm estimates, per size class, the *number of diamonds* —
a lower-variance quantity — and converts to cycles via ``C(h, 2)``.

Per size-class boundary ``b`` (levels ``b = s * 2^k`` for each of
``O(1/eps)`` boundary shifts ``s = (1+eps)^j``):

* **Pass 1** samples vertices with probability ``p_v ~ b log^3 n /
  (sqrt(T) eps^2)`` and, on each sampled vertex, samples incident edges
  with probability ``p_e ~ log n / (eps^2 b)``.  Two independent copies
  (``V^1, E^1`` and ``V^2, E^2``) feed the Useful Algorithm's two
  samples.

* **Pass 2** streams adjacency blocks: on block ``(v, N(v))`` and for
  each sampled ``u``, ``a(u, v)`` counts two-paths ``u - w - v`` with
  ``uw`` in the sampled edge set, giving the size estimate ``d_hat =
  a / p_e`` (Lemma 4.1: a (1 +- eps/10) estimate when ``d >= b``).
  Pairs with ``(1 + eps/6) b <= d_hat < 2 (1 - eps/6) b`` become edges
  of the class graph ``H_b`` with weight ``C(d_hat, 2) / C(b, 2)``;
  the Useful Algorithm (Section 3) estimates ``H_b``'s total weight in
  the same pass.

* The per-class estimates are summed within each shift; the *largest*
  shift total is kept (the shift argument guarantees some shift misses
  at most an O(eps) fraction of cycles near class boundaries) and
  halved (each cycle lives in two diamonds).

Practical scaling: ``c`` scales every sampling constant and
``log_power`` selects the power of ``log n`` used (the paper's 3 and 1;
default 1 keeps laptop-scale runs below exact mode).
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from .. import obs as _obs
from ..graphs.graph import Vertex
from ..sketches.hashing import KWiseHash
from ..streams.meter import SpaceMeter
from ..streams.models import AdjacencyListStream
from .result import EstimateResult
from .useful import UsefulAlgorithm


def _choose2(value: float) -> float:
    """Continuous ``C(value, 2)`` (the size estimates are fractional)."""
    return value * (value - 1) / 2.0


class _ClassInstance:
    """State of one (shift, level) size class: samples + Useful run."""

    def __init__(
        self,
        boundary: float,
        pv: float,
        pe: float,
        epsilon: float,
        t_guess: float,
        seed: int,
    ) -> None:
        self.boundary = boundary
        self.pv = pv
        self.pe = pe
        self.accept_low = (1 + epsilon / 6.0) * boundary
        self.accept_high = 2.0 * (1 - epsilon / 6.0) * boundary
        self.norm = max(_choose2(boundary), 0.5)
        self.m_bound = max(1.0, 2.0 * t_guess / self.norm)
        self.vertex_hashes = [
            KWiseHash(k=2, seed=seed, namespace="diamond.vertex[0]"),
            KWiseHash(k=2, seed=seed, namespace="diamond.vertex[1]"),
        ]
        self.edge_hashes = [
            KWiseHash(k=2, seed=seed, namespace="diamond.edge[0]"),
            KWiseHash(k=2, seed=seed, namespace="diamond.edge[1]"),
        ]
        self.sampled: List[Set[Vertex]] = [set(), set()]  # V^1, V^2
        # inverted index: middle vertex w -> sampled endpoints u with
        # (u, w) in the sampled edge set of u's copy
        self.edge_index: List[Dict[Vertex, List[Vertex]]] = [dict(), dict()]
        self.sampled_edge_count = 0
        self.useful: UsefulAlgorithm | None = None

    # ------------------------------------------------------------------
    def observe_pass1(self, vertex: Vertex, neighbors: List[Vertex]) -> None:
        for copy in (0, 1):
            if not self.vertex_hashes[copy].bernoulli(vertex, self.pv):
                continue
            self.sampled[copy].add(vertex)
            for w in neighbors:
                if self.edge_hashes[copy].bernoulli((vertex, w), self.pe):
                    self.edge_index[copy].setdefault(w, []).append(vertex)
                    self.sampled_edge_count += 1

    def start_pass2(self) -> None:
        self.useful = UsefulAlgorithm(
            r1=self.sampled[0],
            r2=self.sampled[1],
            p=self.pv,
            m_bound=self.m_bound,
        )

    def observe_pass2(self, vertex: Vertex, neighbors: List[Vertex]) -> None:
        """Compute a(u, v) for sampled u, filter, feed the Useful run."""
        if self.useful is None:
            raise RuntimeError("start_pass2() was not called")
        # a(u, v): walk v's list once, credit sampled endpoints via the
        # inverted index.  For u sampled in both copies, copy 1's edge
        # sample is canonical.
        counts0: Dict[Vertex, int] = {}
        counts1: Dict[Vertex, int] = {}
        for w in neighbors:
            for counts, index in (
                (counts0, self.edge_index[0]),
                (counts1, self.edge_index[1]),
            ):
                for u in index.get(w, ()):
                    if u != vertex:
                        counts[u] = counts.get(u, 0) + 1
        weights: Dict[Vertex, float] = {}
        for u in counts0.keys() | counts1.keys():
            if u in self.sampled[0]:
                count = counts0.get(u, 0)
            else:
                count = counts1.get(u, 0)
            d_hat = count / self.pe
            if self.accept_low <= d_hat < self.accept_high:
                weights[u] = _choose2(d_hat) / self.norm
        self.useful.process_vertex(vertex, weights)

    # ------------------------------------------------------------------
    def estimate_cycles(self) -> float:
        """This class's four-cycle estimate ``max(0, W_hat) * norm``."""
        if self.useful is None:
            raise RuntimeError("pass 2 did not run")
        return max(0.0, self.useful.estimate()) * self.norm

    @property
    def space_items(self) -> int:
        useful_items = self.useful.space_items if self.useful is not None else 0
        return self.sampled_edge_count + useful_items


class FourCycleAdjacencyDiamond:
    """Two-pass adjacency-list diamond-counting C4 estimator.

    Args:
        t_guess: the parameter ``T``.
        epsilon: target accuracy; also sets the number of shifts.
        c: global scale on both sampling probabilities.
        seed: seeds all hash functions.
        log_power: power of ``log2 n`` in the vertex-sampling
            probability (paper: 3; practical default: 1).
        num_shifts: ablation override for the number of boundary
            shifts.  The paper uses ``log_{1+eps} 2`` shifts so that
            some shift misses few diamonds near class boundaries;
            forcing ``num_shifts=1`` exposes the boundary-loss the
            shifts exist to repair (see the ablation benchmark).
    """

    name = "mv-fourcycle-diamond"

    def __init__(
        self,
        t_guess: float,
        epsilon: float = 0.2,
        c: float = 1.0,
        seed: int = 0,
        log_power: float = 1.0,
        num_shifts: int = None,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if num_shifts is not None and num_shifts < 1:
            raise ValueError(f"num_shifts must be >= 1, got {num_shifts}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.c = c
        self.seed = seed
        self.log_power = log_power
        self.num_shifts = num_shifts

    # ------------------------------------------------------------------
    def _build_classes(self, n: int) -> List[List[_ClassInstance]]:
        """One list of level instances per shift."""
        eps = self.epsilon
        num_shifts = (
            self.num_shifts
            if self.num_shifts is not None
            else max(1, math.ceil(math.log(2.0) / math.log(1.0 + eps)))
        )
        max_level = max(1, math.ceil(math.log2(n)))
        log_term = max(1.0, math.log2(n)) ** self.log_power
        sqrt_t = math.sqrt(self.t_guess)

        shifts: List[List[_ClassInstance]] = []
        for j in range(num_shifts):
            shift = (1.0 + eps) ** j
            levels: List[_ClassInstance] = []
            for k in range(max_level + 1):
                boundary = shift * (2**k)
                if (1 + eps / 6.0) * boundary > n:  # no diamond can be accepted
                    continue
                pv = min(1.0, self.c * boundary * log_term / (sqrt_t * eps**2))
                pe = min(1.0, self.c * log_term / (eps**2 * boundary))
                levels.append(
                    _ClassInstance(
                        boundary=boundary,
                        pv=pv,
                        pe=pe,
                        epsilon=eps,
                        t_guess=self.t_guess,
                        seed=self.seed * 100_003 + j * 211 + k * 7,
                    )
                )
            shifts.append(levels)
        return shifts

    def run(self, stream: AdjacencyListStream) -> EstimateResult:
        if not getattr(stream, "provides_adjacency", False):
            raise TypeError("FourCycleAdjacencyDiamond requires an adjacency-list stream")
        n = max(2, stream.num_vertices)
        meter = SpaceMeter()
        telemetry = _obs.current()
        shifts = self._build_classes(n)
        all_classes = [inst for levels in shifts for inst in levels]

        # ---- pass 1: draw vertex + edge samples per class -------------
        with telemetry.tracer.span("pass1:sample", kind="pass") as span:
            for vertex, neighbors in stream.adjacency_lists():
                for inst in all_classes:
                    inst.observe_pass1(vertex, neighbors)
            span.set(
                "sampled_edges", sum(inst.sampled_edge_count for inst in all_classes)
            )

        # ---- pass 2: estimate sizes, feed the Useful runs --------------
        with telemetry.tracer.span("pass2:size-estimate", kind="pass"):
            for inst in all_classes:
                inst.start_pass2()
            for vertex, neighbors in stream.adjacency_lists():
                for inst in all_classes:
                    inst.observe_pass2(vertex, neighbors)

        # ---- combine: per-shift totals, keep the max, halve ------------
        with telemetry.tracer.span("post:combine", kind="phase"):
            shift_totals: List[float] = []
            per_class: List[Dict[str, float]] = []
            for j, levels in enumerate(shifts):
                total = 0.0
                for inst in levels:
                    cycles = inst.estimate_cycles()
                    total += cycles
                    per_class.append(
                        {
                            "shift_index": j,
                            "boundary": inst.boundary,
                            "pv": inst.pv,
                            "pe": inst.pe,
                            "cycles": cycles,
                        }
                    )
                shift_totals.append(total)
            best_shift = max(range(len(shift_totals)), key=lambda j: shift_totals[j])
            estimate = shift_totals[best_shift] / 2.0

        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.size_classes", len(all_classes))
            telemetry.metrics.inc(
                f"{self.name}.sampled_edges",
                sum(inst.sampled_edge_count for inst in all_classes),
            )

        for idx, inst in enumerate(all_classes):
            meter.set(f"class_{idx}", inst.space_items)

        details = {
            "shift_totals": shift_totals,
            "best_shift": best_shift,
            "num_classes": len(all_classes),
            "per_class": per_class,
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)
