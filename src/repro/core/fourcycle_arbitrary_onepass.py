"""Theorem 5.7: one-pass four-cycle counting in the arbitrary order
model when ``T = Omega(n^2 / eps^2)``, using Õ(eps^-2 n) space.

The Section 4.2 moment approach re-implemented for arbitrary edge
arrivals: the F2(x) basic estimator now keeps the 3n running counters
``A_t, B_t, C_t`` per copy (updated on each edge arrival from both
endpoints), which also makes it work under edge *deletions* — the
dynamic setting the paper notes in Section 5.3.

The F1(z) term is estimated by sampling a set ``R`` of vertices
(probability ``p_v ~ eps^-2 / n``), storing the exact neighbor set of
each sampled vertex, and evaluating ``z`` on all pairs inside ``R``
scaled by ``1 / p_v^2``.  This replaces the paper's (unspecified in the
arbitrary-order section) pair sampling with an equivalent-variance
scheme whose space is ``p_v * 2m = O(eps^-2 m / n) <= O(eps^-2 n)`` —
documented in DESIGN.md as a substitution that preserves the claimed
space bound.
"""

from __future__ import annotations

import math
from typing import Dict, Set

from .. import obs as _obs
from ..graphs.graph import Vertex
from ..sketches.hashing import KWiseHash
from ..sketches.wedge_f2 import WedgeF2Estimator
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource
from .result import EstimateResult


class FourCycleArbitraryOnePass:
    """One-pass arbitrary-order C4 counter for dense graphs.

    Args:
        t_guess: the parameter ``T`` (only used for reporting; the
            sampling rates here depend on ``n`` and ``epsilon``).
        epsilon: target accuracy; also the cap ``1/eps`` in ``z``.
        c: scale on the vertex-sampling constant for the F1 term.
        groups / group_size: F2 median-of-means layout.
        seed: seeds all hash functions.
    """

    name = "mv-fourcycle-arbitrary-onepass"

    def __init__(
        self,
        t_guess: float,
        epsilon: float = 0.1,
        c: float = 2.0,
        groups: int = 5,
        group_size: int = 6,
        seed: int = 0,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.c = c
        self.groups = groups
        self.group_size = group_size
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, stream: StreamSource) -> EstimateResult:
        n = max(2, stream.num_vertices)
        meter = SpaceMeter()
        telemetry = _obs.current()

        # pv ~ n / (eps^2 T); with T = Omega(n^2) this is O(1 / (eps^2 n))
        # and the stored neighbor sets total O(eps^-2 n) words.
        vertex_prob = min(
            1.0, self.c * math.log(n) * n / (self.epsilon**2 * self.t_guess)
        )
        vertex_hash = KWiseHash(k=2, seed=self.seed, namespace="fourcycle-onepass.vertex")
        f2_estimator = WedgeF2Estimator(
            groups=self.groups, group_size=self.group_size, seed=self.seed
        )

        tracked_neighbors: Dict[Vertex, Set[Vertex]] = {}

        with telemetry.tracer.span("pass1:stream", kind="pass") as span:
            for u, v in stream.edges():
                f2_estimator.process_edge(u, v, delta=1)
                for a, b in ((u, v), (v, u)):
                    if vertex_hash.bernoulli(a, vertex_prob):
                        bucket = tracked_neighbors.setdefault(a, set())
                        if b not in bucket:
                            bucket.add(b)
                            meter.add("tracked_neighbor_entries")
            span.set("space_peak", meter.peak)

        # F1(z) over pairs inside the sampled vertex set
        with telemetry.tracer.span("post:f1-pairs", kind="phase"):
            cap = 1.0 / self.epsilon
            sampled = sorted(tracked_neighbors, key=repr)
            f1_sum = 0.0
            for i, u in enumerate(sampled):
                neighbors_u = tracked_neighbors[u]
                for v in sampled[i + 1 :]:
                    common = len(neighbors_u & tracked_neighbors[v])
                    if common:
                        f1_sum += min(common, cap)
            f1_hat = f1_sum / (vertex_prob**2) if vertex_prob > 0 else 0.0

        f2_hat = f2_estimator.estimate()
        meter.set("f2_counters", f2_estimator.space_items)
        estimate = max(0.0, (f2_hat - f1_hat) / 4.0)

        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.sampled_vertices", len(sampled))
            telemetry.metrics.set_gauge(
                f"{self.name}.vertex_probability", vertex_prob
            )

        details = {
            "f2_hat": f2_hat,
            "f1_hat": f1_hat,
            "vertex_probability": vertex_prob,
            "sampled_vertices": len(sampled),
            "f2_copies": f2_estimator.num_copies,
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)

    # ------------------------------------------------------------------
    def run_dynamic(self, updates, n: int) -> float:
        """The dynamic (insert/delete) variant the paper notes.

        Args:
            updates: iterable of ``(u, v, delta)`` with ``delta`` +1 for
                an insertion, -1 for a deletion.
            n: number of vertices.

        Returns the F2-only estimate ``F2_hat(x) / 4 - n``-free form:
        since z-capping needs the final graph, the dynamic variant
        reports ``(F2_hat - F1_exactless) / 4`` with the F1 term from
        the tracked sets after all updates (deletions remove entries).
        """
        f2_estimator = WedgeF2Estimator(
            groups=self.groups, group_size=self.group_size, seed=self.seed
        )
        vertex_prob = min(
            1.0, self.c * math.log(max(2, n)) * n / (self.epsilon**2 * self.t_guess)
        )
        vertex_hash = KWiseHash(k=2, seed=self.seed, namespace="fourcycle-onepass.vertex")
        tracked: Dict[Vertex, Set[Vertex]] = {}
        for u, v, delta in updates:
            f2_estimator.process_edge(u, v, delta=delta)
            for a, b in ((u, v), (v, u)):
                if vertex_hash.bernoulli(a, vertex_prob):
                    bucket = tracked.setdefault(a, set())
                    if delta > 0:
                        bucket.add(b)
                    else:
                        bucket.discard(b)
        cap = 1.0 / self.epsilon
        sampled = sorted(tracked, key=repr)
        f1_sum = 0.0
        for i, u in enumerate(sampled):
            for v in sampled[i + 1 :]:
                common = len(tracked[u] & tracked[v])
                if common:
                    f1_sum += min(common, cap)
        f1_hat = f1_sum / (vertex_prob**2) if vertex_prob > 0 else 0.0
        return max(0.0, (f2_estimator.estimate() - f1_hat) / 4.0)
