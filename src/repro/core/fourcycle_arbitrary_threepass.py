"""Theorem 5.3: three-pass (1+eps)-approximate four-cycle counting in
the arbitrary order model, using Õ(m / T^{1/4}) space.

Structure (paper Section 5.1):

* **Pass 1** draws, with ``p ~ log n / (eps^2 T^{1/4})``:
  an edge sample ``S0``; a vertex sample ``Q1`` with all incident edges
  ``S1``; and an independent ``Q2 / S2``.

* **Pass 2** stores, for every stream edge ``e``, each four-cycle
  ``tau`` that ``e`` completes with three edges of ``S0`` (expected
  ``~ 4 T p^3`` stored pairs).

* **Pass 3** classifies every edge of every stored cycle as heavy
  (in at least ``~ eta * sqrt(T)`` four-cycles) or light, using one
  *Useful Algorithm* run per edge ``e`` over the derived graph ``H_e``:
  vertices of ``H_e`` are the edges of ``G`` adjacent to ``e``, and
  edges of ``H_e`` are the four-cycles through ``e``.  The Useful
  samples ``R1(e), R2(e)`` are carved out of ``Q1/S1`` and ``Q2/S2``
  with the paper's ``f/g`` sub-sampling hashes, which restore
  per-H_e-vertex independence even though a single sampled vertex of
  ``G`` can contribute up to two H_e vertices (Section 5.1's ``q``
  satisfying ``(p(0.4+q))^2 = pq``).

* The estimate is ``A0 / (4 p^3) + A1 / p^3`` where ``A0`` counts
  stored pairs whose cycle is all-light and ``A1`` those with heavy
  ``e`` and three light companions.  Cycles with two or more heavy
  edges are dropped; Lemma 5.1 bounds them by ``82 T / eta``.

The parameter ``eta`` trades accuracy (the ``164/eta`` loss) against
the variance control that heavy-edge removal buys; the paper treats it
as a large constant.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from .. import obs as _obs
from ..graphs.graph import Edge, Vertex, normalize_edge
from ..sketches.hashing import KWiseHash
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource
from .result import EstimateResult
from .useful import UsefulAlgorithm

Cycle = Tuple[Vertex, Vertex, Vertex, Vertex]  # (a, b, c, d) in cycle order


def subsample_q(p: float) -> float:
    """The paper's ``q``: the smaller root of ``p (0.4 + q)^2 = q``.

    Ensures that including an H_e vertex ``(d, x)`` with probability
    ``0.4 + q`` (given ``d`` sampled, both of ``d``'s candidate edges
    present) makes the pair of H_e vertices at ``d`` behave like two
    independent ``p (0.4 + q)`` draws.  Valid (``q <= 0.2``) for
    ``p <~ 0.55``; the caller falls back to direct selection above that.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"q is defined for p in (0, 1), got {p}")
    a, b, c = p, 0.8 * p - 1.0, 0.16 * p
    disc = b * b - 4 * a * c
    if disc < 0:
        raise ValueError(f"no real q for p={p}")
    return (-b - math.sqrt(disc)) / (2 * a)


class _EdgeOracle:
    """One heavy/light classifier: a Useful run over ``H_e``."""

    def __init__(
        self,
        edge: Edge,
        q1: Set[Vertex],
        q2: Set[Vertex],
        s1_adj: Dict[Vertex, Set[Vertex]],
        s2_adj: Dict[Vertex, Set[Vertex]],
        p: float,
        m_bound: float,
        seed: int,
    ) -> None:
        self.edge = edge
        self._s_adj = (s1_adj, s2_adj)
        self._select_hash = [
            KWiseHash(k=2, seed=seed, namespace="threepass.select[0]"),
            KWiseHash(k=2, seed=seed, namespace="threepass.select[1]"),
        ]
        if 0.0 < p < 0.5:
            q = subsample_q(p)
            self._mode = "paper"
            self._include_both_prob = q
            effective_p = p * (0.4 + q)
        else:
            # dense regime (p >= 0.5, outside the paper's p < 0.1 remit):
            # select each candidate H_e vertex with probability 0.4; at
            # p == 1 the pair events are exactly independent, and the
            # residual correlation for p in (0.5, 1) is at most a factor
            # 1/p on the pair probability.
            self._mode = "direct"
            self._include_both_prob = 0.0
            effective_p = 0.4 * min(1.0, p)
        self.effective_p = effective_p
        # build R1(e), R2(e): H_e vertices selected from each sample
        self._r = [
            self._build_sample(copy, q1 if copy == 0 else q2)
            for copy in (0, 1)
        ]
        self.useful = UsefulAlgorithm(
            r1=self._r[0], r2=self._r[1], p=effective_p, m_bound=m_bound
        )

    # ------------------------------------------------------------------
    def _build_sample(self, copy: int, q_set: Set[Vertex]) -> Set[Edge]:
        """Select H_e vertices ``(d, x)`` with ``d`` in the Q sample."""
        a, b = self.edge
        selected: Set[Edge] = set()
        adj = self._s_adj[copy]
        candidates: Set[Vertex] = set()
        for x in (a, b):
            candidates.update(d for d in adj.get(x, ()) if d in q_set)
        candidates.discard(a)
        candidates.discard(b)
        hash_fn = self._select_hash[copy]
        for d in candidates:
            has_to_a = a in adj.get(d, ())
            has_to_b = b in adj.get(d, ())
            edges_present = [x for x, has in ((a, has_to_a), (b, has_to_b)) if has]
            if not edges_present:
                continue
            if self._mode == "direct":
                for x in edges_present:
                    if hash_fn.bernoulli((d, x, self.edge), 0.4):
                        selected.add(normalize_edge(d, x))
                continue
            q = self._include_both_prob
            if len(edges_present) == 2:
                choice = hash_fn.choice4((d, self.edge), 0.4, 0.4, q)
                if choice in (0, 2):
                    selected.add(normalize_edge(d, edges_present[0]))
                if choice in (1, 2):
                    selected.add(normalize_edge(d, edges_present[1]))
            else:
                if hash_fn.bernoulli((d, self.edge), 0.4 + q):
                    selected.add(normalize_edge(d, edges_present[0]))
        return selected

    # ------------------------------------------------------------------
    def process_stream_edge(self, f: Edge) -> None:
        """Pass-3 hook: ``f`` shares exactly one endpoint with ``e``.

        ``f`` is a vertex of ``H_e``; its observable H_e-neighbors are
        the selected sample members ``g = (d, opposite)`` hanging off
        the *other* endpoint of ``e``, connected iff the witness edge
        between the outer endpoints exists (checkable because ``d``'s
        full adjacency is in the S sample that produced ``g``).
        """
        a, b = self.edge
        fu, fv = f
        if fu in (a, b):
            shared, outer = fu, fv
        else:
            shared, outer = fv, fu
        opposite = b if shared == a else a
        weights: Dict[Edge, float] = {}
        for copy in (0, 1):
            adj = self._s_adj[copy]
            for g in self._r[copy]:
                gu, gv = g
                if opposite == gu:
                    d = gv
                elif opposite == gv:
                    d = gu
                else:
                    continue  # g hangs off the same endpoint as f
                if d in (a, b, outer, shared) or outer in (opposite, d):
                    continue
                # witness edge (outer, d): d's adjacency is complete in S
                if outer in adj.get(d, ()):
                    weights[g] = 1.0
        self.useful.process_vertex(f, weights)

    def classify(self, eta_sqrt_t: float) -> bool:
        """True iff heavy: the Useful estimate reaches ``eta sqrt(T)``."""
        return self.useful.estimate() >= eta_sqrt_t

    @property
    def space_items(self) -> int:
        """Only the oracle's *extra* words: its heavy counters and O(1)
        globals.  The samples it reads (S1, S2) are shared across all
        oracles and metered once by the caller, matching the paper's
        space accounting."""
        return self.useful.heavy_counter_count + 3


class FourCycleArbitraryThreePass:
    """The three-pass arbitrary-order C4 counter.

    Args:
        t_guess: the parameter ``T``.
        epsilon: target accuracy (drives the sampling probability).
        eta: the heavy-edge threshold multiplier (paper: a large
            constant; the accuracy guarantee is ``1 - 164/eta - eps``).
        c: scale on the sampling probability.
        seed: seeds all hashes.
        use_log_factor: include ``log n`` in the sampling probability.
    """

    name = "mv-fourcycle-threepass"

    def __init__(
        self,
        t_guess: float,
        epsilon: float = 0.2,
        eta: float = 8.0,
        c: float = 1.0,
        seed: int = 0,
        use_log_factor: bool = True,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.eta = eta
        self.c = c
        self.seed = seed
        self.use_log_factor = use_log_factor

    # ------------------------------------------------------------------
    def run(self, stream: StreamSource) -> EstimateResult:
        n = max(2, stream.num_vertices)
        meter = SpaceMeter()
        telemetry = _obs.current()
        log_factor = math.log2(n) if self.use_log_factor else 1.0
        p = min(
            1.0,
            self.c * log_factor / (self.epsilon**2 * self.t_guess**0.25),
        )

        edge_hash = KWiseHash(k=2, seed=self.seed, namespace="threepass.edge")
        q1_hash = KWiseHash(k=2, seed=self.seed, namespace="threepass.q1")
        q2_hash = KWiseHash(k=2, seed=self.seed, namespace="threepass.q2")

        # ---- pass 1: draw S0, Q1/S1, Q2/S2 ---------------------------
        s0_adj: Dict[Vertex, Set[Vertex]] = {}
        q_sets: Tuple[Set[Vertex], Set[Vertex]] = (set(), set())
        s_adjs: Tuple[Dict[Vertex, Set[Vertex]], Dict[Vertex, Set[Vertex]]] = (
            {},
            {},
        )
        with telemetry.tracer.span("pass1:sample", kind="pass") as pass1_span:
            for u, v in stream.edges():
                edge = normalize_edge(u, v)
                if edge_hash.bernoulli(edge, p):
                    s0_adj.setdefault(u, set()).add(v)
                    s0_adj.setdefault(v, set()).add(u)
                    meter.add("S0_edges")
                for q_set, s_adj, q_hash in (
                    (q_sets[0], s_adjs[0], q1_hash),
                    (q_sets[1], s_adjs[1], q2_hash),
                ):
                    hit = False
                    for w in (u, v):
                        if q_hash.bernoulli(w, p):
                            q_set.add(w)
                            hit = True
                    if hit:
                        s_adj.setdefault(u, set()).add(v)
                        s_adj.setdefault(v, set()).add(u)
                        meter.add("S1_S2_edges")
            pass1_span.set("space_peak", meter.peak)

        # ---- pass 2: store cycles completed by three S0 edges --------
        stored: List[Tuple[Edge, Cycle]] = []
        with telemetry.tracer.span("pass2:store-cycles", kind="pass") as span:
            for a, b in stream.edges():
                for cycle in self._completions(s0_adj, a, b):
                    stored.append(((a, b), cycle))
                    meter.add("stored_cycles")
            span.set("stored_cycles", len(stored))

        # ---- pass 3: classify every involved edge --------------------
        eta_sqrt_t = self.eta * math.sqrt(self.t_guess)
        oracles: Dict[Edge, _EdgeOracle] = {}
        edge_index: Dict[Vertex, List[_EdgeOracle]] = {}
        for _, (a, b, c_v, d_v) in stored:
            for e in (
                normalize_edge(a, b),
                normalize_edge(b, c_v),
                normalize_edge(c_v, d_v),
                normalize_edge(d_v, a),
            ):
                if e in oracles:
                    continue
                oracle = _EdgeOracle(
                    edge=e,
                    q1=q_sets[0],
                    q2=q_sets[1],
                    s1_adj=s_adjs[0],
                    s2_adj=s_adjs[1],
                    p=p,
                    m_bound=eta_sqrt_t,
                    seed=self.seed * 100_003 + len(oracles),
                )
                oracles[e] = oracle
                for w in e:
                    edge_index.setdefault(w, []).append(oracle)

        if oracles:
            with telemetry.tracer.span("pass3:classify", kind="pass") as span:
                for u, v in stream.edges():
                    f = normalize_edge(u, v)
                    seen: Set[Edge] = set()
                    for w in (u, v):
                        for oracle in edge_index.get(w, ()):
                            if oracle.edge == f or oracle.edge in seen:
                                continue
                            seen.add(oracle.edge)
                            # f must share exactly one endpoint with e
                            a, b = oracle.edge
                            shared = (u in (a, b)) + (v in (a, b))
                            if shared == 1:
                                oracle.process_stream_edge(f)
                span.set("num_oracles", len(oracles))
            passes = stream.passes_taken
        else:
            passes = stream.passes_taken  # oracle pass not needed

        heavy: Dict[Edge, bool] = {
            e: oracle.classify(eta_sqrt_t) for e, oracle in oracles.items()
        }
        for idx, oracle in enumerate(oracles.values()):
            meter.add("oracle_counters", oracle.space_items)

        # ---- combine --------------------------------------------------
        a0 = 0
        a1 = 0
        for e_raw, (a, b, c_v, d_v) in stored:
            e = normalize_edge(*e_raw)
            cycle_edges = [
                normalize_edge(a, b),
                normalize_edge(b, c_v),
                normalize_edge(c_v, d_v),
                normalize_edge(d_v, a),
            ]
            others = [g for g in cycle_edges if g != e]
            e_heavy = heavy.get(e, False)
            others_heavy = sum(1 for g in others if heavy.get(g, False))
            if not e_heavy and others_heavy == 0:
                a0 += 1
            elif e_heavy and others_heavy == 0:
                a1 += 1
        estimate = a0 / (4.0 * p**3) + a1 / (p**3)

        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.inc(f"{self.name}.stored_cycles", len(stored))
            metrics.inc(f"{self.name}.oracle_calls", len(oracles))
            metrics.inc(f"{self.name}.heavy_edges", sum(heavy.values()))

        details = {
            "p": p,
            "eta_sqrt_t": eta_sqrt_t,
            "stored_pairs": len(stored),
            "a0": a0,
            "a1": a1,
            "num_oracles": len(oracles),
            "num_heavy_edges": sum(heavy.values()),
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)

    # ------------------------------------------------------------------
    @staticmethod
    def _completions(
        s0_adj: Dict[Vertex, Set[Vertex]], a: Vertex, b: Vertex
    ) -> List[Cycle]:
        """All cycles ``a-b-c-d`` whose other three edges are in S0."""
        cycles: List[Cycle] = []
        neighbors_b = s0_adj.get(b)
        neighbors_a = s0_adj.get(a)
        if not neighbors_b or not neighbors_a:
            return cycles
        for c in neighbors_b:
            if c == a:
                continue
            c_neighbors = s0_adj.get(c, set())
            for d in neighbors_a:
                if d == b or d == c or d == a:
                    continue
                if d in c_neighbors:
                    cycles.append((a, b, c, d))
        return cycles
