"""Theorem 5.6: two-pass distinguisher between 0 and T four-cycles in
arbitrary-order streams, using Õ(m^{3/2} / T^{3/4}) space.

Pass 1 samples every edge independently with probability ``p = c /
sqrt(T)`` into ``S``.  If the graph has ``T`` four-cycles then, with
constant probability, ``S`` contains a *light* vertex-disjoint pair of
edges of some four-cycle (Lemma 5.5) — so the subgraph induced by the
endpoints ``V_S`` contains a four-cycle.  Pass 2 collects edges with
both endpoints in ``V_S`` until it finds a four-cycle or the stream
ends; by the Kővári–Sós–Turán bound (Lemma 5.4), a four-cycle-free
collection can never exceed ``2 |V_S|^{3/2}`` edges, which caps the
space at Õ(m^{3/2} / T^{3/4}).

The output is a decision, not an estimate: :meth:`decide` returns
whether a four-cycle was found.  On a four-cycle-free input the answer
is always ``False`` (one-sided error); on an input with at least ``T``
four-cycles the answer is ``True`` with constant probability, boosted
by :func:`distinguish_with_boost`.
"""

from __future__ import annotations

import math
from typing import Dict, Set, Tuple

from .. import obs as _obs
from ..graphs.graph import Vertex, normalize_edge
from ..sketches.hashing import KWiseHash
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource
from .result import EstimateResult


class FourCycleDistinguisher:
    """The two-pass 0-vs-T four-cycle distinguisher.

    Args:
        t_guess: the promise parameter ``T``.
        c: scale on the edge-sampling probability ``p = c / sqrt(T)``
            (the paper's "sufficiently large constant").
        seed: seeds the sampling hash.
        hard_cap_factor: safety multiplier on the Lemma 5.4 cap
            ``2 |V_S|^{3/2}``; reaching the cap without a four-cycle
            would contradict the lemma, so it raises.
    """

    name = "mv-fourcycle-distinguisher"

    def __init__(
        self,
        t_guess: float,
        c: float = 2.0,
        seed: int = 0,
        hard_cap_factor: float = 1.0,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if c <= 0:
            raise ValueError(f"scale c must be positive, got {c}")
        self.t_guess = float(t_guess)
        self.c = c
        self.seed = seed
        self.hard_cap_factor = hard_cap_factor

    # ------------------------------------------------------------------
    def decide(self, stream: StreamSource) -> bool:
        """Two passes; True iff a four-cycle was found."""
        return self.run(stream).estimate > 0

    def run(self, stream: StreamSource) -> EstimateResult:
        meter = SpaceMeter()
        telemetry = _obs.current()
        p = min(1.0, self.c / math.sqrt(self.t_guess))
        sample_hash = KWiseHash(
            k=2, seed=self.seed, namespace="fourcycle-distinguisher.sample"
        )

        # ---- pass 1: sample edges, collect endpoint set V_S ----------
        sampled_vertices: Set[Vertex] = set()
        sampled_edges = 0
        with telemetry.tracer.span("pass1:sample", kind="pass") as span:
            for u, v in stream.edges():
                if sample_hash.bernoulli(normalize_edge(u, v), p):
                    sampled_edges += 1
                    for w in (u, v):
                        if w not in sampled_vertices:
                            sampled_vertices.add(w)
                            meter.add("sampled_vertices")
            span.set("sampled_vertices", len(sampled_vertices))

        # ---- pass 2: collect induced edges until a C4 appears --------
        cap = max(
            4, math.ceil(self.hard_cap_factor * 2.0 * len(sampled_vertices) ** 1.5)
        )
        adjacency: Dict[Vertex, Set[Vertex]] = {}
        collected = 0
        witness: Tuple[Vertex, ...] = ()
        with telemetry.tracer.span("pass2:induced-search", kind="pass") as span:
            for u, v in stream.edges():
                if u not in sampled_vertices or v not in sampled_vertices:
                    continue
                cycle = self._closes_four_cycle(adjacency, u, v)
                if cycle:
                    witness = cycle
                    break
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
                collected += 1
                meter.add("induced_edges")
                if collected > cap:
                    raise AssertionError(
                        "collected more than 2|V_S|^{3/2} edges without a "
                        "four-cycle — contradicts Lemma 5.4"
                    )
            span.set("induced_edges", collected)

        found = bool(witness)
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.inc(f"{self.name}.sampled_edges", sampled_edges)
            metrics.inc(f"{self.name}.induced_edges", collected)
            metrics.inc(f"{self.name}.witness_found", int(found))
        details = {
            "found": found,
            "witness": witness,
            "sample_probability": p,
            "sampled_edges": sampled_edges,
            "sampled_vertices": len(sampled_vertices),
            "induced_edges_collected": collected,
            "kst_cap": cap,
        }
        estimate = self.t_guess if found else 0.0
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)

    @staticmethod
    def _closes_four_cycle(
        adjacency: Dict[Vertex, Set[Vertex]], u: Vertex, v: Vertex
    ) -> Tuple[Vertex, ...]:
        """If adding edge (u, v) closes a four-cycle, return its vertices.

        A new four-cycle through ``(u, v)`` is a path ``u - x - y - v``
        already present, with ``x != v``, ``y != u`` and ``x != y``.
        """
        neighbors_u = adjacency.get(u)
        neighbors_v = adjacency.get(v)
        if not neighbors_u or not neighbors_v:
            return ()
        for x in neighbors_u:
            if x == v:
                continue
            x_neighbors = adjacency.get(x, set())
            for y in neighbors_v:
                if y == u or y == x:
                    continue
                if y in x_neighbors:
                    return (u, x, y, v)
        return ()


def distinguish_with_boost(
    stream_factory,
    t_guess: float,
    copies: int = 5,
    c: float = 2.0,
    seed: int = 0,
) -> bool:
    """Run ``copies`` independent distinguishers, take the majority.

    Because the no-instance error is one-sided (a four-cycle-free graph
    can never produce a witness), any single ``True`` is proof of a
    four-cycle; the majority vote is kept for symmetry with the paper's
    Theorem 5.6 statement, but ``any`` would be sound too.

    Args:
        stream_factory: ``seed -> StreamSource``; called once per copy
            so each copy gets an independent stream object (same graph).
    """
    votes = 0
    for j in range(copies):
        algorithm = FourCycleDistinguisher(t_guess, c=c, seed=seed * 1_000 + j)
        if algorithm.decide(stream_factory(j)):
            votes += 1
    return votes * 2 > copies
