"""Theorem 4.3b: one-pass four-cycle counting in the adjacency list
model via l2 sampling, using Õ(Delta + eps^-2 n^2 / T) space.

With ``x`` the wedge vector, draw pairs ``uv`` with probability
``x_uv^2 / F2(x)`` and let the indicator ``X`` be 1 with probability
``(x_uv - 1) / (4 x_uv)``.  Then

    E[X] = sum_uv (x_uv^2 / F2) * (x_uv - 1)/(4 x_uv)
         = (sum_uv C(x_uv, 2) / 2) / F2  =  T / F2(x),

so ``mean(X) * F2_hat`` estimates ``T``.  Since ``F2(x) <= n^2 + 6T``,
``O(eps^-2 (n^2 + T)/T log n)`` samples suffice (paper Section 4.2.4).

Implementation: each adjacency block of length ``d`` is expanded into
its ``C(d, 2)`` wedge updates (this is the O(Delta) working-space step
the paper describes) and fed to

* a :class:`~repro.sketches.wedge_f2.WedgeF2Estimator` for ``F2(x)``
  (the paper's own basic estimator — an "existing frequency moment
  algorithm" in its terms), and
* an :class:`~repro.sketches.l2_sampler.L2SamplerBank` whose successful
  extractions provide the ``(uv, x_uv)`` samples.  The returned value
  estimate is rounded to the nearest positive integer — the wedge
  vector is integral, so CountSketch recovery is typically exact.
"""

from __future__ import annotations

from typing import List, Set

from .. import obs as _obs
from ..graphs.graph import Vertex, normalize_edge
from ..seeding import component_rng
from ..sketches.l2_sampler import L2SamplerBank
from ..sketches.wedge_f2 import WedgeF2Estimator
from ..streams.meter import SpaceMeter
from ..streams.models import AdjacencyListStream
from .result import EstimateResult


class FourCycleL2Sampling:
    """One-pass adjacency-list C4 counter via l2 samples of ``x``.

    Args:
        t_guess: the parameter ``T`` (reporting only; sample count and
            sketch width are explicit knobs).
        epsilon: target accuracy.
        num_samplers: size of the l2-sampler bank (the paper's ``r``).
        sampler_width / sampler_rows: CountSketch geometry per sampler.
        accept_scale: precision-sampling acceptance scale (success
            probability of one sampler is ~ 1/accept_scale).
        groups / group_size: F2 estimator layout.
        seed: seeds all hashes and the Bernoulli coin.
    """

    name = "mv-fourcycle-l2"

    def __init__(
        self,
        t_guess: float,
        epsilon: float = 0.2,
        num_samplers: int = 48,
        sampler_width: int = 512,
        sampler_rows: int = 5,
        accept_scale: float = 4.0,
        groups: int = 5,
        group_size: int = 8,
        seed: int = 0,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if num_samplers < 1:
            raise ValueError("need at least one l2 sampler")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.num_samplers = num_samplers
        self.sampler_width = sampler_width
        self.sampler_rows = sampler_rows
        self.accept_scale = accept_scale
        self.groups = groups
        self.group_size = group_size
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, stream: AdjacencyListStream) -> EstimateResult:
        if not getattr(stream, "provides_adjacency", False):
            raise TypeError("FourCycleL2Sampling requires an adjacency-list stream")
        meter = SpaceMeter()
        telemetry = _obs.current()
        f2_estimator = WedgeF2Estimator(
            groups=self.groups, group_size=self.group_size, seed=self.seed
        )
        bank = L2SamplerBank(
            count=self.num_samplers,
            seed=self.seed,
            rows=self.sampler_rows,
            width=self.sampler_width,
            accept_scale=self.accept_scale,
        )
        meter.set("sampler_cells", bank.space_items)
        meter.set("f2_copies", f2_estimator.num_copies)

        vertices: Set[Vertex] = set()
        max_degree = 0
        with telemetry.tracer.span("pass1:sketch", kind="pass") as span:
            for vertex, neighbors in stream.adjacency_lists():
                vertices.add(vertex)
                vertices.update(neighbors)
                max_degree = max(max_degree, len(neighbors))
                meter.set("adjacency_buffer", len(neighbors))  # the O(Delta) buffer
                f2_estimator.process_adjacency_list(vertex, neighbors)
                ordered = sorted(neighbors, key=repr)
                for i, u in enumerate(ordered):
                    for v in ordered[i + 1 :]:
                        bank.update(normalize_edge(u, v))
            span.set("space_peak", meter.peak)

        with telemetry.tracer.span("post:extract", kind="phase") as span:
            f2_hat = f2_estimator.estimate()
            ordered_vertices = sorted(vertices, key=repr)
            candidates = [
                normalize_edge(u, v)
                for i, u in enumerate(ordered_vertices)
                for v in ordered_vertices[i + 1 :]
            ]
            samples = bank.samples(candidates, f2_hat)

            rng = component_rng("fourcycle-l2.coin", seed=self.seed)
            successes = 0
            values: List[int] = []
            for _pair, f_estimate in samples:
                x_value = max(1, round(abs(f_estimate)))
                values.append(x_value)
                if rng.random() < (x_value - 1) / (4.0 * x_value):
                    successes += 1
            ratio = successes / len(samples) if samples else 0.0
            estimate = ratio * f2_hat
            span.set("num_samples", len(samples))

        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.inc(f"{self.name}.l2_samples", len(samples))
            metrics.inc(f"{self.name}.bernoulli_successes", successes)
            metrics.set_gauge(f"{self.name}.sketch_saturation", bank.saturation)

        details = {
            "f2_hat": f2_hat,
            "num_samples": len(samples),
            "bernoulli_successes": successes,
            "sampled_values": values,
            "max_degree": max_degree,
            "num_candidate_pairs": len(candidates),
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)
