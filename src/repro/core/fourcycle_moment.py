"""Theorem 4.3a: one-pass four-cycle counting in the adjacency list
model via frequency moments, using Õ(eps^-4 n^4 / T^2) space.

Let ``x`` be the wedge vector (``x[{u,v}]`` = common neighbors of u, v)
and ``z[{u,v}] = min(x[{u,v}], 1/eps)``.  Lemma 4.4 shows

    F2(x) - 4 eps T  <=  F1(z) + 4T  <=  F2(x),

so ``T = (F2(x) - F1(z)) / 4`` up to a (1 + O(eps)) factor whenever the
two moments are estimated to within an additive O(eps T).

* ``F2(x)`` is estimated by the Section 4.2.2 basic estimator
  (:class:`~repro.sketches.wedge_f2.WedgeF2Estimator`), which needs
  only O(1) working counters per copy in the adjacency model.
* ``F1(z)`` is estimated by sampling vertex *pairs* with a hash
  (probability ``p ~ eps^-4 n^2 log n / T^2``), keeping one exact wedge
  counter per sampled pair, capping at ``1/eps`` and rescaling.

The space is polylog(n) when ``T = Omega(n^2 / eps^2)`` — the regime
the theorem targets; outside it the estimate degrades gracefully (the
F2/F1 difference is dominated by noise).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from .. import obs as _obs
from ..graphs.graph import Vertex, normalize_edge
from ..sketches.hashing import KWiseHash
from ..sketches.wedge_f2 import WedgeF2Estimator
from ..streams.meter import SpaceMeter
from ..streams.models import AdjacencyListStream
from .result import EstimateResult


class FourCycleMoment:
    """One-pass adjacency-list C4 counter via F2(x) - F1(z).

    Args:
        t_guess: the parameter ``T`` (sets the pair-sampling rate).
        epsilon: target accuracy; also the cap ``1/eps`` in ``z``.
        c: scale on the pair-sampling constant (paper uses 6).
        groups / group_size: the F2 estimator's median-of-means layout.
            The paper's ``O(1/gamma^2)`` repetitions with ``gamma =
            eps * min(1, eps T / n^2)`` are impractical verbatim; the
            experiments record the layouts used.
        seed: seeds all hash functions.
        use_log_factor: include the ``log n`` factor in the sampling
            probability.
    """

    name = "mv-fourcycle-moment"

    def __init__(
        self,
        t_guess: float,
        epsilon: float = 0.1,
        c: float = 6.0,
        groups: int = 5,
        group_size: int = 8,
        seed: int = 0,
        use_log_factor: bool = True,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.c = c
        self.groups = groups
        self.group_size = group_size
        self.seed = seed
        self.use_log_factor = use_log_factor

    # ------------------------------------------------------------------
    def run(self, stream: AdjacencyListStream) -> EstimateResult:
        if not getattr(stream, "provides_adjacency", False):
            raise TypeError("FourCycleMoment requires an adjacency-list stream")
        n = max(2, stream.num_vertices)
        meter = SpaceMeter()
        telemetry = _obs.current()

        log_factor = math.log(n) if self.use_log_factor else 1.0
        pair_prob = min(
            1.0,
            self.c * log_factor * n**2 / (self.epsilon**4 * self.t_guess**2),
        )
        pair_hash = KWiseHash(k=2, seed=self.seed, namespace="fourcycle-moment.pair")
        f2_estimator = WedgeF2Estimator(
            groups=self.groups, group_size=self.group_size, seed=self.seed * 733 + 6
        )
        meter.set("f2_copies", f2_estimator.num_copies)

        wedge_counters: Dict[Tuple[Vertex, Vertex], int] = {}

        with telemetry.tracer.span("pass1:moments", kind="pass") as span:
            for vertex, neighbors in stream.adjacency_lists():
                f2_estimator.process_adjacency_list(vertex, neighbors)
                if pair_prob > 0:
                    ordered = sorted(neighbors, key=repr)
                    for i, u in enumerate(ordered):
                        for v in ordered[i + 1 :]:
                            pair = normalize_edge(u, v)
                            if pair_hash.bernoulli(pair, pair_prob):
                                if pair not in wedge_counters:
                                    wedge_counters[pair] = 0
                                    meter.add("pair_counters")
                                wedge_counters[pair] += 1
            span.set("space_peak", meter.peak)

        f2_hat = f2_estimator.estimate()
        cap = 1.0 / self.epsilon
        f1_hat = (
            sum(min(count, cap) for count in wedge_counters.values()) / pair_prob
            if pair_prob > 0
            else 0.0
        )
        estimate = max(0.0, (f2_hat - f1_hat) / 4.0)

        if telemetry.enabled:
            telemetry.metrics.inc(f"{self.name}.sampled_pairs", len(wedge_counters))
            telemetry.metrics.set_gauge(f"{self.name}.pair_probability", pair_prob)

        details = {
            "f2_hat": f2_hat,
            "f1_hat": f1_hat,
            "pair_probability": pair_prob,
            "sampled_pairs_with_wedges": len(wedge_counters),
            "f2_copies": f2_estimator.num_copies,
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)
