"""Result type shared by every streaming algorithm in the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..streams.meter import SpaceMeter


@dataclass
class EstimateResult:
    """What a streaming counting algorithm returns.

    Attributes:
        estimate: the count estimate (triangles or four-cycles; for
            distinguishers, 0.0 / a positive value per the decision).
        passes: how many passes over the stream were used.
        space: the space meter the algorithm charged its storage to.
            ``space.peak`` is the word-count the experiments report.
        algorithm: a short stable identifier (e.g. ``"mv-triangle-ro"``).
        details: algorithm-specific diagnostics (heavy edge sets,
            per-level contributions, sample sizes, ...).  Purely
            informational — tests assert on a few stable keys.
        wall_seconds: wall-clock duration of the producing ``run()``
            (filled in by the trial engine; excluded from equality).
        telemetry: the per-trial :class:`~repro.obs.session.TrialTelemetry`
            capture when telemetry was active, else ``None`` (excluded
            from equality; carried across process boundaries so the
            parent can merge worker telemetry deterministically).
    """

    estimate: float
    passes: int
    space: SpaceMeter
    algorithm: str
    details: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = field(default=0.0, compare=False, repr=False)
    telemetry: Optional[Any] = field(default=None, compare=False, repr=False)

    @property
    def space_items(self) -> int:
        """Peak number of stored items (words), the paper's space measure."""
        return self.space.peak

    def relative_error(self, truth: float) -> float:
        """``|estimate - truth| / truth`` (inf when truth is 0 but estimate isn't)."""
        if truth == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - truth) / abs(truth)

    def __repr__(self) -> str:
        return (
            f"EstimateResult(algorithm={self.algorithm!r}, "
            f"estimate={self.estimate:.6g}, passes={self.passes}, "
            f"space_items={self.space_items})"
        )
