"""Theorem 2.1: one-pass (1+eps)-approximate triangle counting in the
random order model, using Õ(eps^-2 * m / sqrt(T)) space.

The algorithm (paper Section 2.1) runs three interleaved components in
a single pass over a randomly ordered edge stream:

1. **Finding potentially heavy edges.**  For levels ``i = 0..L`` with
   ``L = log2(sqrt(T))``, a vertex sample ``V_i`` (probability ``p_i ~
   eps^-2 log n / 2^i``, hash-defined) collects ``E_i``: the edges
   incident to ``V_i`` among the first ``q_i * m`` stream positions,
   ``q_i = 2^i / sqrt(T)``.  An edge ``e`` arriving *after* the level-i
   prefix is stored in the candidate set ``P`` if it closes a triangle
   with two edges of ``E_i``.  Because the order is random, an edge in
   many triangles is very unlikely to escape every level.

2. **Rough estimator.**  The prefix ``S`` of the first ``r * m``
   positions (``r ~ eps^-1 / sqrt(T)``) is stored; ``C`` collects every
   edge that closes a triangle with a wedge inside ``S``.

3. **Post-processing oracle.**  ``O = E_L`` (whose prefix is the whole
   stream) gives ``t^O_e ~ Bin(t_e, p)`` with ``p = p_L``; an edge is
   *heavy* when ``t^O_e >= p * sqrt(T)``.  Light triangles are estimated
   from ``C`` and ``S`` (scaled by ``1/(3 r^2)``); triangles with heavy
   edges are counted from the heavy edges caught in ``P``, each triangle
   weighted ``1/(1+j)`` where ``j`` is the number of *other* heavy edges
   in it so that multi-heavy triangles are not over-counted.

Practical scaling: at laptop sizes the paper's literal ``10 c eps^-2
log n`` constants usually drive every ``p_i`` to 1 (a correct but
space-free "exact mode").  The ``c`` knob scales all sampling constants
at once; EXPERIMENTS.md records the values used per experiment.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from .. import obs as _obs
from ..graphs.graph import Edge, Vertex, normalize_edge
from ..sketches.hashing import KWiseHash
from ..streams.meter import SpaceMeter
from ..streams.models import StreamSource
from .result import EstimateResult

_Adjacency = Dict[Vertex, Set[Vertex]]


def _adj_add(adj: _Adjacency, u: Vertex, v: Vertex) -> None:
    adj.setdefault(u, set()).add(v)
    adj.setdefault(v, set()).add(u)


def _common_neighbors(adj: _Adjacency, u: Vertex, v: Vertex) -> List[Vertex]:
    """Vertices ``w`` with both ``(u, w)`` and ``(v, w)`` present."""
    set_u = adj.get(u)
    set_v = adj.get(v)
    if not set_u or not set_v:
        return []
    if len(set_u) > len(set_v):
        set_u, set_v = set_v, set_u
    return [w for w in set_u if w in set_v]


class TriangleRandomOrder:
    """McGregor–Vorotnikova one-pass random-order triangle counter.

    Args:
        t_guess: the parameter ``T`` — a guess / promised bound on the
            triangle count (the standard parameterization; see paper
            Section 1.1).
        epsilon: target relative accuracy (paper assumes < 1/100 for the
            proofs; any value in (0, 1) runs).
        c: global scale on the sampling constants.  ``c = 1`` with
            ``use_log_factor=True`` is the paper's setting; smaller
            values trade accuracy for space at experiment scale.
        seed: seeds every hash function and nothing else (the stream
            order supplies the rest of the randomness).
        use_log_factor: include the ``log n`` factor in the level
            sampling probabilities (the paper's high-probability knob).
        disable_heavy_path: ablation switch — skip the heavy-edge
            machinery entirely (no level structures are queried for
            candidates, no heavy estimate is added) and return only the
            light estimator.  This is precisely the estimator "implicit
            in previous work" that Section 2.1.1 describes, and the
            ablation benchmark shows it break on heavy-edge workloads.
    """

    name = "mv-triangle-random-order"

    def __init__(
        self,
        t_guess: float,
        epsilon: float = 0.1,
        c: float = 1.0,
        seed: int = 0,
        use_log_factor: bool = True,
        disable_heavy_path: bool = False,
    ) -> None:
        if t_guess < 1:
            raise ValueError(f"t_guess must be >= 1, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if c <= 0:
            raise ValueError(f"scale c must be positive, got {c}")
        self.t_guess = float(t_guess)
        self.epsilon = epsilon
        self.c = c
        self.seed = seed
        self.use_log_factor = use_log_factor
        self.disable_heavy_path = disable_heavy_path

    # ------------------------------------------------------------------
    def run(self, stream: StreamSource) -> EstimateResult:
        """One pass over ``stream``; returns the triangle estimate."""
        n = max(2, stream.num_vertices)
        m = stream.num_edges
        meter = SpaceMeter()
        telemetry = _obs.current()
        if m == 0:
            return EstimateResult(0.0, 1, meter, self.name, {"empty": True})

        sqrt_t = math.sqrt(self.t_guess)
        num_levels = max(0, math.ceil(math.log2(sqrt_t))) if sqrt_t > 1 else 0
        levels = [] if self.disable_heavy_path else list(range(num_levels + 1))

        log_factor = math.log2(n) if self.use_log_factor else 1.0
        sample_const = 10.0 * self.c * log_factor / (self.epsilon**2)
        level_prob = [min(1.0, sample_const / (2**i)) for i in levels]
        prefix_len = [min(m, math.floor(m * (2**i) / sqrt_t)) for i in levels]
        if levels:
            # level L is the oracle: its prefix must be the whole stream
            prefix_len[-1] = m
            oracle_prob = level_prob[-1]
        else:  # ablation mode: no oracle, every edge is light
            oracle_prob = 1.0

        level_hash = [
            KWiseHash(
                k=8, seed=self.seed, namespace=f"triangle-random-order.level[{i}]"
            )
            for i in levels
        ]
        level_adj: List[_Adjacency] = [dict() for _ in levels]

        r = min(1.0, self.c / (self.epsilon * sqrt_t))
        s_len = max(1, math.ceil(r * m))
        r_effective = s_len / m

        s_adj: _Adjacency = {}
        s_edges: List[Edge] = []
        candidates_c: Set[Edge] = set()
        potential_p: Set[Edge] = set()

        # ---------------- the single pass ------------------------------
        with telemetry.tracer.span("pass1:stream", kind="pass") as pass_span:
            for pos, (u, v) in enumerate(stream.edges(), start=1):
                edge = normalize_edge(u, v)
                for i in levels:
                    if pos <= prefix_len[i]:
                        if level_hash[i].bernoulli(u, level_prob[i]) or level_hash[
                            i
                        ].bernoulli(v, level_prob[i]):
                            _adj_add(level_adj[i], u, v)
                            meter.add(f"level_{i}_edges")
                    elif edge not in potential_p and _common_neighbors(
                        level_adj[i], u, v
                    ):
                        potential_p.add(edge)
                        meter.add("potential_heavy_P")
                if pos <= s_len:
                    _adj_add(s_adj, u, v)
                    s_edges.append(edge)
                    meter.add("prefix_S")
                elif edge not in candidates_c and _common_neighbors(s_adj, u, v):
                    candidates_c.add(edge)
                    meter.add("candidates_C")

            # triangles entirely inside S were not visible while S was filling
            for u, v in s_edges:
                edge = (u, v)
                if edge not in candidates_c and _common_neighbors(s_adj, u, v):
                    candidates_c.add(edge)
                    meter.add("candidates_C")
            pass_span.set("space_peak", meter.peak)

        # ---------------- post-processing ------------------------------
        with telemetry.tracer.span("post:estimate", kind="phase"):
            oracle_adj = level_adj[-1] if level_adj else {}
            heavy_threshold = oracle_prob * sqrt_t
            heavy_cache: Dict[Edge, bool] = {}
            oracle_calls = 0

            def oracle_count(u: Vertex, v: Vertex) -> int:
                return len(_common_neighbors(oracle_adj, u, v))

            def is_heavy(u: Vertex, v: Vertex) -> bool:
                nonlocal oracle_calls
                edge = normalize_edge(u, v)
                cached = heavy_cache.get(edge)
                if cached is None:
                    oracle_calls += 1
                    cached = oracle_count(u, v) >= heavy_threshold
                    heavy_cache[edge] = cached
                return cached

            # light part: T0_hat = X / (3 r^2), X = light wedges in S closed
            # by a light edge of C
            light_wedge_pairs = 0
            for u, v in candidates_c:
                if is_heavy(u, v):
                    continue
                for w in _common_neighbors(s_adj, u, v):
                    if not is_heavy(u, w) and not is_heavy(v, w):
                        light_wedge_pairs += 1
            t0_hat = light_wedge_pairs / (3.0 * r_effective**2)

            # heavy part: each triangle of a caught heavy edge, weighted by
            # 1/(1+j) with j = number of other heavy edges in it
            heavy_sum = 0.0
            heavy_caught = 0
            for u, v in potential_p:
                if not is_heavy(u, v):
                    continue
                heavy_caught += 1
                for w in _common_neighbors(oracle_adj, u, v):
                    other_heavy = int(is_heavy(u, w)) + int(is_heavy(v, w))
                    heavy_sum += 1.0 / (1 + other_heavy)
            heavy_hat = heavy_sum / oracle_prob

        estimate = t0_hat + heavy_hat
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.inc(f"{self.name}.candidates_C", len(candidates_c))
            metrics.inc(f"{self.name}.potential_heavy_P", len(potential_p))
            metrics.inc(f"{self.name}.heavy_promotions", heavy_caught)
            metrics.inc(f"{self.name}.oracle_calls", oracle_calls)
            metrics.observe(f"{self.name}.prefix_S_edges", len(s_edges))
        details = {
            "t0_hat": t0_hat,
            "heavy_hat": heavy_hat,
            "num_levels": len(levels),
            "oracle_prob": oracle_prob,
            "heavy_threshold": heavy_threshold,
            "prefix_fraction_r": r_effective,
            "size_S": len(s_edges),
            "size_C": len(candidates_c),
            "size_P": len(potential_p),
            "heavy_edges_caught": heavy_caught,
            "level_edge_counts": [
                sum(len(neigh) for neigh in adj.values()) // 2 for adj in level_adj
            ],
        }
        return EstimateResult(estimate, stream.passes_taken, meter, self.name, details)
