"""The "Useful Algorithm" of Section 3.

An abstract one-pass estimator reused by two of the paper's headline
results (the adjacency-list diamond algorithm of Theorem 4.2 and the
heavy-edge oracle inside the three-pass algorithm of Theorem 5.3).

Setting (paper Section 3): a weighted graph ``H`` with edge weights in
``[1, lambda]`` and total weight ``W`` is revealed as a stream of its
*vertices*; when vertex ``v`` arrives we observe every edge between
``v`` and the members of two pre-drawn vertex samples ``R1`` and ``R2``
(each vertex sampled independently with probability ``p``).  The goal
is to estimate ``W`` against a scale parameter ``M``:

* if ``W <= M`` the estimate is ``W +- eps * M`` (Lemma 3.1a);
* the estimate separates ``W >= 2M`` from ``W <= M/2`` (Lemma 3.1b, c).

Mechanics: edges are directed toward the *earlier* endpoint, so
``sum_v win(v) = W``.  ``R1``-incident in-weight classifies vertices as
heavy (``win_1(v) >= p * sqrt(M)``) or light; light in-weight is summed
through the ``R2`` sample; each heavy vertex in ``R2`` gets an exact
counter.  Two independent samples keep the classifier and the
estimator independent.

This class is deliberately *caller-driven*: the caller streams vertices
through :meth:`process_vertex`, supplying the observable H-edges to
``R1 | R2``.  It never sees the rest of the graph — exactly the
information model of the paper.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Set, Tuple

from .. import obs as _obs

HVertex = Hashable


class UsefulAlgorithm:
    """One-pass total-weight estimator over an observed vertex stream.

    Args:
        r1: the classifier sample (vertices drawn with probability ``p``).
        r2: the estimator sample (independent, same probability).
        p: the sampling probability used to draw ``r1`` and ``r2``.
        m_bound: the scale ``M``; the heavy threshold is ``p * sqrt(M)``.

    The caller must present *every* vertex of ``H`` exactly once, in
    stream order, giving for each the weights of its H-edges to members
    of ``r1 | r2`` (both already-seen and not-yet-seen members).
    """

    def __init__(
        self,
        r1: Iterable[HVertex],
        r2: Iterable[HVertex],
        p: float,
        m_bound: float,
    ) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"sampling probability must be in (0, 1], got {p}")
        if m_bound <= 0:
            raise ValueError(f"scale M must be positive, got {m_bound}")
        self.r1: Set[HVertex] = set(r1)
        self.r2: Set[HVertex] = set(r2)
        self.p = p
        self.m_bound = m_bound
        self.heavy_threshold = p * math.sqrt(m_bound)

        self._seen: Set[HVertex] = set()
        self._a = 0.0  # running sum of wout_2(v) == sum over R2 of win
        self._a_heavy = 0.0  # AH: sum of win_2(v) over heavy v
        self._heavy_counters: Dict[HVertex, float] = {}  # a(u) for u in V'_H
        self._heavy_vertices: Set[HVertex] = set()  # all heavy v (diagnostics)
        self._finished = False

    # ------------------------------------------------------------------
    def process_vertex(
        self, v: HVertex, neighbor_weights: Mapping[HVertex, float]
    ) -> None:
        """Stream the next vertex of ``H``.

        Args:
            v: the arriving vertex.
            neighbor_weights: weights of all H-edges between ``v`` and
                members of ``r1 | r2`` (other entries are ignored, so a
                caller may pass a superset map).  ``v`` itself must not
                appear as its own neighbor.
        """
        if self._finished:
            raise RuntimeError("estimate() was already called; stream is closed")
        if v in neighbor_weights:
            raise ValueError(f"vertex {v!r} listed as its own neighbor")

        wout_2 = 0.0  # weight to R2 vertices seen earlier (out-edges of v)
        win_1 = 0.0  # weight to R1 vertices not yet seen (in-edges of v)
        win_2 = 0.0  # weight to R2 vertices not yet seen (in-edges of v)
        for u, weight in neighbor_weights.items():
            if weight < 0:
                raise ValueError(f"negative H-edge weight {weight} on {u!r}")
            in_r1 = u in self.r1
            in_r2 = u in self.r2
            if not (in_r1 or in_r2):
                continue
            seen = u in self._seen
            if in_r2:
                if seen:
                    wout_2 += weight
                else:
                    win_2 += weight
            if in_r1 and not seen:
                win_1 += weight
            # exact counters for heavy R2 vertices seen earlier
            if seen and u in self._heavy_counters:
                self._heavy_counters[u] += weight

        self._a += wout_2
        if win_1 >= self.heavy_threshold:
            self._heavy_vertices.add(v)
            if v in self.r2:
                self._heavy_counters.setdefault(v, 0.0)
            self._a_heavy += win_2

        self._seen.add(v)

    # ------------------------------------------------------------------
    def estimate(self) -> float:
        """The estimate ``W_hat = (AL + AH) / p`` (Lemma 3.1)."""
        if not self._finished:
            # Emit once, when the stream closes — a Useful run can be
            # queried repeatedly but its promotions happened exactly once.
            telemetry = _obs.current()
            if telemetry.enabled:
                telemetry.metrics.inc(
                    "useful.heavy_promotions", len(self._heavy_vertices)
                )
                telemetry.metrics.inc(
                    "useful.heavy_counters", len(self._heavy_counters)
                )
        self._finished = True
        a_light = self._a - sum(self._heavy_counters.values())
        return (a_light + self._a_heavy) / self.p

    def is_large(self) -> bool:
        """The Lemma 3.1(b, c) decision: ``W_hat >= M`` implies
        ``W >= M/2``; ``W_hat < M`` implies ``W <= 2M`` (whp)."""
        return self.estimate() >= self.m_bound

    # ------------------------------------------------------------------
    @property
    def heavy_vertices(self) -> Set[HVertex]:
        """All vertices classified heavy so far (diagnostics)."""
        return set(self._heavy_vertices)

    @property
    def heavy_counter_count(self) -> int:
        """Number of per-heavy-vertex exact counters currently held."""
        return len(self._heavy_counters)

    @property
    def space_items(self) -> int:
        """Words held: the two samples (with seen-bits folded in) plus
        one counter per heavy R2 vertex plus the O(1) globals."""
        return len(self.r1) + len(self.r2) + len(self._heavy_counters) + 3


def bernoulli_vertex_sample(
    vertices: Iterable[HVertex], p: float, seed: int
) -> Tuple[Set[HVertex], Set[HVertex]]:
    """Draw the two independent samples ``R1, R2`` the algorithm needs.

    A convenience for callers that have the vertex universe in hand
    (tests, the diamond algorithm's per-level setup).
    """
    from ..sketches.hashing import KWiseHash

    h1 = KWiseHash(k=2, seed=seed, namespace="useful.r1")
    h2 = KWiseHash(k=2, seed=seed, namespace="useful.r2")
    universe = list(vertices)
    r1 = {v for v in universe if h1.bernoulli(v, p)}
    r2 = {v for v in universe if h2.bernoulli(v, p)}
    return r1, r2
