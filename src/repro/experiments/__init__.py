"""Experiment harness: workloads, trial runner, sweeps, reporting."""

from .calibration import GuessOutcome, estimate_with_guesses
from .export import export_csv, export_json, load_json
from .frontier import Frontier, FrontierPoint, dominates, measure_frontier
from .groundtruth import cache_info, cached_ground_truth, clear_cache
from .paper_table import paper_table
from .parallel import (
    ParallelTrialRunner,
    SeededFactory,
    TrialSpec,
    execute_trial,
    make_factory,
    parallel_map,
    seed_schedule,
)
from .reporting import format_records, format_table, print_experiment
from .runner import TrialStats, decision_rate, run_trials
from .suite import SUITE, Experiment, run_experiment
from .sweeps import (
    SweepPoint,
    SweepResult,
    geometric_range,
    guess_schedule,
    loglog_slope,
    run_sweep,
)
from .workloads import ALL_WORKLOADS, Workload, build_workload

__all__ = [
    "Workload",
    "build_workload",
    "ALL_WORKLOADS",
    "TrialStats",
    "run_trials",
    "ParallelTrialRunner",
    "SeededFactory",
    "TrialSpec",
    "execute_trial",
    "make_factory",
    "parallel_map",
    "seed_schedule",
    "cached_ground_truth",
    "cache_info",
    "clear_cache",
    "SUITE",
    "Experiment",
    "run_experiment",
    "decision_rate",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "loglog_slope",
    "geometric_range",
    "guess_schedule",
    "GuessOutcome",
    "estimate_with_guesses",
    "Frontier",
    "FrontierPoint",
    "measure_frontier",
    "dominates",
    "export_csv",
    "export_json",
    "load_json",
    "format_table",
    "format_records",
    "print_experiment",
    "paper_table",
]
