"""Experiment harness: workloads, trial runner, sweeps, reporting."""

from .calibration import GuessOutcome, estimate_with_guesses
from .export import export_csv, export_json, load_json
from .frontier import Frontier, FrontierPoint, dominates, measure_frontier
from .groundtruth import cache_info, cached_ground_truth, clear_cache
from .paper_table import paper_table
from .parallel import (
    ParallelTrialRunner,
    RetryPolicy,
    SeededFactory,
    TrialSpec,
    derive_retry_seed,
    execute_trial,
    make_factory,
    parallel_map,
    resolve_n_jobs,
    seed_schedule,
)
from .reporting import format_records, format_table, print_experiment
from .robustness import FAULT_RATES, FaultedStreamFactory, robustness_records
from .runner import TrialStats, decision_rate, run_trials
from .suite import SUITE, Experiment, experiment_checkpoint_key, run_experiment
from .sweeps import (
    SweepPoint,
    SweepResult,
    geometric_range,
    guess_schedule,
    loglog_slope,
    run_sweep,
)
from .workloads import ALL_WORKLOADS, Workload, build_workload

__all__ = [
    "Workload",
    "build_workload",
    "ALL_WORKLOADS",
    "TrialStats",
    "run_trials",
    "ParallelTrialRunner",
    "RetryPolicy",
    "SeededFactory",
    "TrialSpec",
    "derive_retry_seed",
    "execute_trial",
    "make_factory",
    "parallel_map",
    "resolve_n_jobs",
    "seed_schedule",
    "FAULT_RATES",
    "FaultedStreamFactory",
    "robustness_records",
    "experiment_checkpoint_key",
    "cached_ground_truth",
    "cache_info",
    "clear_cache",
    "SUITE",
    "Experiment",
    "run_experiment",
    "decision_rate",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "loglog_slope",
    "geometric_range",
    "guess_schedule",
    "GuessOutcome",
    "estimate_with_guesses",
    "Frontier",
    "FrontierPoint",
    "measure_frontier",
    "dominates",
    "export_csv",
    "export_json",
    "load_json",
    "format_table",
    "format_records",
    "print_experiment",
    "paper_table",
]
