"""Handling the unknown-T parameterization.

Every algorithm in the paper takes the target count ``T`` as a
parameter ("this convention is widely adopted in the literature",
Section 1.1).  In practice one runs O(log) instances on a geometric
guess schedule and keeps the estimate that is *self-consistent*: an
instance parameterized by guess ``g`` is trustworthy when the true
count is at least ``g`` (its sampling rates were dense enough), and
its own estimate tells us whether that plausibly holds.

:func:`estimate_with_guesses` implements the standard rule: walk the
guesses from largest to smallest and return the first estimate that is
at least its own guess; if none qualifies, return the smallest guess's
estimate (the densest, most conservative instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from ..streams.models import StreamSource

GuessAlgorithmFactory = Callable[[float, int], Any]  # (t_guess, seed) -> algorithm
StreamFactory = Callable[[int], StreamSource]


@dataclass
class GuessOutcome:
    """The per-guess estimates and the selected answer."""

    guesses: List[float]
    estimates: List[float]
    selected_guess: float
    estimate: float

    def table(self) -> List[Dict[str, float]]:
        return [
            {
                "guess": g,
                "estimate": e,
                "self_consistent": e >= g,
                "selected": g == self.selected_guess,
            }
            for g, e in zip(self.guesses, self.estimates)
        ]


def estimate_with_guesses(
    algorithm_factory: GuessAlgorithmFactory,
    stream_factory: StreamFactory,
    guesses: Sequence[float],
    seed: int = 0,
) -> GuessOutcome:
    """Run one instance per guess and select the self-consistent one.

    Each instance gets an independent stream object (same graph) and an
    independent algorithm seed; this mirrors running the instances in
    parallel on the same pass, which is how the paper's convention is
    deployed.
    """
    if not guesses:
        raise ValueError("need at least one guess")
    ordered = sorted(guesses)
    estimates: List[float] = []
    for idx, guess in enumerate(ordered):
        algorithm = algorithm_factory(guess, seed * 1000 + idx)
        stream = stream_factory(seed * 1000 + 500 + idx)
        estimates.append(algorithm.run(stream).estimate)

    selected_guess = ordered[0]
    selected_estimate = estimates[0]
    for guess, estimate in zip(reversed(ordered), reversed(estimates)):
        if estimate >= guess:
            selected_guess = guess
            selected_estimate = estimate
            break
    return GuessOutcome(
        guesses=list(ordered),
        estimates=estimates,
        selected_guess=selected_guess,
        estimate=selected_estimate,
    )
