"""Exporting experiment records to CSV / JSON.

The benchmarks print ASCII tables for humans; this module writes the
same record lists to files for plotting pipelines.  Kept dependency
free (csv + json from the standard library).  All writes go through
:func:`repro.resilience.atomic.atomic_write`, so an interrupted export
never leaves a torn artifact behind.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from ..resilience.atomic import atomic_write

PathLike = Union[str, Path]


def export_csv(records: Sequence[Dict[str, Any]], path: PathLike) -> int:
    """Write records as CSV with the union of keys as the header.

    Column order: keys of the first record first (in insertion order),
    then any extra keys from later records (sorted).  Returns the
    number of data rows written.
    """
    if not records:
        raise ValueError("cannot export an empty record list")
    leading = list(records[0].keys())
    extras = sorted({k for record in records for k in record} - set(leading))
    fieldnames = leading + extras
    with atomic_write(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for record in records:
            writer.writerow(record)
    return len(records)


def export_json(
    records: Sequence[Dict[str, Any]],
    path: PathLike,
    metadata: Dict[str, Any] = None,
) -> int:
    """Write records (plus optional run metadata) as a JSON document.

    Layout: ``{"metadata": {...}, "records": [...]}`` — stable for
    downstream plotting scripts.
    """
    if not records:
        raise ValueError("cannot export an empty record list")
    document = {"metadata": metadata or {}, "records": list(records)}
    with atomic_write(path) as handle:
        json.dump(document, handle, indent=2, sort_keys=False, default=_coerce)
        handle.write("\n")
    return len(records)


def load_json(path: PathLike) -> List[Dict[str, Any]]:
    """Read back the records of a document written by :func:`export_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return document["records"]


def _coerce(value: Any):
    """JSON fallback for numpy scalars and other number-likes."""
    for attribute in ("item",):  # numpy scalars
        if hasattr(value, attribute):
            return value.item()
    raise TypeError(f"cannot serialize {type(value).__name__}")
