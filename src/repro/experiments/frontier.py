"""Error-vs-space frontiers.

The paper's headline claims are comparative: at a given space budget,
who has the smaller error?  A frontier sweeps a budget knob (the
constants ``c``, a prefix fraction, a memory cap), measures (median
space, error) per setting across trials, and produces the curve a
systems paper would plot.  The E14 benchmark prints these curves for
the random-order triangle problem; the module is generic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from .runner import StreamFactory, run_trials


@dataclass
class FrontierPoint:
    """One (budget knob, measured space, measured error) sample."""

    knob: float
    median_space: float
    median_rel_error: float
    mean_rel_error: float
    success_rate: float


@dataclass
class Frontier:
    """A labeled error-vs-space curve."""

    label: str
    points: List[FrontierPoint]

    def rows(self) -> List[Dict[str, Any]]:
        return [
            {
                "algorithm": self.label,
                "knob": p.knob,
                "median_space": p.median_space,
                "median_rel_err": round(p.median_rel_error, 4),
                "mean_rel_err": round(p.mean_rel_error, 4),
                "success@eps": round(p.success_rate, 3),
            }
            for p in self.points
        ]

    def error_at_space(self, budget: float) -> float:
        """Smallest median error among points within the budget.

        Returns ``inf`` if no point fits — i.e. the algorithm cannot
        run this small.
        """
        feasible = [
            p.median_rel_error for p in self.points if p.median_space <= budget
        ]
        return min(feasible) if feasible else float("inf")


def measure_frontier(
    label: str,
    knobs: Sequence[float],
    algorithm_for_knob: Callable[[float, int], Any],
    stream_factory: StreamFactory,
    truth: float,
    epsilon: float,
    trials: int = 5,
    base_seed: int = 0,
) -> Frontier:
    """Sweep a budget knob and measure the (space, error) curve.

    Args:
        algorithm_for_knob: ``(knob, seed) -> algorithm``.
        epsilon: the accuracy band used for the success-rate column.
    """
    points: List[FrontierPoint] = []
    for index, knob in enumerate(knobs):
        stats = run_trials(
            algorithm_factory=lambda seed, _k=knob: algorithm_for_knob(_k, seed),
            stream_factory=stream_factory,
            truth=truth,
            trials=trials,
            base_seed=base_seed * 100 + index,
        )
        points.append(
            FrontierPoint(
                knob=knob,
                median_space=stats.median_space,
                median_rel_error=stats.median_relative_error,
                mean_rel_error=stats.mean_relative_error,
                success_rate=stats.success_rate(epsilon),
            )
        )
    return Frontier(label=label, points=points)


def dominates(winner: Frontier, loser: Frontier, budgets: Sequence[float]) -> bool:
    """True if ``winner`` has error <= ``loser`` at every budget where
    both are feasible (and strictly beats it somewhere)."""
    some_strict = False
    for budget in budgets:
        w = winner.error_at_space(budget)
        l = loser.error_at_space(budget)
        if w == float("inf") or l == float("inf"):
            continue
        if w > l + 1e-12:
            return False
        if w < l - 1e-12:
            some_strict = True
    return some_strict
