"""Memoized ground-truth counts for workload graphs.

Sweeps rebuild the same (generator, params, seed) workload dozens of
times — every sweep point, every benchmark file, every light
experiment — and each rebuild used to recompute exact triangle /
four-cycle counts from scratch, which dominates wall-clock for the
pure-Python counters.  This module provides a small process-wide LRU
keyed by the workload's full provenance, backed by the fastest exact
backend (:func:`repro.graphs.fast_counts_auto`).

The cache is correct because a workload's graph is a deterministic
function of ``(generator name, params, seed)`` — the key includes every
input that influences the graph.  Mutating a workload's graph after
construction would invalidate the entry; workloads are treated as
immutable throughout the repo.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple

from ..graphs import Graph
from ..graphs.fast import fast_counts_auto

MAX_ENTRIES = 256

_CACHE: "OrderedDict[Hashable, Dict[str, int]]" = OrderedDict()
_HITS = 0
_MISSES = 0


def freeze_params(value: Any) -> Hashable:
    """Recursively convert params into a hashable cache-key component."""
    if isinstance(value, dict):
        return tuple(
            (key, freeze_params(value[key])) for key in sorted(value, key=repr)
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_params(item) for item in value)
    if isinstance(value, set):
        return tuple(sorted((freeze_params(item) for item in value), key=repr))
    return value


def cached_ground_truth(
    generator: str, params: Dict[str, Any], graph: Graph
) -> Dict[str, int]:
    """Exact ``{"triangles", "four_cycles", "wedge_f2"}`` for ``graph``.

    ``generator`` and ``params`` must fully determine ``graph`` (the
    workload registry guarantees this: all randomness flows through the
    ``seed`` param).  On a hit the counts come straight from the LRU; on
    a miss they are computed once with the fastest exact backend.
    """
    global _HITS, _MISSES
    key: Tuple[str, Hashable] = (generator, freeze_params(params))
    cached = _CACHE.get(key)
    if cached is not None:
        _HITS += 1
        _CACHE.move_to_end(key)
        return dict(cached)
    _MISSES += 1
    counts = fast_counts_auto(graph)
    _CACHE[key] = counts
    while len(_CACHE) > MAX_ENTRIES:
        _CACHE.popitem(last=False)
    return dict(counts)


def cache_info() -> Dict[str, int]:
    """Diagnostics: hits, misses, and live entries."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def clear_cache() -> None:
    """Drop every cached count (and reset the hit/miss counters)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0
