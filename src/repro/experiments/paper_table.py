"""The Section 1.1 contributions table, with measured columns.

The paper's headline is a table of (model, passes, space, guarantee)
cells.  This module regenerates it with two extra columns measured on
each algorithm's standard light workload: median relative error and
median space in words.  ``python -m repro paper-table`` prints it.

Each theorem-row is one checkpoint unit, so ``--checkpoint/--resume``
restarts an interrupted table at the first missing row and reproduces
the rest byte-identically (every row is a pure function of the seed).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryOnePass,
    FourCycleArbitraryThreePass,
    FourCycleDistinguisher,
    FourCycleMoment,
    TriangleRandomOrder,
)
from ..resilience.checkpoint import NULL_CHECKPOINT, CheckpointContext, config_hash
from ..streams import AdjacencyListStream, RandomOrderStream
from .runner import decision_rate, run_trials
from .workloads import build_workload

Record = Dict[str, Any]


def paper_table_checkpoint_key(seed: int, trials: int) -> str:
    """The config hash guarding a paper-table checkpoint file."""
    return config_hash({"kind": "paper-table", "seed": seed, "trials": trials})


def paper_table(
    seed: int = 0,
    trials: int = 3,
    checkpoint: Optional[CheckpointContext] = None,
) -> List[Record]:
    """Build the measured contributions table (takes ~a minute)."""
    if checkpoint is None:
        checkpoint = NULL_CHECKPOINT
    rows: List[Record] = []

    # -- Theorem 2.1: triangles, random order -------------------------
    def _thm21() -> Record:
        triangle_workload = build_workload(
            "heavy-and-light-triangles",
            n=900,
            heavy_triangles=200,
            light_triangles_count=80,
        )
        stats = run_trials(
            lambda s: TriangleRandomOrder(
                t_guess=triangle_workload.triangles, epsilon=0.3, seed=s
            ),
            lambda s: RandomOrderStream(triangle_workload.graph, seed=s),
            truth=triangle_workload.triangles,
            trials=trials,
            base_seed=seed,
        )
        return {
            "result": "Thm 2.1",
            "problem": "triangles",
            "model": "random",
            "passes": stats.passes,
            "space": "Õ(ε⁻²m/√T)",
            "measured_rel_err": round(stats.median_relative_error, 3),
            "measured_space": int(stats.median_space),
        }

    rows.append(checkpoint.unit("paper-table:Thm2.1", _thm21))

    # -- Theorem 4.2: C4, adjacency, two passes ------------------------
    def _thm42() -> Record:
        diamond_workload = build_workload(
            "diamond-mixture",
            n=900,
            large=(20,) * 4,
            medium=(8,) * 8,
            small=(3,) * 10,
            noise_edges=200,
        )
        stats = run_trials(
            lambda s: FourCycleAdjacencyDiamond(
                t_guess=diamond_workload.four_cycles, epsilon=0.3, seed=s
            ),
            lambda s: AdjacencyListStream(diamond_workload.graph, seed=s),
            truth=diamond_workload.four_cycles,
            trials=trials,
            base_seed=seed,
        )
        return {
            "result": "Thm 4.2",
            "problem": "four-cycles",
            "model": "adjacency",
            "passes": stats.passes,
            "space": "Õ(ε⁻⁵m/√T)",
            "measured_rel_err": round(stats.median_relative_error, 3),
            "measured_space": int(stats.median_space),
        }

    rows.append(checkpoint.unit("paper-table:Thm4.2", _thm42))

    # -- Theorem 4.3a / 5.7: C4 one-pass on the dense regime -----------
    def _dense(result: str, model: str, space: str) -> Record:
        dense_workload = build_workload("dense-gnp", n=45, p=0.5)
        if result == "Thm 4.3a":
            factory = lambda s: FourCycleMoment(  # noqa: E731
                t_guess=dense_workload.four_cycles,
                epsilon=0.2,
                groups=7,
                group_size=40,
                seed=s,
            )
        else:
            factory = lambda s: FourCycleArbitraryOnePass(  # noqa: E731
                t_guess=dense_workload.four_cycles,
                epsilon=0.2,
                groups=7,
                group_size=40,
                seed=s,
            )
        stream_cls = AdjacencyListStream if model == "adjacency" else RandomOrderStream
        stats = run_trials(
            factory,
            lambda s, _cls=stream_cls: _cls(dense_workload.graph, seed=s),
            truth=dense_workload.four_cycles,
            trials=trials,
            base_seed=seed,
        )
        return {
            "result": result,
            "problem": "four-cycles (T=Ω(n²))",
            "model": model,
            "passes": stats.passes,
            "space": space,
            "measured_rel_err": round(stats.median_relative_error, 3),
            "measured_space": int(stats.median_space),
        }

    for result, model, space in (
        ("Thm 4.3a", "adjacency", "Õ(ε⁻⁴n⁴/T²)"),
        ("Thm 5.7", "arbitrary", "Õ(ε⁻²n)"),
    ):

        def _measure(_result=result, _model=model, _space=space) -> Record:
            return _dense(_result, _model, _space)

        rows.append(checkpoint.unit(f"paper-table:{result}", _measure))

    # -- Theorem 5.3: C4, arbitrary order, three passes ----------------
    def _thm53() -> Record:
        medium_workload = build_workload(
            "medium-diamonds", n=2000, diamond_size=10, count=40, noise_edges=400
        )
        stats = run_trials(
            lambda s: FourCycleArbitraryThreePass(
                t_guess=medium_workload.four_cycles,
                epsilon=0.3,
                eta=2.0,
                c=0.6,
                use_log_factor=False,
                seed=s,
            ),
            lambda s: RandomOrderStream(medium_workload.graph, seed=s),
            truth=medium_workload.four_cycles,
            trials=trials,
            base_seed=seed,
        )
        return {
            "result": "Thm 5.3",
            "problem": "four-cycles",
            "model": "arbitrary",
            "passes": stats.passes,
            "space": "Õ(m/T^{1/4})",
            "measured_rel_err": round(stats.median_relative_error, 3),
            "measured_space": int(stats.median_space),
        }

    rows.append(checkpoint.unit("paper-table:Thm5.3", _thm53))

    # -- Theorem 5.6: distinguisher -------------------------------------
    def _thm56() -> Record:
        sparse_workload = build_workload(
            "sparse-four-cycles", n=1000, num_cycles=150, noise_edges=200
        )
        rate = decision_rate(
            lambda s: FourCycleDistinguisher(
                t_guess=sparse_workload.four_cycles, c=3.0, seed=s
            ).decide(RandomOrderStream(sparse_workload.graph, seed=s)),
            trials=max(trials, 5),
            base_seed=seed,
        )
        return {
            "result": "Thm 5.6",
            "problem": "0 vs T four-cycles",
            "model": "arbitrary",
            "passes": 2,
            "space": "Õ(m^{3/2}/T^{3/4})",
            "measured_rel_err": round(1.0 - rate, 3),  # miss rate
            "measured_space": "-",
        }

    rows.append(checkpoint.unit("paper-table:Thm5.6", _thm56))
    return rows
