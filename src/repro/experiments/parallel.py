"""Parallel execution engine for Monte Carlo trials.

Every experiment in this repo is an embarrassingly parallel loop over
independent (algorithm-seed, stream-seed) pairs, so the engine is a
thin, deterministic fan-out:

* :func:`seed_schedule` is the *single source of truth* for the serial
  seed schedule (``base_seed * 1000 + i`` / ``+ 500 + i``).  Parallel
  execution reuses it verbatim, so ``n_jobs=1`` and ``n_jobs=8``
  produce bit-identical results — each trial's randomness is a pure
  function of its seeds, never of scheduling order.

* :class:`TrialSpec` is the picklable unit of work shipped to worker
  processes; :func:`execute_trial` is the module-level worker entry
  point (bound methods and lambdas cannot cross the pickle boundary).

* :func:`parallel_map` / :class:`ParallelTrialRunner` dispatch specs
  over a process pool, falling back to in-process execution — with the
  same results — when the work is not picklable (e.g. lambda
  factories) or when ``n_jobs == 1``.

* :class:`SeededFactory` adapts ``Class(**kwargs, seed=seed)``
  construction into a picklable factory so call sites can opt into real
  multi-process execution without writing one-off top-level functions.

* :class:`RetryPolicy` arms the hardened execution path: per-trial
  wall-clock timeouts, bounded retries with deterministically derived
  seeds (:func:`derive_retry_seed`), recovery from worker crashes
  (``BrokenProcessPool``) by re-executing only the failed specs
  in-process, and a space-budget guard that *flags* over-budget trials
  instead of aborting the sweep.  With the default (inactive) policy
  the engine takes exactly the historical code path, so fault-free
  serial and parallel runs stay bit-identical.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..core.result import EstimateResult
from ..resilience.errors import (
    SpaceBudgetExceeded,
    TrialRetryError,
    TrialTimeoutError,
)
from ..streams.meter import SpaceMeter
from .. import obs as _obs

T = TypeVar("T")
R = TypeVar("R")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None``, ``0`` and ``-1`` all mean "use every core"; positive
    integers are taken literally; anything else — including ``True``/
    ``False``, floats and strings — is rejected explicitly rather than
    silently coerced.
    """
    if n_jobs is None:
        return os.cpu_count() or 1
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, int):
        raise TypeError(
            f"n_jobs must be a positive int, or -1/0/None for all cores; "
            f"got {n_jobs!r} of type {type(n_jobs).__name__}"
        )
    if n_jobs in (0, -1):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ValueError(
            f"n_jobs must be a positive int, or -1/0/None for all cores; "
            f"got {n_jobs}"
        )
    return n_jobs


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: int = 1,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally over a process pool.

    Results are returned in input order regardless of completion order.
    When the function or any item cannot be pickled the call degrades to
    the serial loop (emitting a ``RuntimeWarning``), so callers always
    get identical results — parallelism is purely an execution detail.
    """
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if not (_is_picklable(fn) and all(_is_picklable(item) for item in items)):
        warnings.warn(
            "parallel_map fell back to serial execution: the task is not "
            "picklable (lambdas/closures cannot cross process boundaries); "
            "use module-level callables or SeededFactory for real parallelism",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as executor:
        return list(executor.map(fn, items, chunksize=chunksize))


@dataclass(frozen=True)
class SeededFactory:
    """A picklable ``seed -> target(**kwargs, seed=seed)`` factory.

    Works for any top-level class or function: algorithm factories
    (``SeededFactory(TriangleRandomOrder, t_guess=90, epsilon=0.3)``)
    and stream factories (``SeededFactory(RandomOrderStream, graph=g)``)
    alike.  ``seed_param=None`` drops the seed for deterministic targets
    (e.g. ``CormodeJowhariTriangles`` takes no seed).
    """

    target: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed_param: Optional[str] = "seed"

    def __call__(self, seed: int) -> Any:
        if self.seed_param is None:
            return self.target(**self.kwargs)
        return self.target(**{**self.kwargs, self.seed_param: seed})


def make_factory(
    target: Callable[..., Any], seed_param: Optional[str] = "seed", **kwargs: Any
) -> SeededFactory:
    """Convenience constructor: ``make_factory(Cls, a=1)`` ==
    ``SeededFactory(Cls, {"a": 1})``."""
    return SeededFactory(target=target, kwargs=kwargs, seed_param=seed_param)


def seed_schedule(base_seed: int, trials: int) -> List[Tuple[int, int]]:
    """The serial (algorithm_seed, stream_seed) schedule for each trial.

    Trial ``i`` uses algorithm seed ``base_seed * 1000 + i`` and stream
    seed ``base_seed * 1000 + 500 + i`` so neither is shared across
    trials or between the two sources of randomness.  Both the serial
    and parallel runners consume exactly this schedule.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    return [
        (base_seed * 1000 + i, base_seed * 1000 + 500 + i) for i in range(trials)
    ]


def derive_retry_seed(seed: int, attempt: int) -> int:
    """The seed a retry attempt uses, derived deterministically.

    Attempt 0 is the scheduled seed itself; attempt ``k > 0`` hashes
    ``(seed, k)`` so retries explore fresh randomness without colliding
    with any seed :func:`seed_schedule` could ever hand out, while the
    whole retry chain stays reproducible from the base seed alone.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be non-negative, got {attempt}")
    if attempt == 0:
        return seed
    digest = hashlib.sha256(f"retry:{seed}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:6], "big")


@dataclass(frozen=True)
class RetryPolicy:
    """How the hardened runner treats misbehaving trials.

    Attributes:
        max_retries: how many times a failing (raising or timed-out)
            trial is re-attempted, each with :func:`derive_retry_seed`
            seeds.  After the last attempt the original error is
            re-raised (wrapped in :class:`TrialRetryError` /
            :class:`TrialTimeoutError`).
        timeout_seconds: per-trial wall-clock budget.  In pool mode a
            trial that exceeds it is abandoned (its worker result is
            discarded) and retried; in-process the trial cannot be
            preempted, so the overrun is flagged post-hoc in
            ``details["anomalies"]``.
        space_budget_items: peak-space guard in the paper's word
            measure.  An over-budget trial is *flagged*
            (``details["space_budget_exceeded"]``), never aborted; an
            algorithm that raises :class:`SpaceBudgetExceeded` mid-run
            degrades to a flagged partial result.

    The default policy is inactive: the engine takes the historical
    code path, preserving bit-identical serial==parallel results.
    """

    max_retries: int = 0
    timeout_seconds: Optional[float] = None
    space_budget_items: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.space_budget_items is not None and self.space_budget_items < 1:
            raise ValueError(
                f"space_budget_items must be positive, got {self.space_budget_items}"
            )

    @property
    def active(self) -> bool:
        return (
            self.max_retries > 0
            or self.timeout_seconds is not None
            or self.space_budget_items is not None
        )


@dataclass(frozen=True)
class TrialSpec:
    """One unit of trial work: everything a worker needs, picklable
    whenever the factories are.

    ``attempt`` is 0 for the scheduled run; retries carry 1, 2, ... and
    the worker derives its effective seeds via :func:`derive_retry_seed`.
    ``timeout_seconds`` / ``space_budget_items`` mirror the runner's
    :class:`RetryPolicy` so the guard travels with the spec across the
    process boundary.
    """

    index: int
    algorithm_seed: int
    stream_seed: int
    algorithm_factory: Callable[[int], Any]
    stream_factory: Callable[[int], Any]
    capture_telemetry: bool = False
    attempt: int = 0
    timeout_seconds: Optional[float] = None
    space_budget_items: Optional[int] = None


def _mark_anomaly(result: EstimateResult, note: str) -> None:
    result.details.setdefault("anomalies", []).append(note)


def _guarded_run(algorithm: Any, stream: Any, spec: TrialSpec) -> EstimateResult:
    """Run the algorithm; degrade a ``SpaceBudgetExceeded`` raise into a
    flagged partial result instead of killing the whole sweep."""
    try:
        result = algorithm.run(stream)
    except SpaceBudgetExceeded as exc:
        meter = SpaceMeter()
        items = getattr(exc, "space_items", None)
        if items:
            meter.set("over_budget", int(items))
        result = EstimateResult(
            estimate=float(getattr(exc, "partial_estimate", 0.0) or 0.0),
            passes=int(getattr(exc, "passes", 0) or 0),
            space=meter,
            algorithm=getattr(algorithm, "name", type(algorithm).__name__),
            details={"space_budget_exceeded": True, "partial": True},
        )
        _mark_anomaly(result, f"space budget aborted the trial: {exc}")
    budget = spec.space_budget_items
    if budget is not None and result.space_items > budget:
        if not result.details.get("space_budget_exceeded"):
            result.details["space_budget_exceeded"] = True
            _mark_anomaly(
                result,
                f"space budget exceeded ({result.space_items} > {budget} items)",
            )
    return result


def _finalize(result: EstimateResult, spec: TrialSpec, seeds: Tuple[int, int]) -> None:
    if spec.attempt:
        result.details["retry"] = {
            "attempt": spec.attempt,
            "algorithm_seed": seeds[0],
            "stream_seed": seeds[1],
        }
        _mark_anomaly(result, f"retried (attempt {spec.attempt})")
    if (
        spec.timeout_seconds is not None
        and result.wall_seconds > spec.timeout_seconds
    ):
        _mark_anomaly(
            result,
            f"wall clock {result.wall_seconds:.3f}s exceeded the "
            f"{spec.timeout_seconds:.3f}s timeout (completed anyway)",
        )


def execute_trial(spec: TrialSpec) -> EstimateResult:
    """Run one trial (module-level so process pools can import it).

    The trial's wall-clock duration always lands in
    ``result.wall_seconds``.  When ``spec.capture_telemetry`` is set,
    the trial additionally runs inside a fresh telemetry session — in
    the worker process or in-process, identically — and the picklable
    capture is attached as ``result.telemetry`` for the parent to merge
    in trial-index order.

    A non-zero ``spec.attempt`` (a retry) derives its effective seeds
    with :func:`derive_retry_seed` and records them in
    ``result.details["retry"]``.
    """
    algorithm_seed = derive_retry_seed(spec.algorithm_seed, spec.attempt)
    stream_seed = derive_retry_seed(spec.stream_seed, spec.attempt)
    algorithm = spec.algorithm_factory(algorithm_seed)
    stream = spec.stream_factory(stream_seed)
    if not spec.capture_telemetry:
        start = time.perf_counter()
        result = _guarded_run(algorithm, stream, spec)
        result.wall_seconds = time.perf_counter() - start
        _finalize(result, spec, (algorithm_seed, stream_seed))
        return result
    with _obs.capture(spec.index) as telemetry:
        start = time.perf_counter()
        with telemetry.tracer.span(
            f"trial[{spec.index}]",
            kind="trial",
            algorithm_seed=algorithm_seed,
            stream_seed=stream_seed,
        ) as span:
            result = _guarded_run(algorithm, stream, spec)
            span.set("estimate", result.estimate)
            span.set("passes", result.passes)
            span.set("space_peak", result.space_items)
            if spec.attempt:
                span.set("attempt", spec.attempt)
            timeline = result.space.timeline(max_points=32)
            if timeline:
                span.set("space_timeline", timeline)
        result.wall_seconds = time.perf_counter() - start
        telemetry.metrics.observe("trial.space_items", result.space_items)
    result.telemetry = telemetry.export(spec.index)
    _finalize(result, spec, (algorithm_seed, stream_seed))
    return result


class ParallelTrialRunner:
    """Fans independent trials across a process pool.

    The runner guarantees that results are ordered by trial index and
    that each trial sees exactly the seeds :func:`seed_schedule`
    assigns, so ``ParallelTrialRunner(n_jobs=1)`` and ``n_jobs=8`` are
    bit-identical.  Non-picklable factories silently degrade to
    in-process execution (with a warning) — still correct, just serial.

    Passing an active :class:`RetryPolicy` switches to the hardened
    path: trials are submitted individually (not chunk-mapped) so each
    can be timed out, retried with derived seeds, or — when a worker
    process dies (``BrokenProcessPool``) — re-executed in-process.
    Recovery events are appended to :attr:`last_events` and counted
    into the active telemetry as ``runner.retries`` /
    ``runner.timeouts`` / ``runner.worker_crashes`` /
    ``runner.space_budget_flags``.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        chunksize: int = 1,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        if chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        self.chunksize = chunksize
        self.retry = retry if retry is not None else RetryPolicy()
        self.last_events: List[Dict[str, Any]] = []

    def run(
        self,
        algorithm_factory: Callable[[int], Any],
        stream_factory: Callable[[int], Any],
        trials: int,
        base_seed: int = 0,
        capture_telemetry: Optional[bool] = None,
    ) -> List[EstimateResult]:
        """Execute the trials; ``capture_telemetry=None`` follows the
        caller's active telemetry session (off → no capture)."""
        if capture_telemetry is None:
            capture_telemetry = _obs.current().enabled
        policy = self.retry
        specs = [
            TrialSpec(
                index=i,
                algorithm_seed=algorithm_seed,
                stream_seed=stream_seed,
                algorithm_factory=algorithm_factory,
                stream_factory=stream_factory,
                capture_telemetry=capture_telemetry,
                timeout_seconds=policy.timeout_seconds,
                space_budget_items=policy.space_budget_items,
            )
            for i, (algorithm_seed, stream_seed) in enumerate(
                seed_schedule(base_seed, trials)
            )
        ]
        if not policy.active:
            # Historical fast path: chunk-mapped, zero bookkeeping —
            # and trivially bit-identical to previous releases.
            return parallel_map(
                execute_trial, specs, n_jobs=self.n_jobs, chunksize=self.chunksize
            )
        self.last_events = []
        results = self._run_hardened(specs)
        flagged = sum(
            1 for r in results if r.details.get("space_budget_exceeded")
        )
        if flagged:
            _obs.current().metrics.inc("runner.space_budget_flags", flagged)
        return results

    # -- hardened path ---------------------------------------------------
    def _event(self, kind: str, spec: TrialSpec, detail: str) -> None:
        self.last_events.append(
            {
                "kind": kind,
                "trial": spec.index,
                "attempt": spec.attempt,
                "detail": detail,
            }
        )

    def _attempts_left(self, spec: TrialSpec) -> bool:
        return spec.attempt < self.retry.max_retries

    def _retry_spec(self, spec: TrialSpec, reason: str) -> TrialSpec:
        bumped = replace(spec, attempt=spec.attempt + 1)
        self._event("retry", bumped, reason)
        _obs.current().metrics.inc("runner.retries")
        return bumped

    def _run_inprocess(self, spec: TrialSpec) -> EstimateResult:
        """Execute one spec here, applying the bounded retry loop."""
        while True:
            try:
                return execute_trial(spec)
            except Exception as exc:  # noqa: BLE001 — retried, then chained
                if not self._attempts_left(spec):
                    raise TrialRetryError(
                        f"trial {spec.index} failed on attempt {spec.attempt} "
                        f"(algorithm seed "
                        f"{derive_retry_seed(spec.algorithm_seed, spec.attempt)}, "
                        f"stream seed "
                        f"{derive_retry_seed(spec.stream_seed, spec.attempt)}) "
                        f"with no retries left: {exc!r}"
                    ) from exc
                spec = self._retry_spec(spec, repr(exc))

    def _run_hardened(self, specs: List[TrialSpec]) -> List[EstimateResult]:
        jobs = min(self.n_jobs, len(specs))
        pool_eligible = jobs > 1 and len(specs) > 1
        if pool_eligible and not all(_is_picklable(spec) for spec in specs):
            warnings.warn(
                "ParallelTrialRunner fell back to in-process execution: the "
                "trial specs are not picklable (lambdas/closures cannot cross "
                "process boundaries); use module-level callables or "
                "SeededFactory for real parallelism",
                RuntimeWarning,
                stacklevel=3,
            )
            pool_eligible = False
        results: Dict[int, EstimateResult] = {}
        if not pool_eligible:
            for spec in specs:
                results[spec.index] = self._run_inprocess(spec)
            return [results[i] for i in sorted(results)]
        round_specs = specs
        while round_specs:
            round_specs = self._pool_round(round_specs, jobs, results)
        return [results[i] for i in sorted(results)]

    def _pool_round(
        self,
        round_specs: List[TrialSpec],
        jobs: int,
        results: Dict[int, EstimateResult],
    ) -> List[TrialSpec]:
        """Submit one round of specs to a fresh pool.

        Returns the specs to run next round (retries).  Worker crashes
        poison the whole pool (``BrokenProcessPool``), so every spec
        not yet harvested is re-executed in-process — only the failed
        work is redone, finished futures keep their results.
        """
        retry_next: List[TrialSpec] = []
        recover_inprocess: List[TrialSpec] = []
        timeout = self.retry.timeout_seconds
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(round_specs)))
        broken = False
        abandoned = False
        try:
            futures = [
                (spec, executor.submit(execute_trial, spec)) for spec in round_specs
            ]
            for spec, future in futures:
                if broken:
                    # Pool already poisoned: keep finished results,
                    # queue everything else for in-process recovery.
                    if future.done() and not future.cancelled():
                        try:
                            results[spec.index] = future.result()
                            continue
                        except Exception:
                            pass
                    recover_inprocess.append(spec)
                    continue
                try:
                    results[spec.index] = future.result(timeout=timeout)
                except FuturesTimeoutError:
                    abandoned = True
                    self._event(
                        "timeout", spec, f"exceeded {timeout}s wall clock"
                    )
                    _obs.current().metrics.inc("runner.timeouts")
                    if self._attempts_left(spec):
                        retry_next.append(self._retry_spec(spec, "timeout"))
                    else:
                        raise TrialTimeoutError(
                            f"trial {spec.index} exceeded its {timeout}s "
                            f"timeout on attempt {spec.attempt} with no "
                            "retries left"
                        ) from None
                except BrokenProcessPool:
                    broken = True
                    self._event(
                        "worker_crash",
                        spec,
                        "process pool broke; recovering in-process",
                    )
                    _obs.current().metrics.inc("runner.worker_crashes")
                    recover_inprocess.append(spec)
                except Exception as exc:  # noqa: BLE001 — bounded retry
                    if self._attempts_left(spec):
                        retry_next.append(self._retry_spec(spec, repr(exc)))
                    else:
                        raise TrialRetryError(
                            f"trial {spec.index} failed on attempt "
                            f"{spec.attempt} with no retries left: {exc!r}"
                        ) from exc
        finally:
            # wait=False: a hung worker (the timeout case) must not
            # block the sweep; its eventual result is discarded.
            executor.shutdown(wait=not (broken or abandoned), cancel_futures=True)
        for spec in recover_inprocess:
            result = self._run_inprocess(spec)
            _mark_anomaly(result, "re-executed in-process after a worker crash")
            results[spec.index] = result
        return retry_next
