"""Parallel execution engine for Monte Carlo trials.

Every experiment in this repo is an embarrassingly parallel loop over
independent (algorithm-seed, stream-seed) pairs, so the engine is a
thin, deterministic fan-out:

* :func:`seed_schedule` is the *single source of truth* for the serial
  seed schedule (``base_seed * 1000 + i`` / ``+ 500 + i``).  Parallel
  execution reuses it verbatim, so ``n_jobs=1`` and ``n_jobs=8``
  produce bit-identical results — each trial's randomness is a pure
  function of its seeds, never of scheduling order.

* :class:`TrialSpec` is the picklable unit of work shipped to worker
  processes; :func:`execute_trial` is the module-level worker entry
  point (bound methods and lambdas cannot cross the pickle boundary).

* :func:`parallel_map` / :class:`ParallelTrialRunner` dispatch specs
  over a process pool, falling back to in-process execution — with the
  same results — when the work is not picklable (e.g. lambda
  factories) or when ``n_jobs == 1``.

* :class:`SeededFactory` adapts ``Class(**kwargs, seed=seed)``
  construction into a picklable factory so call sites can opt into real
  multi-process execution without writing one-off top-level functions.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..core.result import EstimateResult
from .. import obs as _obs

T = TypeVar("T")
R = TypeVar("R")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None``, ``0`` and ``-1`` all mean "use every core"; positive
    values are taken literally; anything else is rejected.
    """
    if n_jobs in (None, 0, -1):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ValueError(f"n_jobs must be positive, -1/0/None, got {n_jobs}")
    return int(n_jobs)


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: int = 1,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally over a process pool.

    Results are returned in input order regardless of completion order.
    When the function or any item cannot be pickled the call degrades to
    the serial loop (emitting a ``RuntimeWarning``), so callers always
    get identical results — parallelism is purely an execution detail.
    """
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if not (_is_picklable(fn) and all(_is_picklable(item) for item in items)):
        warnings.warn(
            "parallel_map fell back to serial execution: the task is not "
            "picklable (lambdas/closures cannot cross process boundaries); "
            "use module-level callables or SeededFactory for real parallelism",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as executor:
        return list(executor.map(fn, items, chunksize=chunksize))


@dataclass(frozen=True)
class SeededFactory:
    """A picklable ``seed -> target(**kwargs, seed=seed)`` factory.

    Works for any top-level class or function: algorithm factories
    (``SeededFactory(TriangleRandomOrder, t_guess=90, epsilon=0.3)``)
    and stream factories (``SeededFactory(RandomOrderStream, graph=g)``)
    alike.  ``seed_param=None`` drops the seed for deterministic targets
    (e.g. ``CormodeJowhariTriangles`` takes no seed).
    """

    target: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed_param: Optional[str] = "seed"

    def __call__(self, seed: int) -> Any:
        if self.seed_param is None:
            return self.target(**self.kwargs)
        return self.target(**{**self.kwargs, self.seed_param: seed})


def make_factory(
    target: Callable[..., Any], seed_param: Optional[str] = "seed", **kwargs: Any
) -> SeededFactory:
    """Convenience constructor: ``make_factory(Cls, a=1)`` ==
    ``SeededFactory(Cls, {"a": 1})``."""
    return SeededFactory(target=target, kwargs=kwargs, seed_param=seed_param)


def seed_schedule(base_seed: int, trials: int) -> List[Tuple[int, int]]:
    """The serial (algorithm_seed, stream_seed) schedule for each trial.

    Trial ``i`` uses algorithm seed ``base_seed * 1000 + i`` and stream
    seed ``base_seed * 1000 + 500 + i`` so neither is shared across
    trials or between the two sources of randomness.  Both the serial
    and parallel runners consume exactly this schedule.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    return [
        (base_seed * 1000 + i, base_seed * 1000 + 500 + i) for i in range(trials)
    ]


@dataclass(frozen=True)
class TrialSpec:
    """One unit of trial work: everything a worker needs, picklable
    whenever the factories are."""

    index: int
    algorithm_seed: int
    stream_seed: int
    algorithm_factory: Callable[[int], Any]
    stream_factory: Callable[[int], Any]
    capture_telemetry: bool = False


def execute_trial(spec: TrialSpec) -> EstimateResult:
    """Run one trial (module-level so process pools can import it).

    The trial's wall-clock duration always lands in
    ``result.wall_seconds``.  When ``spec.capture_telemetry`` is set,
    the trial additionally runs inside a fresh telemetry session — in
    the worker process or in-process, identically — and the picklable
    capture is attached as ``result.telemetry`` for the parent to merge
    in trial-index order.
    """
    algorithm = spec.algorithm_factory(spec.algorithm_seed)
    stream = spec.stream_factory(spec.stream_seed)
    if not spec.capture_telemetry:
        start = time.perf_counter()
        result = algorithm.run(stream)
        result.wall_seconds = time.perf_counter() - start
        return result
    with _obs.capture(spec.index) as telemetry:
        start = time.perf_counter()
        with telemetry.tracer.span(
            f"trial[{spec.index}]",
            kind="trial",
            algorithm_seed=spec.algorithm_seed,
            stream_seed=spec.stream_seed,
        ) as span:
            result = algorithm.run(stream)
            span.set("estimate", result.estimate)
            span.set("passes", result.passes)
            span.set("space_peak", result.space_items)
            timeline = result.space.timeline(max_points=32)
            if timeline:
                span.set("space_timeline", timeline)
        result.wall_seconds = time.perf_counter() - start
        telemetry.metrics.observe("trial.space_items", result.space_items)
    result.telemetry = telemetry.export(spec.index)
    return result


class ParallelTrialRunner:
    """Fans independent trials across a process pool.

    The runner guarantees that results are ordered by trial index and
    that each trial sees exactly the seeds :func:`seed_schedule`
    assigns, so ``ParallelTrialRunner(n_jobs=1)`` and ``n_jobs=8`` are
    bit-identical.  Non-picklable factories silently degrade to
    in-process execution (with a warning) — still correct, just serial.
    """

    def __init__(self, n_jobs: int = 1, chunksize: int = 1) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        if chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        self.chunksize = chunksize

    def run(
        self,
        algorithm_factory: Callable[[int], Any],
        stream_factory: Callable[[int], Any],
        trials: int,
        base_seed: int = 0,
        capture_telemetry: Optional[bool] = None,
    ) -> List[EstimateResult]:
        """Execute the trials; ``capture_telemetry=None`` follows the
        caller's active telemetry session (off → no capture)."""
        if capture_telemetry is None:
            capture_telemetry = _obs.current().enabled
        specs = [
            TrialSpec(
                index=i,
                algorithm_seed=algorithm_seed,
                stream_seed=stream_seed,
                algorithm_factory=algorithm_factory,
                stream_factory=stream_factory,
                capture_telemetry=capture_telemetry,
            )
            for i, (algorithm_seed, stream_seed) in enumerate(
                seed_schedule(base_seed, trials)
            )
        ]
        return parallel_map(
            execute_trial, specs, n_jobs=self.n_jobs, chunksize=self.chunksize
        )
