"""Plain-text experiment reporting.

The benchmarks print the rows EXPERIMENTS.md records; this module
keeps the formatting in one place so every table looks the same.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """A fixed-width ASCII table (no external dependencies)."""
    rendered_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_records(records: Sequence[Dict[str, Any]]) -> str:
    """Tabulate a list of uniform dicts (keys of the first record)."""
    if not records:
        return "(no rows)"
    headers = list(records[0].keys())
    rows = [[record.get(h, "") for h in headers] for record in records]
    return format_table(headers, rows)


def print_experiment(title: str, table: str) -> None:
    """Print a titled experiment block (used by benches and examples)."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{table}")
