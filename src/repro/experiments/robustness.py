"""E16 — estimate accuracy under injected stream faults.

The paper's guarantees hold for clean streams; this experiment measures
what actually happens when they are not.  For each algorithm a
corrupted random-order stream is built per trial —

    ``ValidatedStream(FaultyStream(RandomOrderStream(G, seed), plan), "repair")``

— where the :class:`~repro.resilience.faults.FaultPlan` mixes
duplicates, self-loops, reversed endpoints and drops at a total fault
rate swept over :data:`FAULT_RATES`.  The validation layer repairs
what it can (canonicalize + dedupe); dropped edges are unrecoverable,
so the measured relative-error curve quantifies each algorithm's
sensitivity to missing data.

Covered: the paper's random-order triangle algorithm (Thm 2.1), the
three-pass four-cycle algorithm (Thm 5.3), and two baselines
(Cormode–Jowhari triangles, edge-sampling four-cycles) — accuracy under
corruption is exactly where the heavy/light decomposition and naive
sampling can diverge.

Every trial stays a pure function of its seeds (fault injection is
seeded, corruption is materialized at stream construction), so E16 is
as reproducible — and as parallelizable — as the clean experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..baselines import CormodeJowhariTriangles, EdgeSamplingFourCycles
from ..core import FourCycleArbitraryThreePass, TriangleRandomOrder
from ..graphs.graph import Graph
from ..resilience.checkpoint import NULL_CHECKPOINT, CheckpointContext
from ..resilience.faults import FaultPlan, FaultyStream
from ..streams import POLICY_REPAIR, RandomOrderStream, ValidatedStream
from .parallel import make_factory
from .runner import run_trials
from .workloads import build_workload

Record = Dict[str, Any]

#: The fault-rate x-axis of the robustness curve.
FAULT_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)

#: Offset separating the fault-injection RNG from the shuffle RNG, so a
#: stream's permutation and its corruption draw independent randomness
#: from the same trial seed.
FAULT_SEED_OFFSET = 7919


@dataclass(frozen=True)
class FaultedStreamFactory:
    """Picklable ``seed -> validated corrupted stream`` factory.

    Composes the full resilience stack: a fresh random-order permutation
    of ``graph``, a seeded corruption at ``rate``
    (:meth:`FaultPlan.mixed`), and a validation layer applying
    ``policy``.  A zero rate skips the fault layer entirely but keeps
    the validator, so the rate-0 row measures the repair layer's own
    (intended: zero) distortion.
    """

    graph: Graph
    rate: float
    policy: str = POLICY_REPAIR

    def __call__(self, seed: int):
        base = RandomOrderStream(self.graph, seed=seed)
        if self.rate:
            plan = FaultPlan.mixed(self.rate)
            base = FaultyStream(base, plan, seed=seed + FAULT_SEED_OFFSET)
        return ValidatedStream(base, self.policy)


def robustness_records(
    seed: int = 0,
    n_jobs: int = 1,
    trials: int = 3,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    """The E16 record table: relative error vs fault rate per algorithm."""
    triangle_workload = build_workload(
        "light-triangles", n=300, num_triangles=60, noise_edges=260
    )
    four_cycle_workload = build_workload(
        "sparse-four-cycles", n=400, num_cycles=50, noise_edges=100
    )
    t3 = triangle_workload.triangles
    c4 = four_cycle_workload.four_cycles
    algorithms: List[tuple] = [
        (
            "mv-triangle-ro (Thm 2.1)",
            triangle_workload,
            float(t3),
            make_factory(TriangleRandomOrder, t_guess=t3, epsilon=0.3),
        ),
        (
            "three-pass (Thm 5.3)",
            four_cycle_workload,
            float(c4),
            make_factory(
                FourCycleArbitraryThreePass,
                t_guess=c4,
                epsilon=0.3,
                eta=2.0,
                c=0.6,
                use_log_factor=False,
            ),
        ),
        (
            "cormode-jowhari",
            triangle_workload,
            float(t3),
            make_factory(
                CormodeJowhariTriangles, seed_param=None, t_guess=t3, epsilon=0.3
            ),
        ),
        (
            "edge-sampling-4c",
            four_cycle_workload,
            float(c4),
            make_factory(EdgeSamplingFourCycles, p=0.5),
        ),
    ]
    rows: List[Record] = []
    for name, workload, truth, algorithm_factory in algorithms:
        for rate in FAULT_RATES:

            def _measure(
                _name=name,
                _workload=workload,
                _truth=truth,
                _factory=algorithm_factory,
                _rate=rate,
            ) -> Record:
                stats = run_trials(
                    _factory,
                    FaultedStreamFactory(graph=_workload.graph, rate=_rate),
                    truth=_truth,
                    trials=trials,
                    base_seed=seed,
                    n_jobs=n_jobs,
                )
                return {
                    "algorithm": _name,
                    "fault_rate": _rate,
                    "truth": _truth,
                    "median_estimate": round(stats.median_estimate, 1),
                    "median_rel_err": round(stats.median_relative_error, 4),
                    "passes": stats.passes,
                }

            rows.append(
                checkpoint.unit(f"robustness:{name}@rate={rate!r}", _measure)
            )
    return rows
