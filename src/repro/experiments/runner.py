"""Trial running and statistics for Monte Carlo streaming algorithms.

Every algorithm in this library is randomized (and most are analyzed
at constant success probability), so a single run proves nothing.  The
runner executes independent trials — fresh algorithm seed *and* fresh
stream randomness per trial — and summarizes the estimate and space
distributions the experiments assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from ..core.result import EstimateResult
from .. import obs as _obs
from ..sketches.estimators import median
from ..streams.models import StreamSource
from .parallel import ParallelTrialRunner, RetryPolicy, SeededFactory

AlgorithmFactory = Callable[[int], Any]  # seed -> algorithm with .run()
StreamFactory = Callable[[int], StreamSource]  # seed -> fresh stream


@dataclass
class TrialStats:
    """Summary of repeated runs against a known ground truth."""

    truth: float
    estimates: List[float]
    space_items: List[int]
    passes: int
    results: List[EstimateResult] = field(repr=False, default_factory=list)
    wall_seconds: List[float] = field(repr=False, default_factory=list)
    #: trial index -> anomaly notes (retries with their derived seeds,
    #: timeout overruns, space-budget flags, crash recoveries); empty
    #: for a fault-free run.
    anomalies: Dict[int, List[str]] = field(repr=False, default_factory=dict)

    @property
    def trials(self) -> int:
        return len(self.estimates)

    @property
    def total_wall_seconds(self) -> float:
        return sum(self.wall_seconds)

    @property
    def median_wall_seconds(self) -> float:
        if not self.wall_seconds:
            return 0.0
        return median(self.wall_seconds)

    @property
    def median_estimate(self) -> float:
        return median(self.estimates)

    @property
    def median_relative_error(self) -> float:
        """Relative error of the *median estimate* — the quantity the
        paper's boost-by-median argument controls."""
        if self.truth == 0:
            return 0.0 if self.median_estimate == 0 else float("inf")
        return abs(self.median_estimate - self.truth) / self.truth

    @property
    def per_trial_relative_errors(self) -> List[float]:
        if self.truth == 0:
            return [0.0 if e == 0 else float("inf") for e in self.estimates]
        return [abs(e - self.truth) / self.truth for e in self.estimates]

    @property
    def mean_relative_error(self) -> float:
        errors = self.per_trial_relative_errors
        return sum(errors) / len(errors)

    def success_rate(self, epsilon: float) -> float:
        """Fraction of trials within a (1 +- epsilon) factor of truth."""
        errors = self.per_trial_relative_errors
        return sum(1 for e in errors if e <= epsilon) / len(errors)

    @property
    def median_space(self) -> float:
        return median([float(s) for s in self.space_items])

    @property
    def max_space(self) -> int:
        return max(self.space_items)

    def summary_row(self) -> Dict[str, float]:
        return {
            "truth": self.truth,
            "median_estimate": self.median_estimate,
            "median_rel_error": self.median_relative_error,
            "mean_rel_error": self.mean_relative_error,
            "median_space": self.median_space,
            "trials": self.trials,
            "passes": self.passes,
        }


def run_trials(
    algorithm_factory: AlgorithmFactory,
    stream_factory: StreamFactory,
    truth: float,
    trials: int = 9,
    base_seed: int = 0,
    n_jobs: int = 1,
    retry: "RetryPolicy" = None,
) -> TrialStats:
    """Run ``trials`` independent (algorithm, stream) pairs.

    Trial ``i`` uses algorithm seed ``base_seed * 1000 + i`` and stream
    seed ``base_seed * 1000 + 500 + i`` so neither is shared across
    trials or between the two sources of randomness.

    ``n_jobs`` fans the trials across a process pool (``-1``/``0``/
    ``None`` = all cores).  Every trial is a pure function of its seeds,
    so the stats are bit-identical for any ``n_jobs``; non-picklable
    factories (lambdas) degrade to in-process execution with a warning.

    ``retry`` arms the hardened engine (timeouts, bounded retries with
    derived seeds, worker-crash recovery, space-budget flagging — see
    :class:`~repro.experiments.parallel.RetryPolicy`).  Trials that
    needed intervention land in :attr:`TrialStats.anomalies`.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    telemetry = _obs.current()
    runner = ParallelTrialRunner(n_jobs=n_jobs, retry=retry)
    with telemetry.tracer.span(
        "run_trials", kind="runner", trials=trials, base_seed=base_seed
    ):
        results: List[EstimateResult] = runner.run(
            algorithm_factory, stream_factory, trials=trials, base_seed=base_seed
        )
        # Fold per-trial captures back in — always in trial index order,
        # which is what makes serial and parallel aggregation identical.
        for result in results:
            telemetry.absorb(result.telemetry)
            result.telemetry = None
    estimates = [result.estimate for result in results]
    spaces = [result.space_items for result in results]
    walls = [result.wall_seconds for result in results]
    anomalies: Dict[int, List[str]] = {
        i: list(result.details["anomalies"])
        for i, result in enumerate(results)
        if result.details.get("anomalies")
    }
    # Budget-aborted partials legitimately stopped early; exclude them
    # from the pass-consistency invariant instead of calling the
    # algorithm buggy for a fault the harness injected.
    countable = [r for r in results if not r.details.get("partial")]
    pass_counts = {result.passes for result in countable} or {0}
    if len(pass_counts) != 1:
        majority = max(
            pass_counts, key=lambda p: sum(r.passes == p for r in countable)
        )
        offenders = [i for i, r in enumerate(results) if r.passes != majority]
        raise RuntimeError(
            "trials disagree on the number of stream passes "
            f"({sorted(pass_counts)}); trial(s) {offenders} deviate from the "
            f"majority pass count {majority}.  Every trial of one algorithm "
            "must use the same pass budget — this indicates a seed-dependent "
            "control-flow bug in the algorithm under test"
        )
    passes = pass_counts.pop()
    if telemetry.enabled:
        payload: Dict[str, Any] = {
            "trials": trials,
            "base_seed": base_seed,
            "n_jobs": n_jobs,
            "truth": truth,
            "passes": passes,
            "algorithm": results[0].algorithm,
            "estimates": estimates,
            "space_items": spaces,
            "wall_seconds": walls,
        }
        if anomalies:
            payload["anomalies"] = {str(k): v for k, v in anomalies.items()}
        if isinstance(algorithm_factory, SeededFactory):
            for key in ("epsilon", "t_guess"):
                if key in algorithm_factory.kwargs:
                    payload[key] = algorithm_factory.kwargs[key]
        telemetry.record_run("run_trials", payload)
    return TrialStats(
        truth=truth,
        estimates=estimates,
        space_items=spaces,
        passes=passes,
        results=results,
        wall_seconds=walls,
        anomalies=anomalies,
    )


def decision_rate(
    decide: Callable[[int], bool], trials: int = 15, base_seed: int = 0
) -> float:
    """Fraction of trials on which ``decide(seed)`` returns True —
    used for the distinguisher and lower-bound protocol experiments."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    hits = sum(1 for i in range(trials) if decide(base_seed * 1000 + i))
    return hits / trials
