"""Programmatic experiment suite.

The full experiments live in ``benchmarks/`` as pytest-benchmark
targets with assertions; this module provides *light* variants that
run in seconds from plain Python (or ``python -m repro run-experiment
E9``) and return the same kind of record tables.  They are the demo /
smoke tier: smaller workloads, fewer trials, no assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .. import obs as _obs
from ..baselines import CormodeJowhariTriangles
from ..core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryThreePass,
    FourCycleDistinguisher,
    TriangleRandomOrder,
    UsefulAlgorithm,
    bernoulli_vertex_sample,
)
from ..graphs import check_lemma51
from ..lowerbounds import (
    DisjointnessInstance,
    build_two_stars,
    solve_disjointness_with_distinguisher,
)
from ..resilience.checkpoint import NULL_CHECKPOINT, CheckpointContext
from ..streams import AdjacencyListStream, RandomOrderStream
from .parallel import make_factory
from .robustness import robustness_records
from .runner import run_trials
from .workloads import build_workload

Record = Dict[str, Any]
# (seed, *, n_jobs, checkpoint) -> records
ExperimentRunner = Callable[..., List[Record]]


@dataclass(frozen=True)
class Experiment:
    """One registered light experiment."""

    id: str
    title: str
    run: ExperimentRunner


def _e1_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    workload = build_workload(
        "heavy-and-light-triangles", n=900, heavy_triangles=200, light_triangles_count=80
    )
    truth = workload.triangles
    rows = []
    for name, factory in (
        (
            "mv-triangle-ro (Thm 2.1)",
            make_factory(TriangleRandomOrder, t_guess=truth, epsilon=0.3),
        ),
        (
            "cormode-jowhari",
            make_factory(
                CormodeJowhariTriangles, seed_param=None, t_guess=truth, epsilon=0.3
            ),
        ),
    ):

        def _measure(_name=name, _factory=factory) -> Record:
            stats = run_trials(
                _factory,
                make_factory(RandomOrderStream, graph=workload.graph),
                truth=truth,
                trials=5,
                base_seed=seed,
                n_jobs=n_jobs,
            )
            return {
                "algorithm": _name,
                "truth": truth,
                "median_estimate": round(stats.median_estimate, 1),
                "median_rel_err": round(stats.median_relative_error, 4),
            }

        rows.append(checkpoint.unit(f"E1:{name}", _measure))
    return rows


def _e4_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    import random

    from ..graphs import erdos_renyi

    graph = erdos_renyi(120, 0.1, seed=seed)
    w = graph.num_edges
    m_bound = 1.5 * w
    rows = []
    for trial in range(5):

        def _measure(_trial=trial) -> Record:
            r1, r2 = bernoulli_vertex_sample(
                graph.vertices(), 0.5, seed=seed * 10 + _trial
            )
            algorithm = UsefulAlgorithm(r1=r1, r2=r2, p=0.5, m_bound=m_bound)
            order = sorted(graph.vertices())
            random.Random(seed * 10 + _trial).shuffle(order)
            observable = algorithm.r1 | algorithm.r2
            for v in order:
                algorithm.process_vertex(
                    v, {u: 1.0 for u in graph.neighbors(v) if u in observable}
                )
            estimate = algorithm.estimate()
            return {
                "trial": _trial,
                "W": w,
                "estimate": round(estimate, 1),
                "error_over_M": round(abs(estimate - w) / m_bound, 4),
            }

        rows.append(checkpoint.unit(f"E4:trial={trial}", _measure))
    return rows


def _e5_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    workload = build_workload(
        "diamond-mixture",
        n=900,
        large=(20,) * 4,
        medium=(8,) * 8,
        small=(3,) * 10,
        noise_edges=200,
    )
    truth = workload.four_cycles

    def _measure() -> Record:
        stats = run_trials(
            make_factory(FourCycleAdjacencyDiamond, t_guess=truth, epsilon=0.3),
            make_factory(AdjacencyListStream, graph=workload.graph),
            truth=truth,
            trials=3,
            base_seed=seed,
            n_jobs=n_jobs,
        )
        return {
            "algorithm": "diamond (Thm 4.2)",
            "truth": truth,
            "median_estimate": round(stats.median_estimate, 1),
            "median_rel_err": round(stats.median_relative_error, 4),
            "passes": stats.passes,
        }

    return [checkpoint.unit("E5:diamond", _measure)]


def _e8_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    workload = build_workload(
        "medium-diamonds", n=2000, diamond_size=10, count=40, noise_edges=400
    )
    truth = workload.four_cycles

    def _measure() -> Record:
        stats = run_trials(
            make_factory(
                FourCycleArbitraryThreePass,
                t_guess=truth,
                epsilon=0.3,
                eta=2.0,
                c=0.6,
                use_log_factor=False,
            ),
            make_factory(RandomOrderStream, graph=workload.graph),
            truth=truth,
            trials=3,
            base_seed=seed,
            n_jobs=n_jobs,
        )
        return {
            "algorithm": "three-pass (Thm 5.3)",
            "truth": truth,
            "median_estimate": round(stats.median_estimate, 1),
            "median_rel_err": round(stats.median_relative_error, 4),
            "passes": stats.passes,
        }

    return [checkpoint.unit("E8:three-pass", _measure)]


def _e9_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    yes = build_workload("sparse-four-cycles", n=1000, num_cycles=150, noise_edges=200)
    no = build_workload("four-cycle-free", n_triangles=300)
    rows = []
    for label, workload in (("T cycles", yes), ("cycle-free", no)):

        def _measure(_label=label, _workload=workload) -> Record:
            hits = 0
            trials = 6
            for trial in range(trials):
                algorithm = FourCycleDistinguisher(
                    t_guess=max(1, yes.four_cycles), c=3.0, seed=seed * 10 + trial
                )
                hits += algorithm.decide(
                    RandomOrderStream(_workload.graph, seed=seed * 10 + trial)
                )
            return {"instance": _label, "detection_rate": hits / trials}

        rows.append(checkpoint.unit(f"E9:{label}", _measure))
    return rows


def _e11_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    rows = []
    for answer in (0, 1):

        def _measure(_answer=answer) -> Record:
            instance = DisjointnessInstance.random_with_answer(20, _answer, seed=seed)
            construction = build_two_stars(instance, k=10)
            decided, space = solve_disjointness_with_distinguisher(
                instance,
                k=10,
                distinguisher_factory=lambda t: FourCycleDistinguisher(
                    t_guess=t, c=3.0, seed=seed
                ),
                seed=seed,
            )
            return {
                "DISJ_answer": _answer,
                "four_cycles": construction.expected_four_cycles,
                "protocol_decided": decided,
                "space_words": space,
            }

        rows.append(checkpoint.unit(f"E11:answer={answer}", _measure))
    return rows


def _e12_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    workload = build_workload(
        "diamond-mixture",
        n=700,
        large=(20,) * 3,
        medium=(8,) * 6,
        small=(3,) * 10,
        noise_edges=150,
    )
    rows = []
    for eta in (2.0, 8.0, 90.0):

        def _measure(_eta=eta) -> Record:
            report = check_lemma51(workload.graph, _eta)
            return {
                "eta": _eta,
                "T": report.total_cycles,
                "cycles_with_<=1_bad": report.cycles_with_at_most_one_bad,
                "bound": round(report.bound, 1),
                "holds": report.holds,
            }

        rows.append(checkpoint.unit(f"E12:eta={eta}", _measure))
    return rows


def _e16_light(
    seed: int,
    n_jobs: int = 1,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> List[Record]:
    return robustness_records(
        seed=seed, n_jobs=n_jobs, trials=3, checkpoint=checkpoint
    )


SUITE: Dict[str, Experiment] = {
    experiment.id: experiment
    for experiment in (
        Experiment("E1", "Thm 2.1 vs CJ on a heavy-edge workload (light)", _e1_light),
        Experiment("E4", "Lemma 3.1 Useful Algorithm (light)", _e4_light),
        Experiment("E5", "Thm 4.2 diamond algorithm (light)", _e5_light),
        Experiment("E8", "Thm 5.3 three-pass algorithm (light)", _e8_light),
        Experiment("E9", "Thm 5.6 distinguisher (light)", _e9_light),
        Experiment("E11", "Thm 5.8 DISJ reduction (light)", _e11_light),
        Experiment("E12", "Lemma 5.1 exact check (light)", _e12_light),
        Experiment("E16", "robustness: error vs fault rate (light)", _e16_light),
    )
}


def experiment_checkpoint_key(experiment_id: str, seed: int) -> str:
    """The config hash guarding an experiment's checkpoint file."""
    from ..resilience.checkpoint import config_hash

    return config_hash(
        {"kind": "run-experiment", "experiment": experiment_id.upper(), "seed": seed}
    )


def run_experiment(
    experiment_id: str,
    seed: int = 0,
    n_jobs: int = 1,
    checkpoint: Optional[CheckpointContext] = None,
) -> List[Record]:
    """Run one light experiment and return its record table.

    ``n_jobs`` fans each experiment's Monte Carlo trials across a
    process pool; results are identical for any value (see
    :mod:`repro.experiments.parallel`).

    ``checkpoint`` (a
    :class:`~repro.resilience.checkpoint.CheckpointContext`) persists
    each completed row; a resumed run replays cached rows from the file
    and computes only the rest, yielding records identical to an
    uninterrupted run.  The resume lineage is recorded into the run
    manifest when telemetry is active.
    """
    key = experiment_id.upper()
    if key not in SUITE:
        available = ", ".join(sorted(SUITE))
        raise KeyError(
            f"no light experiment {experiment_id!r}; available: {available} "
            "(the full set lives in benchmarks/)"
        )
    if checkpoint is None:
        checkpoint = NULL_CHECKPOINT
    experiment = SUITE[key]
    telemetry = _obs.current()
    with telemetry.tracer.span(
        f"experiment:{key}", kind="experiment", seed=seed, n_jobs=n_jobs
    ):
        records = experiment.run(seed, n_jobs=n_jobs, checkpoint=checkpoint)
    if telemetry.enabled:
        payload = {
            "experiment": key,
            "title": experiment.title,
            "seed": seed,
            "n_jobs": n_jobs,
            "records": records,
        }
        lineage = checkpoint.lineage()
        if lineage is not None:
            payload["checkpoint"] = lineage
        telemetry.record_run(f"experiment:{key}", payload)
    return records
