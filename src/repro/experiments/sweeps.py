"""Parameter sweeps and scaling-law fits.

The paper's claims are asymptotic — space Õ(m / sqrt(T)), Õ(m /
T^{1/4}), ... — so the experiments sweep the driving parameter (mostly
``T``) with everything else pinned and fit a log-log slope.  A claim
like "space ~ T^{-1/2}" passes when the fitted exponent is within a
tolerance of -0.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from .. import obs as _obs


@dataclass
class SweepPoint:
    """One sweep setting and its measured outputs."""

    parameter: float
    outputs: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    """An ordered collection of sweep points."""

    parameter_name: str
    points: List[SweepPoint]

    def series(self, output_name: str) -> Tuple[List[float], List[float]]:
        """(parameters, outputs) pairs for one measured quantity."""
        xs = [p.parameter for p in self.points]
        ys = [p.outputs[output_name] for p in self.points]
        return xs, ys

    def slope(self, output_name: str) -> float:
        """Fitted log-log slope of ``output_name`` vs the parameter."""
        xs, ys = self.series(output_name)
        return loglog_slope(xs, ys)


@dataclass(frozen=True)
class _SweepTask:
    """Picklable per-point worker: runs ``measure`` under a fresh
    telemetry capture (when the parent session is active) so sweep
    points fanned across processes report the same spans and metrics
    as a serial sweep."""

    index: int
    parameter_name: str
    parameter: float
    measure: Callable[[float], Dict[str, float]]
    capture_telemetry: bool = False

    def __call__(self, _: object = None) -> Tuple[Dict[str, float], object]:
        if not self.capture_telemetry:
            return self.measure(self.parameter), None
        with _obs.capture(self.index) as telemetry:
            with telemetry.tracer.span(
                f"point[{self.index}]",
                kind="sweep-point",
                parameter=self.parameter_name,
                value=self.parameter,
            ):
                output = self.measure(self.parameter)
        return output, telemetry.export(self.index)


def _run_sweep_task(task: "_SweepTask") -> Tuple[Dict[str, float], object]:
    return task()


def run_sweep(
    parameter_name: str,
    values: Sequence[float],
    measure: Callable[[float], Dict[str, float]],
    n_jobs: int = 1,
    checkpoint: "CheckpointContext" = None,
) -> SweepResult:
    """Evaluate ``measure`` at each parameter value.

    Sweep points are independent, so ``n_jobs > 1`` fans them across a
    process pool when ``measure`` is picklable (a module-level function
    or :class:`~repro.experiments.parallel.SeededFactory`-style
    callable); the point order in the result is always the input order.

    When a telemetry session is active each point runs inside its own
    capture, and the captures are merged back in point order — so the
    aggregated metrics and span tree are identical for any ``n_jobs``.

    An active ``checkpoint``
    (:class:`~repro.resilience.checkpoint.CheckpointContext`) persists
    every completed point's outputs; on resume, completed points are
    served from the checkpoint file and only the remaining ones run.
    Cached points carry no fresh telemetry capture (their spans were
    recorded by the interrupted run).
    """
    from ..resilience.checkpoint import NULL_CHECKPOINT, is_missing
    from .parallel import parallel_map

    if checkpoint is None:
        checkpoint = NULL_CHECKPOINT
    telemetry = _obs.current()

    def _unit_name(i: int, value: float) -> str:
        return f"sweep:{parameter_name}[{i}]={value!r}"

    cached: Dict[int, Dict[str, float]] = {}
    tasks: List[_SweepTask] = []
    for i, value in enumerate(values):
        hit = checkpoint.lookup(_unit_name(i, value))
        if not is_missing(hit):
            cached[i] = hit
            checkpoint.hits += 1
            telemetry.metrics.inc("checkpoint.units_cached")
            continue
        tasks.append(
            _SweepTask(
                index=i,
                parameter_name=parameter_name,
                parameter=value,
                measure=measure,
                capture_telemetry=telemetry.enabled,
            )
        )
    with telemetry.tracer.span(
        f"sweep:{parameter_name}",
        kind="sweep",
        points=len(values),
        cached_points=len(cached),
    ):
        results = parallel_map(_run_sweep_task, tasks, n_jobs=n_jobs)
        for task, (output, capture) in zip(tasks, results):
            telemetry.absorb(capture)
            checkpoint.store(_unit_name(task.index, task.parameter), output)
            if checkpoint.active:
                checkpoint.misses += 1
                telemetry.metrics.inc("checkpoint.units_run")
    fresh = {task.index: output for task, (output, _) in zip(tasks, results)}
    points = [
        SweepPoint(
            parameter=value,
            outputs=cached[i] if i in cached else fresh[i],
        )
        for i, value in enumerate(values)
    ]
    return SweepResult(parameter_name=parameter_name, points=points)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    All inputs must be positive; two distinct x values are required.
    """
    if len(xs) != len(ys):
        raise ValueError("x and y series must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit needs strictly positive values")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(log_x)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    sxx = sum((x - mean_x) ** 2 for x in log_x)
    if sxx == 0:
        raise ValueError("all x values identical; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y))
    return sxy / sxx


def geometric_range(start: float, stop: float, count: int) -> List[float]:
    """``count`` geometrically spaced values from ``start`` to ``stop``."""
    if count < 2:
        raise ValueError("need at least two values")
    if start <= 0 or stop <= 0:
        raise ValueError("geometric range needs positive endpoints")
    ratio = (stop / start) ** (1.0 / (count - 1))
    return [start * ratio**i for i in range(count)]


def guess_schedule(m: int, levels: int = 8) -> List[float]:
    """Geometric T-guess schedule ``1, 2, 4, ...`` capped at ``2 m^2``.

    The standard answer to "we do not know T in advance": run one
    algorithm instance per guess and combine (see
    :func:`repro.experiments.calibration.estimate_with_guesses`).
    """
    guesses: List[float] = []
    guess = 1.0
    cap = 2.0 * m * m
    while guess <= cap and len(guesses) < levels:
        guesses.append(guess)
        guess *= 4.0
    return guesses
