"""Named workload families for the experiment suite.

The paper has no datasets; each experiment in EXPERIMENTS.md draws its
graphs from one of these families.  A workload bundles the graph with
its exact counts (our ground truth) and the generator parameters, so a
benchmark row is fully reproducible from the workload name and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence

from ..graphs import (
    Graph,
    dense_wedge_graph,
    erdos_renyi,
    friendship_graph,
    heavy_edge_graph,
    planted_diamonds,
    planted_four_cycles,
    planted_triangles,
)
from .groundtruth import cached_ground_truth


@dataclass
class Workload:
    """A graph plus its exact counts and provenance."""

    name: str
    graph: Graph = field(repr=False)
    triangles: int
    four_cycles: int
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @property
    def m(self) -> int:
        return self.graph.num_edges

    def describe(self) -> str:
        return (
            f"{self.name}: n={self.n} m={self.m} "
            f"T3={self.triangles} T4={self.four_cycles}"
        )


def _wrap(name: str, graph: Graph, **params: Any) -> Workload:
    # Exact counts come from the memoized matrix backend: sweeps rebuild
    # the same (name, params, seed) workload repeatedly, and the counts
    # are a pure function of that provenance.
    counts = cached_ground_truth(name, params, graph)
    return Workload(
        name=name,
        graph=graph,
        triangles=counts["triangles"],
        four_cycles=counts["four_cycles"],
        params=params,
    )


# ----------------------------------------------------------------------
# triangle workloads (E1, E2)
# ----------------------------------------------------------------------
def light_triangles(
    n: int = 900, num_triangles: int = 200, noise_edges: int = 1200, seed: int = 0
) -> Workload:
    """Disjoint planted triangles + noise: every edge is light."""
    graph = planted_triangles(n, num_triangles, extra_edges=noise_edges, seed=seed)
    return _wrap(
        "light-triangles", graph, n=n, planted=num_triangles, noise=noise_edges, seed=seed
    )


def heavy_and_light_triangles(
    n: int = 1500,
    heavy_triangles: int = 400,
    light_triangles_count: int = 150,
    seed: int = 0,
) -> Workload:
    """One heavy edge (a triangle book) plus light triangles — the
    adversarial case for prefix samplers (Theorem 2.1's motivation)."""
    graph = heavy_edge_graph(n, heavy_triangles, light_triangles_count, seed=seed)
    return _wrap(
        "heavy-and-light-triangles",
        graph,
        n=n,
        heavy=heavy_triangles,
        light=light_triangles_count,
        seed=seed,
    )


def social_like_triangles(n: int = 500, attach: int = 4, seed: int = 0) -> Workload:
    """Preferential-attachment graph: skewed degrees, organic triangles."""
    from ..graphs import barabasi_albert

    graph = barabasi_albert(n, attach, seed=seed)
    return _wrap("social-like-triangles", graph, n=n, attach=attach, seed=seed)


# ----------------------------------------------------------------------
# four-cycle workloads (E5-E10)
# ----------------------------------------------------------------------
def diamond_mixture(
    n: int = 2500,
    large: Sequence[int] = (40,) * 8,
    medium: Sequence[int] = (15,) * 16,
    small: Sequence[int] = (4,) * 30,
    noise_edges: int = 600,
    seed: int = 0,
) -> Workload:
    """Diamonds across three size decades + noise (Theorem 4.2 driver)."""
    sizes = list(large) + list(medium) + list(small)
    graph = planted_diamonds(n, sizes, extra_edges=noise_edges, seed=seed)
    return _wrap("diamond-mixture", graph, n=n, sizes=sizes, noise=noise_edges, seed=seed)


def sparse_four_cycles(
    n: int = 2000, num_cycles: int = 350, noise_edges: int = 500, seed: int = 0
) -> Workload:
    """Disjoint planted four-cycles + noise (Theorem 5.3 driver)."""
    graph = planted_four_cycles(n, num_cycles, extra_edges=noise_edges, seed=seed)
    return _wrap(
        "sparse-four-cycles", graph, n=n, planted=num_cycles, noise=noise_edges, seed=seed
    )


def medium_diamonds(
    n: int = 4000, diamond_size: int = 12, count: int = 80, noise_edges: int = 800, seed: int = 0
) -> Workload:
    """Many same-size diamonds: large T with moderate per-edge counts
    (the low-variance regime of the three-pass algorithm)."""
    graph = planted_diamonds(n, [diamond_size] * count, extra_edges=noise_edges, seed=seed)
    return _wrap(
        "medium-diamonds", graph, n=n, size=diamond_size, count=count, seed=seed
    )


def dense_gnp(n: int = 60, p: float = 0.5, seed: int = 0) -> Workload:
    """Dense G(n, p): T4 = Theta(n^4 p^4) — the large-T regime of
    Theorems 4.3 and 5.7."""
    graph = dense_wedge_graph(n, p, seed=seed)
    return _wrap("dense-gnp", graph, n=n, p=p, seed=seed)


def four_cycle_free(n_triangles: int = 200) -> Workload:
    """The friendship graph: triangles but zero four-cycles (the NO
    instance for the Theorem 5.6 distinguisher)."""
    graph = friendship_graph(n_triangles)
    return _wrap("four-cycle-free", graph, triangles=n_triangles)


def noisy_gnp(n: int = 300, p: float = 0.05, seed: int = 0) -> Workload:
    """A plain sparse random graph — the unstructured control."""
    graph = erdos_renyi(n, p, seed=seed)
    return _wrap("noisy-gnp", graph, n=n, p=p, seed=seed)


def power_law(n: int = 400, exponent: float = 2.3, seed: int = 0) -> Workload:
    """Chung–Lu heavy-tailed degrees: counts concentrate on hub edges."""
    from ..graphs.generators import power_law_graph

    graph = power_law_graph(n, exponent=exponent, seed=seed)
    return _wrap("power-law", graph, n=n, exponent=exponent, seed=seed)


def user_item(
    users: int = 300,
    items: int = 120,
    interactions_per_user: int = 5,
    popular_items: int = 8,
    seed: int = 0,
) -> Workload:
    """User-item co-engagement bipartite graph: triangle-free,
    diamond-rich — the motivating shape for Theorem 4.2."""
    from ..graphs.generators import user_item_bipartite

    graph = user_item_bipartite(
        users,
        items,
        interactions_per_user,
        popular_items=popular_items,
        seed=seed,
    )
    return _wrap(
        "user-item",
        graph,
        users=users,
        items=items,
        interactions=interactions_per_user,
        popular=popular_items,
        seed=seed,
    )


ALL_WORKLOADS = {
    "light-triangles": light_triangles,
    "heavy-and-light-triangles": heavy_and_light_triangles,
    "social-like-triangles": social_like_triangles,
    "diamond-mixture": diamond_mixture,
    "sparse-four-cycles": sparse_four_cycles,
    "medium-diamonds": medium_diamonds,
    "dense-gnp": dense_gnp,
    "four-cycle-free": four_cycle_free,
    "noisy-gnp": noisy_gnp,
    "power-law": power_law,
    "user-item": user_item,
}


def build_workload(name: str, **overrides: Any) -> Workload:
    """Construct a workload by registry name."""
    try:
        factory = ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return factory(**overrides)
