"""Exact subgraph counting — the ground truth for every experiment.

The streaming algorithms in :mod:`repro.core` are compared against the
exact triangle and four-cycle counts computed here.  Everything in this
module is deterministic and exhaustively tested against networkx.

Key identities used throughout the paper and this library:

* A *wedge* is a path of length two.  For a pair of vertices ``{u, v}``
  let ``x[uv] = |N(u) & N(v)|`` be the number of wedges with endpoints
  ``u`` and ``v`` (the paper's vector ``x``).

* The number of four-cycles satisfies ``sum_{u<v} C(x[uv], 2) == 2 * C4``
  because every four-cycle ``a-b-c-d`` is counted once through each of
  its two diagonals ``{a, c}`` and ``{b, d}``.

* A *(u, v)-diamond* of size ``h`` (paper Section 4.1) is the complete
  bipartite graph between ``{u, v}`` and their ``h`` common neighbors;
  it contains ``C(h, 2)`` four-cycles, and ``h == x[uv]``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .graph import Edge, Graph, Vertex, normalize_edge


def _choose2(k: int) -> int:
    """``k choose 2`` for non-negative integers."""
    return k * (k - 1) // 2


# ----------------------------------------------------------------------
# triangles
# ----------------------------------------------------------------------
def triangle_count(graph: Graph) -> int:
    """Exact number of triangles.

    Sums, over every edge ``{u, v}``, the number of common neighbors of
    ``u`` and ``v``; each triangle is seen once per edge, so the sum is
    ``3 * T``.
    """
    total = 0
    for u, v in graph.edges():
        small, large = _ordered_by_degree(graph, u, v)
        total += sum(1 for w in graph.neighbors(small) if w in graph.neighbors(large))
    return total // 3


def per_edge_triangle_counts(graph: Graph) -> Dict[Edge, int]:
    """Map each edge to ``t_e``, the number of triangles containing it."""
    counts: Dict[Edge, int] = {}
    for u, v in graph.edges():
        small, large = _ordered_by_degree(graph, u, v)
        shared = sum(1 for w in graph.neighbors(small) if w in graph.neighbors(large))
        counts[normalize_edge(u, v)] = shared
    return counts


def max_edge_triangle_count(graph: Graph) -> int:
    """The largest ``t_e`` over all edges — the paper's heavy-edge driver."""
    counts = per_edge_triangle_counts(graph)
    return max(counts.values(), default=0)


def triangles(graph: Graph) -> Iterator[Tuple[Vertex, Vertex, Vertex]]:
    """Enumerate every triangle once as a sorted vertex triple."""
    for u, v in graph.edges():
        for w in graph.neighbors(u):
            if w in graph.neighbors(v):
                triple = tuple(sorted((u, v, w)))
                if (triple[0], triple[1]) == (u, v):
                    yield triple  # emit only from the lexicographically first edge


# ----------------------------------------------------------------------
# wedges (the vector x of Section 4.2)
# ----------------------------------------------------------------------
def wedge_counts(graph: Graph) -> Dict[Tuple[Vertex, Vertex], int]:
    """The wedge vector ``x``: for each unordered pair ``{u, v}`` with at
    least one common neighbor, the number of common neighbors.

    Pairs with no common neighbor are omitted (their count is 0).
    Runs in ``O(sum_t deg(t)^2)`` time.
    """
    counts: Dict[Tuple[Vertex, Vertex], int] = {}
    for center in graph.vertices():
        neighbor_list = sorted(graph.neighbors(center))
        for i, u in enumerate(neighbor_list):
            for v in neighbor_list[i + 1 :]:
                pair = normalize_edge(u, v)
                counts[pair] = counts.get(pair, 0) + 1
    return counts


def total_wedges(graph: Graph) -> int:
    """Total number of wedges (paths of length two) in the graph."""
    return sum(_choose2(graph.degree(v)) for v in graph.vertices())


def diamond_sizes(graph: Graph) -> Dict[Tuple[Vertex, Vertex], int]:
    """Sizes ``d(u, v)`` of all diamonds with at least two wedges.

    The (u, v)-diamond has size ``|N(u) & N(v)|``; only diamonds of size
    at least 2 contain a four-cycle, so smaller ones are filtered out.
    """
    return {pair: h for pair, h in wedge_counts(graph).items() if h >= 2}


# ----------------------------------------------------------------------
# four-cycles
# ----------------------------------------------------------------------
def four_cycle_count(graph: Graph) -> int:
    """Exact number of four-cycles via the diagonal-wedge identity.

    ``2 * C4 == sum_{u<v} C(x[uv], 2)`` — each cycle counted once per
    diagonal.
    """
    doubled = sum(_choose2(h) for h in wedge_counts(graph).values())
    if doubled % 2:  # defensive: the identity guarantees evenness
        raise AssertionError("wedge identity produced an odd doubled count")
    return doubled // 2


def per_edge_four_cycle_counts(graph: Graph) -> Dict[Edge, int]:
    """Map each edge to the number of four-cycles containing it.

    For edge ``{u, v}`` this counts pairs ``(w, z)`` with
    ``w in N(v) \\ {u}``, ``z in N(u) \\ {v}``, ``w != z`` and
    ``{w, z}`` an edge — i.e. cycles ``u-v-w-z``.
    """
    counts: Dict[Edge, int] = {}
    for u, v in graph.edges():
        count = 0
        for w in graph.neighbors(v):
            if w == u:
                continue
            for z in graph.neighbors(u):
                if z == v or z == w:
                    continue
                if z in graph.neighbors(w):
                    count += 1
        counts[normalize_edge(u, v)] = count
    return counts


def max_edge_four_cycle_count(graph: Graph) -> int:
    """The largest per-edge four-cycle count (heaviness, Section 5)."""
    counts = per_edge_four_cycle_counts(graph)
    return max(counts.values(), default=0)


def four_cycles(graph: Graph) -> Iterator[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """Enumerate each four-cycle once.

    A cycle is emitted as ``(a, b, c, d)`` where ``a`` is its smallest
    vertex, ``b < d`` are its neighbors on the cycle, and ``c`` is the
    vertex opposite ``a``.  This canonical form yields each cycle
    exactly once.
    """
    for a in graph.vertices():
        for b in graph.neighbors(a):
            if not _lt(a, b):
                continue
            for d in graph.neighbors(a):
                if not _lt(b, d):
                    continue
                for c in graph.neighbors(b):
                    if c == a or not _lt(a, c):
                        continue
                    if c in graph.neighbors(d):
                        yield (a, b, c, d)


def count_four_cycles_through_pair(graph: Graph, e1: Edge, e2: Edge) -> int:
    """Number of four-cycles containing both (vertex-disjoint) edges.

    Opposite edges ``{a, b}`` and ``{c, d}`` lie on a common four-cycle
    in up to two ways: ``a-b-c-d`` (needs edges bc, da) or ``a-b-d-c``
    (needs edges bd, ca).  Returns 0 for pairs sharing a vertex.
    """
    a, b = e1
    c, d = e2
    if len({a, b, c, d}) < 4:
        return 0
    count = 0
    if graph.has_edge(b, c) and graph.has_edge(d, a):
        count += 1
    if graph.has_edge(b, d) and graph.has_edge(c, a):
        count += 1
    return count


# ----------------------------------------------------------------------
# clustering / summary statistics
# ----------------------------------------------------------------------
def global_clustering_coefficient(graph: Graph) -> float:
    """Fraction of wedges that are closed into a triangle (transitivity)."""
    wedges = total_wedges(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def graph_summary(graph: Graph) -> Dict[str, float]:
    """A small statistics bundle used by the experiment reports."""
    return {
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "max_degree": graph.max_degree(),
        "triangles": triangle_count(graph),
        "four_cycles": four_cycle_count(graph),
        "wedges": total_wedges(graph),
        "transitivity": global_clustering_coefficient(graph),
    }


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _ordered_by_degree(graph: Graph, u: Vertex, v: Vertex) -> Tuple[Vertex, Vertex]:
    """Order a pair so the lower-degree endpoint comes first (fast scans)."""
    if graph.degree(u) <= graph.degree(v):
        return u, v
    return v, u


def _lt(a: Vertex, b: Vertex) -> bool:
    """Total order on vertices, robust to mixed types."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return repr(a) < repr(b)
