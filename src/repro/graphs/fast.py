"""Matrix-based exact counting (numpy-accelerated).

The reference counters in :mod:`repro.graphs.exact` are pure Python —
transparent but slow past a few thousand edges.  For large workload
construction and ground-truthing, these use the classical adjacency
matrix trace identities:

* ``triangles = tr(A^3) / 6``;
* ``four_cycles = (tr(A^4) - 2 * sum_v d_v^2 + 2m) / 8``
  (closed 4-walks minus the back-and-forth and out-and-back walks);
* ``F2(x) = (||A^2||_F^2 - sum_v d_v^2) / 2`` over unordered pairs,
  since ``(A^2)_{uv} = x_{uv}`` for ``u != v`` and ``(A^2)_{vv} = d_v``.

All arithmetic runs in float64 BLAS and is exact well past any graph
that fits in memory here (values stay far below 2^53); results are
rounded and returned as ints.  The equivalence tests in
``tests/graphs/test_fast.py`` pin these against the reference counters
over arbitrary hypothesis graphs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .graph import Graph, Vertex


def adjacency_matrix(graph: Graph) -> "np.ndarray":
    """Dense 0/1 adjacency matrix with a fixed vertex order.

    The order is the sorted vertex list (by repr for mixed types), so
    the matrix is deterministic for a given graph.
    """
    vertices: List[Vertex] = sorted(graph.vertices(), key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    matrix = np.zeros((n, n), dtype=np.float64)
    for u, v in graph.edges():
        i, j = index[u], index[v]
        matrix[i, j] = 1.0
        matrix[j, i] = 1.0
    return matrix


def fast_triangle_count(graph: Graph) -> int:
    """``tr(A^3) / 6`` — exact triangle count."""
    if graph.num_edges == 0:
        return 0
    a = adjacency_matrix(graph)
    a2 = a @ a
    trace3 = float(np.sum(a2 * a))  # tr(A^3) without forming A^3
    return round(trace3 / 6.0)


def fast_four_cycle_count(graph: Graph) -> int:
    """Closed-4-walk identity — exact four-cycle count."""
    if graph.num_edges == 0:
        return 0
    a = adjacency_matrix(graph)
    a2 = a @ a
    trace4 = float(np.sum(a2 * a2.T))  # tr(A^4) = ||A^2||_F^2 (A^2 symmetric)
    degrees = a.sum(axis=1)
    degree_square_sum = float(np.sum(degrees**2))
    m = graph.num_edges
    return round((trace4 - 2.0 * degree_square_sum + 2.0 * m) / 8.0)


def fast_wedge_f2(graph: Graph) -> int:
    """``F2`` of the wedge vector over unordered pairs."""
    if graph.num_edges == 0:
        return 0
    a = adjacency_matrix(graph)
    a2 = a @ a
    frob = float(np.sum(a2 * a2))
    degrees = a.sum(axis=1)
    return round((frob - float(np.sum(degrees**2))) / 2.0)


def fast_per_edge_triangle_counts(graph: Graph) -> Dict[tuple, int]:
    """Per-edge triangle counts via ``(A^2)_{uv}`` on edges."""
    from .graph import normalize_edge

    if graph.num_edges == 0:
        return {}
    vertices = sorted(graph.vertices(), key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    a = adjacency_matrix(graph)
    a2 = a @ a
    return {
        normalize_edge(u, v): round(float(a2[index[u], index[v]]))
        for u, v in graph.edges()
    }


def fast_per_edge_four_cycle_counts(graph: Graph) -> Dict[tuple, int]:
    """Per-edge four-cycle counts via the walk identity
    ``c(u,v) = (A^3)_{uv} - d_u - d_v + 1`` on edges (the subtracted
    terms remove the out-and-back length-3 walks through the edge)."""
    from .graph import normalize_edge

    if graph.num_edges == 0:
        return {}
    vertices = sorted(graph.vertices(), key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    a = adjacency_matrix(graph)
    a3 = a @ a @ a
    degrees = a.sum(axis=1)
    counts = {}
    for u, v in graph.edges():
        i, j = index[u], index[v]
        value = float(a3[i, j]) - float(degrees[i]) - float(degrees[j]) + 1.0
        counts[normalize_edge(u, v)] = round(value)
    return counts


def fast_counts(graph: Graph) -> Dict[str, int]:
    """Triangles, four-cycles and wedge-F2 from one matrix pipeline."""
    if graph.num_edges == 0:
        return {"triangles": 0, "four_cycles": 0, "wedge_f2": 0}
    a = adjacency_matrix(graph)
    a2 = a @ a
    degrees = a.sum(axis=1)
    degree_square_sum = float(np.sum(degrees**2))
    m = graph.num_edges
    trace3 = float(np.sum(a2 * a))
    frob = float(np.sum(a2 * a2))
    return {
        "triangles": round(trace3 / 6.0),
        "four_cycles": round((frob - 2.0 * degree_square_sum + 2.0 * m) / 8.0),
        "wedge_f2": round((frob - degree_square_sum) / 2.0),
    }


def fast_counts_sparse(graph: Graph) -> Dict[str, int]:
    """The :func:`fast_counts` identities on a ``scipy.sparse`` matrix.

    For the sparse workloads the experiments sweep (``m`` in the
    thousands, ``n`` in the thousands) the dense ``n x n`` matmul is the
    bottleneck; CSR ``A @ A`` only touches the realized wedges.  Raises
    ``ImportError`` when scipy is unavailable — use
    :func:`fast_counts_auto` for the gated entry point.
    """
    import scipy.sparse as sp

    if graph.num_edges == 0:
        return {"triangles": 0, "four_cycles": 0, "wedge_f2": 0}
    vertices: List[Vertex] = sorted(graph.vertices(), key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    rows = []
    cols = []
    for u, v in graph.edges():
        i, j = index[u], index[v]
        rows.extend((i, j))
        cols.extend((j, i))
    a = sp.csr_matrix(
        (np.ones(len(rows), dtype=np.float64), (rows, cols)), shape=(n, n)
    )
    a2 = a @ a
    degrees = np.asarray(a.sum(axis=1)).ravel()
    degree_square_sum = float(np.sum(degrees**2))
    m = graph.num_edges
    trace3 = float(a2.multiply(a).sum())
    frob = float(a2.multiply(a2).sum())
    return {
        "triangles": round(trace3 / 6.0),
        "four_cycles": round((frob - 2.0 * degree_square_sum + 2.0 * m) / 8.0),
        "wedge_f2": round((frob - degree_square_sum) / 2.0),
    }


def fast_counts_auto(graph: Graph) -> Dict[str, int]:
    """Pick the fastest exact-count backend for this graph.

    Small or dense graphs go through the dense BLAS pipeline; larger
    sparse graphs use the scipy.sparse pipeline when scipy is present.
    All backends compute identical integers.
    """
    n = graph.num_vertices
    m = graph.num_edges
    # Dense n x n work is ~n^3 flops; sparse work scales with wedge
    # count.  Below ~512 vertices (or when the graph is genuinely
    # dense) the dense path wins outright.
    if n <= 512 or m >= n * (n - 1) // 8:
        return fast_counts(graph)
    try:
        return fast_counts_sparse(graph)
    except ImportError:  # pragma: no cover - scipy is an optional extra
        return fast_counts(graph)
