"""Synthetic graph generators — the workloads for every experiment.

The paper evaluates nothing empirically, so these generators define the
workload families our experiment suite uses to validate each theorem:

* families where the triangle / four-cycle count ``T`` can be planted
  and swept (``planted_triangles``, ``planted_diamonds``), so the
  ``m / sqrt(T)``-style space claims can be measured as scaling laws;

* heavy-edge adversarial families (``heavy_edge_graph``,
  ``book_graph``) that break naive samplers and exercise the
  heavy/light machinery that is the core of Theorems 2.1 and 5.3;

* dense families with ``T = Omega(n^2)`` for the large-``T`` one-pass
  algorithms (Theorems 4.3 and 5.7);

* four-cycle-free graphs (``friendship_graph``, incidence
  constructions) for the distinguisher of Theorem 5.6.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

import numpy as np

from ..seeding import component_rng, numpy_generator
from .graph import Graph


def generator_rng(name: str, seed: int) -> "np.random.Generator":
    """The namespaced numpy RNG a vectorized generator draws from.

    Every generator derives its stream from ``("generator:" + name,
    seed)`` — never the raw seed — so ``erdos_renyi(seed=7)`` and
    ``gnm_random_graph(seed=7)`` draw decorrelated randomness.  The
    seed-audit (``repro verify seeds``) probes exactly this function.
    """
    return numpy_generator(f"generator:{name}", seed=seed)


def generator_scalar_rng(name: str, seed: int) -> "random.Random":
    """The namespaced ``random.Random`` a scalar generator draws from."""
    return component_rng(f"generator:{name}", seed=seed)


def _row_blocked_bernoulli(
    n: int,
    rng: "np.random.Generator",
    row_probs: Callable[[int], "np.ndarray"],
    graph: Graph,
    offset: int = 0,
) -> None:
    """Add edges ``{u, v}`` (u < v) keeping one vectorized draw per row.

    For each ``u`` the probabilities for the pairs ``(u, u+1..n-1)`` come
    from ``row_probs(u)`` and are compared against one uniform block —
    O(n) numpy calls total instead of the old O(n^2) scalar loop.
    ``offset`` shifts vertex labels (for bipartite right-hand sides).
    """
    for u in range(n - 1):
        draws = rng.random(n - u - 1)
        hits = np.nonzero(draws < row_probs(u))[0]
        for v in hits:
            graph.add_edge(offset + u, offset + u + 1 + int(v))


# ----------------------------------------------------------------------
# classical random graphs
# ----------------------------------------------------------------------
def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p): each of the C(n, 2) edges present independently w.p. ``p``.

    Vectorized: one Bernoulli block per row of the upper triangle (see
    :func:`_row_blocked_bernoulli`); deterministic given ``seed`` but
    drawing a different (equally distributed) instance than the legacy
    scalar-loop generator :func:`erdos_renyi_loop`.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = generator_rng("erdos-renyi", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    probs = np.float64(p)
    _row_blocked_bernoulli(n, rng, lambda u: probs, graph)
    return graph


def erdos_renyi_loop(n: int, p: float, seed: int = 0) -> Graph:
    """Legacy scalar-loop G(n, p) — kept as the distribution reference
    for the vectorized generator's equivalence tests and benchmarks."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = generator_scalar_rng("erdos-renyi-loop", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def gnm_random_graph(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): exactly ``m`` distinct edges chosen uniformly at random.

    Vectorized rejection sampling: draw endpoint pairs in batches,
    canonicalize, and keep the first ``m`` distinct pairs in draw order
    — the same "sample until m distinct" process as the legacy loop, so
    the edge set is a uniform ``m``-subset.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges on {n} vertices (max {max_edges})")
    rng = generator_rng("gnm", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    if m == 0:
        return graph
    codes = np.empty(0, dtype=np.int64)
    distinct = 0
    while distinct < m:
        batch = max(16, 2 * (m - distinct))
        us = rng.integers(0, n, size=batch)
        vs = rng.integers(0, n, size=batch)
        keep = us != vs
        lo = np.minimum(us[keep], vs[keep])
        hi = np.maximum(us[keep], vs[keep])
        codes = np.concatenate([codes, lo * n + hi])
        distinct = np.unique(codes).size
    _, first_index = np.unique(codes, return_index=True)
    chosen = codes[np.sort(first_index)[:m]]
    for code in chosen:
        graph.add_edge(int(code) // n, int(code) % n)
    return graph


def gnm_random_graph_loop(n: int, m: int, seed: int = 0) -> Graph:
    """Legacy scalar-loop G(n, m) — distribution reference for tests."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges on {n} vertices (max {max_edges})")
    rng = generator_scalar_rng("gnm-loop", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    while graph.num_edges < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def barabasi_albert(n: int, attach: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph: each new vertex links to ``attach``
    existing vertices chosen proportionally to degree.

    Produces the skewed degree distributions typical of the social
    networks that motivate triangle counting.
    """
    if attach < 1 or n <= attach:
        raise ValueError(f"need n > attach >= 1, got n={n}, attach={attach}")
    rng = generator_scalar_rng("barabasi-albert", seed)
    graph = Graph()
    # seed clique keeps early attachment well defined
    for v in range(attach + 1):
        for u in range(v):
            graph.add_edge(u, v)
    repeated: List[int] = []  # vertex repeated once per incident edge
    for u, v in graph.edges():
        repeated.extend((u, v))
    for v in range(attach + 1, n):
        targets = set()
        while len(targets) < attach:
            targets.add(rng.choice(repeated))
        for u in targets:
            graph.add_edge(u, v)
            repeated.extend((u, v))
    return graph


def chung_lu(weights: Sequence[float], seed: int = 0) -> Graph:
    """Chung–Lu random graph: edge ``{u, v}`` appears with probability
    ``min(1, w_u w_v / sum(w))`` — expected degrees ~ the weights.

    The standard model for prescribed (e.g. power-law) degree
    sequences; used by the ``power-law`` workload family.
    """
    if len(weights) == 0:
        raise ValueError("need at least one weight")
    weight_arr = np.asarray(weights, dtype=np.float64)
    if np.any(weight_arr < 0):
        raise ValueError("weights must be non-negative")
    total = float(weight_arr.sum())
    if total <= 0:
        raise ValueError("weights must have positive sum")
    rng = generator_rng("chung-lu", seed)
    graph = Graph()
    n = len(weights)
    for v in range(n):
        graph.add_vertex(v)
    _row_blocked_bernoulli(
        n,
        rng,
        lambda u: np.minimum(1.0, weight_arr[u] * weight_arr[u + 1 :] / total),
        graph,
    )
    return graph


def chung_lu_loop(weights: Sequence[float], seed: int = 0) -> Graph:
    """Legacy scalar-loop Chung–Lu — distribution reference for tests."""
    if not weights:
        raise ValueError("need at least one weight")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must have positive sum")
    rng = generator_scalar_rng("chung-lu-loop", seed)
    graph = Graph()
    n = len(weights)
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < min(1.0, weights[u] * weights[v] / total):
                graph.add_edge(u, v)
    return graph


def power_law_graph(
    n: int, exponent: float = 2.5, min_weight: float = 1.0, seed: int = 0
) -> Graph:
    """Chung–Lu graph with Pareto(``exponent``) expected degrees.

    Heavy-tailed degrees are where triangle and four-cycle counts
    concentrate on few hub edges — the adversarial shape for naive
    samplers.
    """
    if exponent <= 1:
        raise ValueError(f"power-law exponent must exceed 1, got {exponent}")
    rng = generator_scalar_rng("power-law.weights", seed)
    weights = [
        min_weight * (1.0 - rng.random()) ** (-1.0 / (exponent - 1.0))
        for _ in range(n)
    ]
    return chung_lu(weights, seed=seed)


def user_item_bipartite(
    users: int,
    items: int,
    interactions_per_user: int,
    popular_items: int = 0,
    popularity_boost: int = 4,
    seed: int = 0,
) -> Graph:
    """A user-item co-engagement bipartite graph.

    Users are ``0..users-1``; items ``users..users+items-1``.  Each
    user interacts with ``interactions_per_user`` distinct items,
    drawn with the first ``popular_items`` items over-weighted by
    ``popularity_boost`` — the skew that creates the large diamonds
    (two hot items shared by many users) Theorem 4.2 is built for.
    Triangle-free by construction.
    """
    if interactions_per_user > items:
        raise ValueError("cannot draw more distinct items than exist")
    rng = generator_scalar_rng("user-item", seed)
    population = list(range(users, users + items))
    weights = [
        popularity_boost if i < popular_items else 1 for i in range(items)
    ]
    graph = Graph()
    for v in range(users + items):
        graph.add_vertex(v)
    for user in range(users):
        chosen: set = set()
        while len(chosen) < interactions_per_user:
            item = rng.choices(population, weights=weights, k=1)[0]
            chosen.add(item)
        for item in chosen:
            graph.add_edge(user, item)
    return graph


def random_bipartite(a: int, b: int, p: float, seed: int = 0) -> Graph:
    """Random bipartite graph (triangle-free by construction).

    Left vertices are ``0..a-1``; right vertices are ``a..a+b-1``.
    Vectorized: one Bernoulli block per left vertex.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = generator_rng("random-bipartite", seed)
    graph = Graph()
    for v in range(a + b):
        graph.add_vertex(v)
    for u in range(a):
        hits = np.nonzero(rng.random(b) < p)[0]
        for v in hits:
            graph.add_edge(u, a + int(v))
    return graph


def random_bipartite_loop(a: int, b: int, p: float, seed: int = 0) -> Graph:
    """Legacy scalar-loop random bipartite — distribution reference."""
    rng = generator_scalar_rng("random-bipartite-loop", seed)
    graph = Graph()
    for v in range(a + b):
        graph.add_vertex(v)
    for u in range(a):
        for v in range(a, a + b):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# deterministic structured graphs
# ----------------------------------------------------------------------
def complete_graph(n: int) -> Graph:
    """K_n: ``C(n, 3)`` triangles and ``3 * C(n, 4)`` four-cycles."""
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b}: no triangles, ``C(a,2) * C(b,2)`` four-cycles."""
    graph = Graph()
    for u in range(a):
        for v in range(a, a + b):
            graph.add_edge(u, v)
    return graph


def cycle_graph(n: int) -> Graph:
    """C_n: one four-cycle when ``n == 4``, none otherwise (n >= 3)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    graph = Graph()
    for v in range(n):
        graph.add_edge(v, (v + 1) % n)
    return graph


def path_graph(n: int) -> Graph:
    """P_n: no cycles at all."""
    graph = Graph()
    graph.add_vertex(0)
    for v in range(1, n):
        graph.add_edge(v - 1, v)
    return graph


def star_graph(n: int) -> Graph:
    """K_{1,n}: center 0, leaves 1..n.  No cycles, maximal wedge count."""
    graph = Graph()
    graph.add_vertex(0)
    for v in range(1, n + 1):
        graph.add_edge(0, v)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows x cols grid: ``(rows-1)*(cols-1)`` four-cycles, 0 triangles."""
    graph = Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def diamond_k2h(h: int, offset: int = 0) -> Graph:
    """The paper's (u, v)-diamond of size ``h``: K_{2,h}.

    Endpoints are ``offset`` and ``offset + 1``; the ``h`` middle
    vertices follow.  Contains exactly ``C(h, 2)`` four-cycles.
    """
    if h < 1:
        raise ValueError("diamond size must be positive")
    graph = Graph()
    u, v = offset, offset + 1
    for i in range(h):
        w = offset + 2 + i
        graph.add_edge(u, w)
        graph.add_edge(v, w)
    return graph


def book_graph(pages: int) -> Graph:
    """Triangle book: one shared edge {0, 1} plus ``pages`` apex vertices.

    The shared edge sits in ``pages`` triangles — the canonical heavy
    edge — while every other edge sits in exactly one.
    """
    graph = Graph()
    graph.add_edge(0, 1)
    for i in range(pages):
        apex = 2 + i
        graph.add_edge(0, apex)
        graph.add_edge(1, apex)
    return graph


def friendship_graph(triangles: int) -> Graph:
    """``triangles`` triangles sharing a single hub vertex 0.

    Contains no four-cycles (any C4 would need two common neighbors for
    some pair, but every non-hub pair shares at most the hub).
    """
    graph = Graph()
    graph.add_vertex(0)
    for i in range(triangles):
        a, b = 1 + 2 * i, 2 + 2 * i
        graph.add_edge(0, a)
        graph.add_edge(0, b)
        graph.add_edge(a, b)
    return graph


# ----------------------------------------------------------------------
# planted-count workloads (the experiment drivers)
# ----------------------------------------------------------------------
def planted_triangles(
    n: int,
    num_triangles: int,
    extra_edges: int = 0,
    seed: int = 0,
    disjoint: bool = True,
) -> Graph:
    """A graph whose triangle count is dominated by planted triangles.

    When ``disjoint`` is true the planted triangles are vertex disjoint
    (``3 * num_triangles <= n`` required) so that, before noise edges,
    the count is exactly ``num_triangles`` and every edge is light.
    ``extra_edges`` random noise edges are added afterwards and may
    create additional triangles; callers use the exact counters for the
    true ``T``.
    """
    rng = generator_scalar_rng("planted-triangles", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    if disjoint:
        if 3 * num_triangles > n:
            raise ValueError(
                f"{num_triangles} disjoint triangles need {3 * num_triangles} "
                f"vertices, graph has {n}"
            )
        vertices = list(range(n))
        rng.shuffle(vertices)
        for i in range(num_triangles):
            a, b, c = vertices[3 * i : 3 * i + 3]
            graph.add_edge(a, b)
            graph.add_edge(b, c)
            graph.add_edge(a, c)
    else:
        for _ in range(num_triangles):
            a, b, c = rng.sample(range(n), 3)
            graph.add_edge(a, b)
            graph.add_edge(b, c)
            graph.add_edge(a, c)
    _add_noise_edges(graph, n, extra_edges, rng)
    return graph


def planted_four_cycles(
    n: int,
    num_cycles: int,
    extra_edges: int = 0,
    seed: int = 0,
) -> Graph:
    """Vertex-disjoint planted four-cycles plus random noise edges.

    Requires ``4 * num_cycles <= n``.  Before noise, the four-cycle
    count is exactly ``num_cycles`` and the triangle count is zero.
    """
    if 4 * num_cycles > n:
        raise ValueError(
            f"{num_cycles} disjoint four-cycles need {4 * num_cycles} vertices"
        )
    rng = generator_scalar_rng("planted-four-cycles", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    vertices = list(range(n))
    rng.shuffle(vertices)
    for i in range(num_cycles):
        a, b, c, d = vertices[4 * i : 4 * i + 4]
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(c, d)
        graph.add_edge(d, a)
    _add_noise_edges(graph, n, extra_edges, rng)
    return graph


def planted_diamonds(
    n: int,
    sizes: Sequence[int],
    extra_edges: int = 0,
    seed: int = 0,
) -> Graph:
    """Vertex-disjoint diamonds (K_{2,h}) of the given ``sizes``.

    The workload for the adjacency-list diamond algorithm (Theorem 4.2):
    before noise the four-cycle count is ``sum_h C(h, 2)`` and diamonds
    of very different sizes coexist, exercising the size-class grouping.
    """
    needed = sum(2 + h for h in sizes)
    if needed > n:
        raise ValueError(f"diamonds need {needed} vertices, graph has {n}")
    rng = generator_scalar_rng("planted-diamonds", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    vertices = list(range(n))
    rng.shuffle(vertices)
    cursor = 0
    for h in sizes:
        if h < 1:
            raise ValueError("diamond sizes must be positive")
        u, v = vertices[cursor], vertices[cursor + 1]
        for i in range(h):
            w = vertices[cursor + 2 + i]
            graph.add_edge(u, w)
            graph.add_edge(v, w)
        cursor += 2 + h
    _add_noise_edges(graph, n, extra_edges, rng)
    return graph


def heavy_edge_graph(
    n: int,
    heavy_triangles: int,
    light_triangles: int,
    seed: int = 0,
) -> Graph:
    """The adversarial workload for Theorem 2.1.

    One book of ``heavy_triangles`` pages (a single edge in many
    triangles) plus ``light_triangles`` disjoint light triangles.  Naive
    prefix samplers mis-estimate because the heavy edge concentrates
    the count; the paper's heavy-edge identification must kick in.
    """
    needed = 2 + heavy_triangles + 3 * light_triangles
    if needed > n:
        raise ValueError(f"workload needs {needed} vertices, graph has {n}")
    rng = generator_scalar_rng("heavy-edge", seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    graph.add_edge(0, 1)
    for i in range(heavy_triangles):
        apex = 2 + i
        graph.add_edge(0, apex)
        graph.add_edge(1, apex)
    base = 2 + heavy_triangles
    for i in range(light_triangles):
        a, b, c = base + 3 * i, base + 3 * i + 1, base + 3 * i + 2
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(a, c)
    return graph


def dense_wedge_graph(n: int, p: float = 0.5, seed: int = 0) -> Graph:
    """A dense G(n, p) graph with ``T = Omega(n^2)`` four-cycles.

    The workload for the large-T one-pass algorithms (Theorems 4.3 and
    5.7); with constant ``p`` the expected C4 count is Theta(n^4).
    """
    return erdos_renyi(n, p, seed=seed)


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union with integer relabeling (blocks stacked in order)."""
    union = Graph()
    offset = 0
    for graph in graphs:
        mapping = {v: offset + i for i, v in enumerate(sorted(graph.vertices(), key=repr))}
        for v in graph.vertices():
            union.add_vertex(mapping[v])
        for u, v in graph.edges():
            union.add_edge(mapping[u], mapping[v])
        offset += graph.num_vertices
    return union


def _add_noise_edges(graph: Graph, n: int, extra_edges: int, rng: random.Random) -> None:
    """Add ``extra_edges`` fresh uniformly random edges to ``graph``."""
    attempts = 0
    added = 0
    limit = 100 * (extra_edges + 1) + 10 * n
    while added < extra_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and graph.add_edge(u, v):
            added += 1
    if added < extra_edges:
        raise RuntimeError(
            f"could not place {extra_edges} noise edges (graph too dense?)"
        )
