"""Core graph type used throughout the library.

The paper works with simple undirected graphs presented as streams of
edges.  This module provides the in-memory representation used by the
generators, the exact counters (ground truth) and the stream sources.

Vertices are hashable objects; the generators produce integer vertices.
Edges are canonicalized to ``(min(u, v), max(u, v))`` tuples so that an
edge has exactly one representation and can be used as a dictionary key.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical representation of the undirected edge ``{u, v}``.

    The canonical form orders the two endpoints, so ``normalize_edge(3, 1)``
    and ``normalize_edge(1, 3)`` both return ``(1, 3)``.

    Raises:
        ValueError: if ``u == v`` (self loops are not part of the model).
    """
    if u == v:
        raise ValueError(f"self loop {u!r}-{v!r} is not a valid edge")
    try:
        ordered = u <= v  # type: ignore[operator]
    except TypeError:
        ordered = repr(u) <= repr(v)
    return (u, v) if ordered else (v, u)


class Graph:
    """A simple undirected graph stored as adjacency sets.

    The class intentionally exposes a small, explicit API: the algorithms
    in :mod:`repro.core` never touch a ``Graph`` directly (they only see
    streams), so this type only needs to support construction, queries
    and iteration for the generators, oracles and tests.
    """

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Vertex, Vertex]]) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges are ignored (the graph is simple); self loops
        raise :class:`ValueError`.
        """
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self, v: Vertex) -> None:
        """Ensure ``v`` exists in the graph (isolated if no edges added)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert the undirected edge ``{u, v}``.

        Returns:
            ``True`` if the edge was new, ``False`` if it already existed.
        """
        if u == v:
            raise ValueError(f"self loop {u!r}-{v!r} is not a valid edge")
        neighbors_u = self._adj.setdefault(u, set())
        self._adj.setdefault(v, set())
        if v in neighbors_u:
            return False
        neighbors_u.add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete the edge ``{u, v}`` if present; return whether it existed."""
        if u in self._adj and v in self._adj[u]:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            self._num_edges -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (isolated vertices included)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._num_edges

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def degree(self, v: Vertex) -> int:
        """Degree of ``v``; vertices not in the graph have degree 0."""
        neighbors = self._adj.get(v)
        return 0 if neighbors is None else len(neighbors)

    def max_degree(self) -> int:
        """The maximum degree Delta, or 0 for the empty graph."""
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj.values())

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """The neighbor set of ``v`` (a live view; do not mutate)."""
        return self._adj.get(v, set())

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate every edge exactly once, in canonical form."""
        for u, neighbors in self._adj.items():
            for v in neighbors:
                edge = normalize_edge(u, v)
                if edge[0] == u:
                    yield edge

    def edge_list(self) -> List[Edge]:
        """All edges as a list (canonical form, deterministic order)."""
        return sorted(self.edges())

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        clone = Graph()
        clone._adj = {v: set(neighbors) for v, neighbors in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def relabeled(self, mapping: Dict[Vertex, Vertex]) -> "Graph":
        """Return a copy with vertices renamed through ``mapping``.

        Vertices absent from ``mapping`` keep their name.  The mapping
        must be injective on the vertex set.
        """
        clone = Graph()
        for v in self._adj:
            clone.add_vertex(mapping.get(v, v))
        for u, v in self.edges():
            clone.add_edge(mapping.get(u, u), mapping.get(v, v))
        if clone.num_vertices != self.num_vertices:
            raise ValueError("relabeling mapping is not injective on vertices")
        return clone

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def to_networkx(self):  # pragma: no cover - convenience for notebooks
        """Convert to a ``networkx.Graph`` (requires networkx installed)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self._adj)
        nx_graph.add_edges_from(self.edges())
        return nx_graph
