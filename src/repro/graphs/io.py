"""Edge-list file I/O.

Real graph datasets ship as whitespace- or comma-separated edge lists
(SNAP, KONECT, ...).  This module reads and writes that format so the
algorithms can run on external data, and so the CLI can round-trip
generated workloads.

Format accepted: one edge per line, two vertex tokens separated by
whitespace, a comma, or a semicolon.  Lines that are empty or start
with ``#`` / ``%`` are skipped.  Vertex tokens that parse as integers
become ints (so generated graphs round-trip); anything else stays a
string.  Duplicate edges and self loops are dropped with a count
returned, matching how streaming papers preprocess such data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Tuple, Union

from .graph import Graph, Vertex

_SEPARATORS = re.compile(r"[,;\s]+")
_COMMENT_PREFIXES = ("#", "%")

PathLike = Union[str, Path]


@dataclass
class LoadReport:
    """What happened while reading an edge list."""

    edges_kept: int
    duplicates_dropped: int
    self_loops_dropped: int
    lines_skipped: int


def _parse_vertex(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def iter_edge_list(path: PathLike) -> Iterator[Tuple[Vertex, Vertex]]:
    """Stream raw edges from a file, one pass, O(1) memory.

    Yields edges as parsed (unnormalized, duplicates included) — the
    building block for :class:`FileEdgeStream`, which applies the
    model's semantics on top.

    Raises:
        ValueError: on a non-comment line that does not contain at
            least two tokens.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            tokens = _SEPARATORS.split(stripped)
            if len(tokens) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected two vertex tokens, got {stripped!r}"
                )
            yield _parse_vertex(tokens[0]), _parse_vertex(tokens[1])


def read_edge_list(path: PathLike) -> Tuple[Graph, LoadReport]:
    """Load an edge-list file into a :class:`Graph` with a report."""
    graph = Graph()
    duplicates = 0
    self_loops = 0
    kept = 0
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                skipped += 1
                continue
            tokens = _SEPARATORS.split(stripped)
            if len(tokens) < 2:
                raise ValueError(f"{path}: malformed line {stripped!r}")
            u, v = _parse_vertex(tokens[0]), _parse_vertex(tokens[1])
            if u == v:
                self_loops += 1
                continue
            if graph.add_edge(u, v):
                kept += 1
            else:
                duplicates += 1
    report = LoadReport(
        edges_kept=kept,
        duplicates_dropped=duplicates,
        self_loops_dropped=self_loops,
        lines_skipped=skipped,
    )
    return graph, report


def write_edge_list(graph: Graph, path: PathLike, header: str = "") -> int:
    """Write a graph as a whitespace-separated edge list.

    Returns the number of edges written.  Edges are written in
    canonical sorted order so output is deterministic.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in graph.edge_list():
            handle.write(f"{u} {v}\n")
            count += 1
    return count
