"""Structural analysis: heavy edges, bad-edge spectra, Lemma 5.1.

The paper's Section 5 revolves around *bad* edges — edges lying in at
least ``eta * sqrt(T)`` four-cycles — and Lemma 5.1's claim that at
least ``T (1 - 82/eta)`` cycles contain at most one of them.  These
helpers compute the relevant quantities exactly, for experiment E12,
for workload design (how adversarial is this graph?), and for anyone
studying the heaviness structure of their own data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Set

from .exact import (
    four_cycle_count,
    four_cycles,
    per_edge_four_cycle_counts,
    per_edge_triangle_counts,
)
from .graph import Edge, Graph, normalize_edge


def heavy_triangle_edges(graph: Graph, threshold: float) -> Set[Edge]:
    """Edges contained in at least ``threshold`` triangles."""
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    return {
        edge
        for edge, count in per_edge_triangle_counts(graph).items()
        if count >= threshold
    }


def bad_four_cycle_edges(graph: Graph, eta: float) -> Set[Edge]:
    """The paper's bad edges: in at least ``eta * sqrt(T)`` four-cycles.

    ``T`` is the graph's exact four-cycle count; a four-cycle-free
    graph has no bad edges by definition.
    """
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    total = four_cycle_count(graph)
    if total == 0:
        return set()
    threshold = eta * math.sqrt(total)
    return {
        edge
        for edge, count in per_edge_four_cycle_counts(graph).items()
        if count >= threshold
    }


def cycles_by_bad_edge_count(graph: Graph, eta: float) -> Dict[int, int]:
    """Histogram: number of bad edges (0..4) -> number of four-cycles.

    The exact version of the paper's ``T_0, T_1, T_2, T_3, T_4``
    decomposition (Lemma 5.1's proof objects).
    """
    bad = bad_four_cycle_edges(graph, eta)
    histogram: Dict[int, int] = {i: 0 for i in range(5)}
    for a, b, c, d in four_cycles(graph):
        edges = (
            normalize_edge(a, b),
            normalize_edge(b, c),
            normalize_edge(c, d),
            normalize_edge(d, a),
        )
        histogram[sum(1 for e in edges if e in bad)] += 1
    return histogram


@dataclass
class Lemma51Report:
    """Exact check of Lemma 5.1 for one (graph, eta)."""

    eta: float
    total_cycles: int
    cycles_with_at_most_one_bad: int
    bad_edges: int
    bound: float

    @property
    def holds(self) -> bool:
        return self.cycles_with_at_most_one_bad >= self.bound

    @property
    def slack(self) -> float:
        """How far above the bound the graph sits (cycles)."""
        return self.cycles_with_at_most_one_bad - self.bound


def check_lemma51(graph: Graph, eta: float) -> Lemma51Report:
    """Evaluate Lemma 5.1 exactly: ``good >= T (1 - 82/eta)``."""
    histogram = cycles_by_bad_edge_count(graph, eta)
    total = sum(histogram.values())
    good = histogram[0] + histogram[1]
    bound = max(0.0, total * (1.0 - 82.0 / eta))
    return Lemma51Report(
        eta=eta,
        total_cycles=total,
        cycles_with_at_most_one_bad=good,
        bad_edges=len(bad_four_cycle_edges(graph, eta)),
        bound=bound,
    )


def wedge_histogram(graph: Graph) -> Dict[int, int]:
    """Histogram of the wedge vector: x value -> number of pairs.

    The shape of this histogram decides which Section 4 algorithm
    fits: a heavy tail (big diamonds) favors Theorem 4.2's grouping;
    a flat bulk with ``F2 ~ 4T`` is Theorem 4.3 territory.
    """
    from .exact import wedge_counts

    histogram: Dict[int, int] = {}
    for value in wedge_counts(graph).values():
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def heaviness_summary(graph: Graph) -> Dict[str, float]:
    """A compact adversariality profile used by workload design."""
    triangle_counts = per_edge_triangle_counts(graph)
    cycle_counts = per_edge_four_cycle_counts(graph)
    t3_total = sum(triangle_counts.values()) // 3
    t4_total = sum(cycle_counts.values()) // 4
    return {
        "triangles": t3_total,
        "four_cycles": t4_total,
        "max_edge_triangles": max(triangle_counts.values(), default=0),
        "max_edge_four_cycles": max(cycle_counts.values(), default=0),
        "triangle_concentration": (
            max(triangle_counts.values(), default=0) / t3_total if t3_total else 0.0
        ),
        "four_cycle_concentration": (
            max(cycle_counts.values(), default=0) / t4_total if t4_total else 0.0
        ),
    }
