"""Lower-bound constructions and communication reductions."""

from .communication import DisjointnessInstance, IndexInstance
from .index_reduction import (
    IndexProtocolOutcome,
    IndexReductionInstance,
    ReductionFailure,
    build_index_reduction,
    run_index_protocol,
)
from .figure1 import (
    Figure1Construction,
    RandomPartitionOutcome,
    build_figure1,
    prefix_reveals_special_pair,
    run_random_partition_protocol,
)
from .two_stars import (
    TwoStarConstruction,
    build_two_stars,
    solve_disjointness_with_distinguisher,
)

__all__ = [
    "IndexInstance",
    "DisjointnessInstance",
    "Figure1Construction",
    "RandomPartitionOutcome",
    "build_figure1",
    "IndexReductionInstance",
    "IndexProtocolOutcome",
    "ReductionFailure",
    "build_index_reduction",
    "run_index_protocol",
    "run_random_partition_protocol",
    "prefix_reveals_special_pair",
    "TwoStarConstruction",
    "build_two_stars",
    "solve_disjointness_with_distinguisher",
]
