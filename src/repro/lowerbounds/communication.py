"""Communication-complexity problem instances.

The paper's two lower bounds reduce from one-way INDEX (Theorem 2.7,
random-partition setting) and multi-round DISJOINTNESS (Theorem 5.8).
These classes generate random instances and check protocol answers;
the reductions in :mod:`repro.lowerbounds.figure1` and
:mod:`repro.lowerbounds.two_stars` embed them into graph streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class IndexInstance:
    """One-way INDEX: Alice holds ``bits``, Bob holds ``index``.

    Bob must output ``bits[index]``.  Randomized one-way communication
    complexity is Omega(len(bits)) for success probability 4/5.
    """

    bits: List[int]
    index: int

    @property
    def answer(self) -> int:
        return self.bits[self.index]

    @classmethod
    def random(cls, length: int, seed: int = 0) -> "IndexInstance":
        rng = random.Random(f"index-{seed}")
        bits = [rng.randrange(2) for _ in range(length)]
        return cls(bits=bits, index=rng.randrange(length))


@dataclass(frozen=True)
class DisjointnessInstance:
    """Set disjointness: strings ``s1`` (Alice) and ``s2`` (Bob).

    Output 1 iff some position has ``s1[x] == s2[x] == 1``.  Randomized
    communication complexity is Omega(len) in any number of rounds
    (Kalyanasundaram–Schnitger / Razborov).
    """

    s1: List[int]
    s2: List[int]

    def __post_init__(self) -> None:
        if len(self.s1) != len(self.s2):
            raise ValueError("DISJ strings must have equal length")

    @property
    def answer(self) -> int:
        return int(any(a and b for a, b in zip(self.s1, self.s2)))

    @property
    def intersection_indices(self) -> List[int]:
        return [x for x, (a, b) in enumerate(zip(self.s1, self.s2)) if a and b]

    @classmethod
    def random(cls, length: int, seed: int = 0) -> "DisjointnessInstance":
        """A uniformly random instance (answer distribution unconstrained)."""
        rng = random.Random(f"disj-{seed}")
        return cls(
            s1=[rng.randrange(2) for _ in range(length)],
            s2=[rng.randrange(2) for _ in range(length)],
        )

    @classmethod
    def random_with_answer(
        cls, length: int, answer: int, seed: int = 0, density: float = 0.3
    ) -> "DisjointnessInstance":
        """A random instance conditioned on the answer.

        For ``answer == 0`` the supports are drawn disjoint; for
        ``answer == 1`` exactly one intersection position is planted
        (the hardest promise version).
        """
        rng = random.Random(f"disj-promise-{seed}-{answer}")
        s1 = [0] * length
        s2 = [0] * length
        for x in range(length):
            roll = rng.random()
            if roll < density:
                s1[x] = 1
            elif roll < 2 * density:
                s2[x] = 1
        if answer:
            x = rng.randrange(length)
            s1[x] = 1
            s2[x] = 1
        instance = cls(s1=s1, s2=s2)
        if instance.answer != answer:
            raise AssertionError("instance construction failed to hit the answer")
        return instance
