"""The Figure 1 / Theorem 2.6 lower-bound construction.

A tri-partite graph on ``(U, V, W)`` with ``|U| = |V| = n`` and
``|W| = 2 n T``:

* ``E_x``: edge ``(u_i, v_j)`` iff the hidden matrix bit ``x[i][j]`` is 1;
* every vertex of ``U | V`` gets ``T`` random neighbors in ``W``, all
  neighborhoods pairwise disjoint — except ``u_{i*}`` and ``v_{j*}``,
  which share the *same* ``T`` neighbors.

The graph then has exactly ``T`` triangles if ``x[i*][j*] == 1`` and is
triangle-free otherwise, yet a short random-order prefix carries no
information about which pair ``(i*, j*)`` is special — the property
that drives the Omega(m / sqrt(T)) random-order bound.

This module builds the construction, verifies its combinatorics, and
simulates the Theorem 2.7 random-partition protocol with an arbitrary
streaming algorithm standing in for the one-way message.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..graphs.graph import Graph


@dataclass
class Figure1Construction:
    """A fully materialized instance of the Figure 1 graph."""

    n: int
    t: int
    x: List[List[int]]
    i_star: int
    j_star: int
    graph: Graph = field(repr=False)
    uv_edges: List[Tuple[str, str]] = field(repr=False)
    star_edges: List[Tuple[str, str]] = field(repr=False)

    @property
    def planted_bit(self) -> int:
        return self.x[self.i_star][self.j_star]

    @property
    def expected_triangles(self) -> int:
        return self.t if self.planted_bit else 0

    def all_edges(self) -> List[Tuple[str, str]]:
        return self.uv_edges + self.star_edges


def u_name(i: int) -> str:
    return f"u{i}"


def v_name(j: int) -> str:
    return f"v{j}"


def w_name(k: int) -> str:
    return f"w{k}"


def build_figure1(
    n: int,
    t: int,
    seed: int = 0,
    x: Sequence[Sequence[int]] = None,
    i_star: int = None,
    j_star: int = None,
) -> Figure1Construction:
    """Build the construction (random ``x, i*, j*`` unless supplied).

    Args:
        n: side length of the hidden matrix (|U| = |V| = n).
        t: the triangle count ``T`` planted when the hidden bit is 1.
        seed: drives the random matrix, the special pair and the random
            W-neighborhood assignment.
    """
    if n < 1 or t < 1:
        raise ValueError("need n >= 1 and t >= 1")
    rng = random.Random(f"figure1-{seed}")
    if x is None:
        x = [[rng.randrange(2) for _ in range(n)] for _ in range(n)]
    else:
        x = [list(row) for row in x]
    if i_star is None:
        i_star = rng.randrange(n)
    if j_star is None:
        j_star = rng.randrange(n)

    graph = Graph()
    uv_edges: List[Tuple[str, str]] = []
    for i in range(n):
        for j in range(n):
            if x[i][j]:
                edge = (u_name(i), v_name(j))
                graph.add_edge(*edge)
                uv_edges.append(edge)

    # W: 2nT vertices; hand out disjoint T-blocks, one per U|V vertex,
    # except v_{j*} reuses u_{i*}'s block.
    w_ids = list(range(2 * n * t))
    rng.shuffle(w_ids)
    star_edges: List[Tuple[str, str]] = []
    cursor = 0
    blocks: Dict[str, List[int]] = {}
    for i in range(n):
        blocks[u_name(i)] = w_ids[cursor : cursor + t]
        cursor += t
    for j in range(n):
        if j == j_star:
            blocks[v_name(j)] = blocks[u_name(i_star)]
        else:
            blocks[v_name(j)] = w_ids[cursor : cursor + t]
            cursor += t
    for name, block in blocks.items():
        for k in block:
            edge = (name, w_name(k))
            graph.add_edge(*edge)
            star_edges.append(edge)

    return Figure1Construction(
        n=n,
        t=t,
        x=x,
        i_star=i_star,
        j_star=j_star,
        graph=graph,
        uv_edges=uv_edges,
        star_edges=star_edges,
    )


@dataclass
class RandomPartitionOutcome:
    """Result of one simulated Theorem 2.7 protocol run."""

    decided_positive: bool
    truth_positive: bool
    communication_items: int
    alice_tokens: int
    bob_tokens: int

    @property
    def correct(self) -> bool:
        return self.decided_positive == self.truth_positive


def run_random_partition_protocol(
    construction: Figure1Construction,
    algorithm_factory,
    alice_probability: float,
    seed: int = 0,
    decision_threshold: float = None,
) -> RandomPartitionOutcome:
    """Simulate the random-partition one-way protocol of Theorem 2.7.

    Every edge token is revealed to Alice independently with probability
    ``alice_probability`` (the paper's ``p = c / sqrt(T)``), the rest to
    Bob.  Alice streams her tokens (in random order) into the algorithm,
    "sends" its state — we charge its peak space as the communication —
    and Bob streams his tokens into the same algorithm object, then
    thresholds the estimate to decide 0 vs T triangles.

    Args:
        algorithm_factory: ``() -> algorithm`` with a ``run(stream)``
            API; the combined Alice+Bob token order forms one stream.
        decision_threshold: estimate threshold for the positive answer
            (default ``t / 2``).
    """
    from ..streams.models import ArbitraryOrderStream

    rng = random.Random(f"partition-{seed}")
    alice: List[Tuple[str, str]] = []
    bob: List[Tuple[str, str]] = []
    for edge in construction.all_edges():
        (alice if rng.random() < alice_probability else bob).append(edge)
    rng.shuffle(alice)
    rng.shuffle(bob)

    stream = ArbitraryOrderStream(alice + bob)
    algorithm = algorithm_factory()
    result = algorithm.run(stream)
    threshold = construction.t / 2.0 if decision_threshold is None else decision_threshold
    return RandomPartitionOutcome(
        decided_positive=result.estimate >= threshold,
        truth_positive=bool(construction.planted_bit),
        communication_items=result.space_items,
        alice_tokens=len(alice),
        bob_tokens=len(bob),
    )


def prefix_reveals_special_pair(
    construction: Figure1Construction, prefix_fraction: float, seed: int = 0
) -> bool:
    """Does a random prefix already expose the special pair?

    The lower bound's engine is that a random prefix of length
    ``~ m / sqrt(T)`` almost never contains two star edges to the same
    W vertex — the only witness that identifies ``(i*, j*)``.  Returns
    True iff the prefix contains a W vertex of degree 2.
    """
    rng = random.Random(f"prefix-{seed}")
    edges = list(construction.all_edges())
    rng.shuffle(edges)
    take = int(len(edges) * prefix_fraction)
    seen_w: Set[str] = set()
    for a, b in edges[:take]:
        w = b if b.startswith("w") else (a if a.startswith("w") else None)
        if w is None:
            continue
        if w in seen_w:
            return True
        seen_w.add(w)
    return False
