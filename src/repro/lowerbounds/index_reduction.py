"""The Theorem 2.7 INDEX reduction, implemented step by step.

:mod:`repro.lowerbounds.figure1` simulates the *random-partition*
protocol abstractly (split a pre-built graph's tokens at random).
This module instead executes the reduction from the paper verbatim:
given an INDEX instance — Alice holds a random string ``z``, Bob an
index ``k`` — the players use shared randomness to *jointly construct*
a Figure-1 graph whose triangle count encodes ``z[k]``:

1. Public randomness fixes which matrix positions are "Alice's"
   (exactly ``|z|`` of them), an ordering of those positions, the
   special pair ``(i*, j*) = position(k)``, and per-vertex
   ``b_r ~ Bin(T, p)`` star-degree splits.
2. Alice populates her matrix positions with the bits of ``z`` and
   attaches ``b_r`` fresh W-neighbors to every hub vertex ``r`` (all
   W degrees at most 1 on her side).
3. Bob fills the remaining matrix positions with his own random bits,
   tops every non-special hub up to ``T`` W-neighbors, and makes the
   special pair's neighborhoods identical: each adopts the other's
   Alice-side neighbors, plus ``T - b_{u*} - b_{v*}`` fresh *shared*
   vertices (the construction fails when that is negative — the
   ``T p^2`` variational-distance event in the paper's proof).

The resulting graph has exactly ``T`` triangles iff ``z[k] = 1``.  A
streaming algorithm run over Alice's tokens (random order), handed
over (its state is the one-way message; we charge its space), and
finished on Bob's tokens therefore solves INDEX — which costs
``Omega(n^2 p)`` communication, giving the ``Omega(m / sqrt(T))``
random-order lower bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graphs.graph import Graph
from .communication import IndexInstance
from .figure1 import u_name, v_name, w_name


class ReductionFailure(Exception):
    """The ``T - b_u* - b_v* < 0`` failure event (probability ~ T p^2)."""


@dataclass
class IndexReductionInstance:
    """The jointly constructed graph, split by who contributed what."""

    n: int
    t: int
    p: float
    index_instance: IndexInstance
    i_star: int
    j_star: int
    alice_edges: List[Tuple[str, str]] = field(repr=False)
    bob_edges: List[Tuple[str, str]] = field(repr=False)

    @property
    def hidden_bit(self) -> int:
        return self.index_instance.answer

    @property
    def expected_triangles(self) -> int:
        return self.t if self.hidden_bit else 0

    def graph(self) -> Graph:
        return Graph.from_edges(self.alice_edges + self.bob_edges)


def build_index_reduction(
    instance: IndexInstance,
    n: int,
    t: int,
    p: float,
    seed: int = 0,
) -> IndexReductionInstance:
    """Execute the joint construction for one INDEX instance.

    Args:
        instance: Alice's bits and Bob's index.  ``len(instance.bits)``
            positions of the n x n matrix are designated Alice's; it
            must not exceed ``n**2``.
        n: matrix side (|U| = |V| = n).
        t: the triangle count ``T`` encoded by the hidden bit.
        p: the nominal Alice-share probability (used only for the
            ``b_r ~ Bin(T, p)`` splits; the matrix split is exact by
            conditioning, as in the paper's event ``C``).
        seed: the players' public randomness.

    Raises:
        ReductionFailure: on the ``T - b_u* - b_v* < 0`` event.
        ValueError: on impossible parameters.
    """
    length = len(instance.bits)
    if length > n * n:
        raise ValueError(f"{length} Alice positions do not fit an {n}x{n} matrix")
    if not 0 < p < 1:
        raise ValueError(f"p must be in (0, 1), got {p}")
    rng = random.Random(f"index-reduction-{seed}")

    # public randomness: Alice's positions, their ordering, the pair
    positions = [(i, j) for i in range(n) for j in range(n)]
    rng.shuffle(positions)
    alice_positions = positions[:length]
    bob_positions = positions[length:]
    i_star, j_star = alice_positions[instance.index]

    # public randomness: the Bin(T, p) star-degree splits
    hubs = [u_name(i) for i in range(n)] + [v_name(j) for j in range(n)]
    b_split: Dict[str, int] = {
        r: sum(1 for _ in range(t) if rng.random() < p) for r in hubs
    }
    special_u, special_v = u_name(i_star), v_name(j_star)
    if t - b_split[special_u] - b_split[special_v] < 0:
        raise ReductionFailure(
            "shared-neighborhood budget negative "
            f"(b_u*={b_split[special_u]}, b_v*={b_split[special_v]}, T={t})"
        )

    # W pool: 2 n T vertices, handed out without reuse
    w_pool = list(range(2 * n * t))
    rng.shuffle(w_pool)
    cursor = 0

    def take(count: int) -> List[int]:
        nonlocal cursor
        if cursor + count > len(w_pool):
            raise ValueError("W pool exhausted; increase its size")
        block = w_pool[cursor : cursor + count]
        cursor += count
        return block

    alice_edges: List[Tuple[str, str]] = []
    bob_edges: List[Tuple[str, str]] = []

    # Alice: her matrix bits are z; her star edges are the b_r blocks
    for position, bit in zip(alice_positions, instance.bits):
        if bit:
            alice_edges.append((u_name(position[0]), v_name(position[1])))
    alice_neighbors: Dict[str, List[int]] = {}
    for r in hubs:
        alice_neighbors[r] = take(b_split[r])
        alice_edges.extend((r, w_name(k)) for k in alice_neighbors[r])

    # Bob: iid bits on his matrix positions
    for position in bob_positions:
        if rng.random() < 0.5:
            bob_edges.append((u_name(position[0]), v_name(position[1])))
    # Bob: top up the non-special hubs to exactly T
    for r in hubs:
        if r in (special_u, special_v):
            continue
        bob_edges.extend((r, w_name(k)) for k in take(t - b_split[r]))
    # Bob: identify the special pair's neighborhoods
    bob_edges.extend((special_u, w_name(k)) for k in alice_neighbors[special_v])
    bob_edges.extend((special_v, w_name(k)) for k in alice_neighbors[special_u])
    shared = take(t - b_split[special_u] - b_split[special_v])
    for k in shared:
        bob_edges.append((special_u, w_name(k)))
        bob_edges.append((special_v, w_name(k)))

    return IndexReductionInstance(
        n=n,
        t=t,
        p=p,
        index_instance=instance,
        i_star=i_star,
        j_star=j_star,
        alice_edges=alice_edges,
        bob_edges=bob_edges,
    )


@dataclass
class IndexProtocolOutcome:
    """One run of the one-way protocol built from a streaming algorithm."""

    answered: int
    truth: int
    communication_items: int

    @property
    def correct(self) -> bool:
        return self.answered == self.truth


def run_index_protocol(
    reduction: IndexReductionInstance,
    algorithm_factory,
    seed: int = 0,
    decision_threshold: Optional[float] = None,
) -> IndexProtocolOutcome:
    """Alice streams her tokens, sends the algorithm state, Bob
    finishes and thresholds the estimate to answer INDEX."""
    from ..streams.models import ArbitraryOrderStream

    rng = random.Random(f"index-protocol-{seed}")
    alice = list(reduction.alice_edges)
    bob = list(reduction.bob_edges)
    rng.shuffle(alice)
    rng.shuffle(bob)
    stream = ArbitraryOrderStream(alice + bob)
    algorithm = algorithm_factory()
    result = algorithm.run(stream)
    threshold = (
        reduction.t / 2.0 if decision_threshold is None else decision_threshold
    )
    return IndexProtocolOutcome(
        answered=int(result.estimate >= threshold),
        truth=reduction.hidden_bit,
        communication_items=result.space_items,
    )
