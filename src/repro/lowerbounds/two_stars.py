"""The Section 5.4 / Theorem 5.8 lower-bound construction.

DISJOINTNESS embeds into four-cycle counting as two overlapping stars:
special vertices ``u`` (Alice's hub) and ``w`` (Bob's hub) plus groups
``V_1, ..., V_r`` of ``k`` vertices each.  For every 1-bit of her
string, Alice connects ``u`` to all of group ``V_i``; Bob likewise
connects ``w``.  If the strings are disjoint the graph is two
edge-disjoint stars — zero four-cycles; if they intersect anywhere,
every doubly-connected vertex pairs with every other to close a cycle
through ``u`` and ``w``, giving at least ``C(k, 2) = Theta(k^2)``
cycles.  Since the graph has ``Theta(n)`` edges, any algorithm
distinguishing 0 from ``T = Theta(k^2)`` four-cycles solves DISJ and
needs ``Omega(n / k) = Omega(m / sqrt(T))`` space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..graphs.graph import Graph
from .communication import DisjointnessInstance

HUB_ALICE = "u"
HUB_BOB = "w"


def group_vertex(group: int, offset: int) -> str:
    return f"g{group}_{offset}"


@dataclass
class TwoStarConstruction:
    """A materialized Theorem 5.8 instance."""

    instance: DisjointnessInstance
    k: int
    graph: Graph = field(repr=False)
    alice_edges: List[Tuple[str, str]] = field(repr=False)
    bob_edges: List[Tuple[str, str]] = field(repr=False)

    @property
    def expected_four_cycles(self) -> int:
        """Exactly ``C(k * q, 2)`` for ``q`` intersecting positions."""
        doubly_connected = self.k * len(self.instance.intersection_indices)
        return doubly_connected * (doubly_connected - 1) // 2

    @property
    def planted_answer(self) -> int:
        return self.instance.answer

    def all_edges(self) -> List[Tuple[str, str]]:
        return self.alice_edges + self.bob_edges

    def stream_edges(self, seed: int = 0) -> List[Tuple[str, str]]:
        """Alice's edges then Bob's (each shuffled) — the natural
        communication-protocol arrival order."""
        rng = random.Random(f"twostar-order-{seed}")
        alice = list(self.alice_edges)
        bob = list(self.bob_edges)
        rng.shuffle(alice)
        rng.shuffle(bob)
        return alice + bob


def build_two_stars(instance: DisjointnessInstance, k: int) -> TwoStarConstruction:
    """Embed a DISJ instance into the two-star graph with group size ``k``."""
    if k < 2:
        raise ValueError(f"group size k must be >= 2 for any four-cycle, got {k}")
    graph = Graph()
    graph.add_vertex(HUB_ALICE)
    graph.add_vertex(HUB_BOB)
    alice_edges: List[Tuple[str, str]] = []
    bob_edges: List[Tuple[str, str]] = []
    for group, (bit_a, bit_b) in enumerate(zip(instance.s1, instance.s2)):
        for offset in range(k):
            vertex = group_vertex(group, offset)
            graph.add_vertex(vertex)
            if bit_a:
                edge = (HUB_ALICE, vertex)
                graph.add_edge(*edge)
                alice_edges.append(edge)
            if bit_b:
                edge = (HUB_BOB, vertex)
                graph.add_edge(*edge)
                bob_edges.append(edge)
    return TwoStarConstruction(
        instance=instance,
        k=k,
        graph=graph,
        alice_edges=alice_edges,
        bob_edges=bob_edges,
    )


def solve_disjointness_with_distinguisher(
    instance: DisjointnessInstance,
    k: int,
    distinguisher_factory,
    seed: int = 0,
) -> Tuple[int, int]:
    """Run the Theorem 5.8 reduction end to end.

    Builds the two-star graph, streams it through a 0-vs-T four-cycle
    distinguisher (``T = C(k, 2)``), and returns ``(protocol_answer,
    space_items)``.  A correct distinguisher yields a correct DISJ
    protocol, which is the content of the lower bound.
    """
    from ..streams.models import ArbitraryOrderStream

    construction = build_two_stars(instance, k)
    stream = ArbitraryOrderStream(construction.stream_edges(seed=seed))
    t_promise = k * (k - 1) // 2
    algorithm = distinguisher_factory(t_promise)
    result = algorithm.run(stream)
    return int(result.estimate > 0), result.space_items
