"""repro.obs — zero-dependency observability for the trial engine.

Three pieces:

* :mod:`repro.obs.trace` — hierarchical spans (experiment → sweep point
  → trial → pass → phase) with wall/CPU timings, emitted as JSON lines;
* :mod:`repro.obs.metrics` — a registry of counters / gauges /
  histograms that algorithms update through lightweight handles;
* :mod:`repro.obs.manifest` — run manifests (seeds, git SHA, config,
  environment, bench baselines) so every trace is self-describing.

:mod:`repro.obs.session` ties them together: ``obs.session(path=...)``
activates telemetry for a block and writes the trace on exit, while
``obs.current()`` hands instrumented code either the live session or
free no-op singletons.  ``repro obs report`` (see
:mod:`repro.obs.report`, imported lazily by the CLI) renders a trace
file into per-phase tables.
"""

from .manifest import RunManifest, bench_baselines, collect_manifest, git_sha
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .session import (
    NULL,
    Telemetry,
    TrialTelemetry,
    capture,
    current,
    session,
)
from .trace import NULL_TRACER, NullTracer, SpanHandle, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "NullTracer",
    "NULL_TRACER",
    "SpanHandle",
    "Tracer",
    "RunManifest",
    "bench_baselines",
    "collect_manifest",
    "git_sha",
    "NULL",
    "Telemetry",
    "TrialTelemetry",
    "capture",
    "current",
    "session",
]
