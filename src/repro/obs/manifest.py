"""Run manifests: everything needed to reproduce (or audit) a run.

A :class:`RunManifest` snapshots the execution context once per
telemetry session — git SHA, Python/numpy/platform versions, argv, the
caller-supplied config (seeds, workload parameters, CLI flags) and the
repo's recorded bench baselines — and then accumulates one *invocation*
record per ``run_trials`` / suite / sweep call made inside the session.

The manifest is the first record of every trace file, so a trace is
self-describing: ``repro obs report`` prints its summary and the CI
artifact carries provenance without any side channel.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional


def _find_upwards(filename: str) -> Optional[Path]:
    """Look for ``filename`` from this file and the CWD up to root."""
    starts = [Path(__file__).resolve().parent, Path.cwd()]
    for start in starts:
        for candidate_dir in (start, *start.parents):
            candidate = candidate_dir / filename
            if candidate.exists():
                return candidate
    return None


def git_sha() -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    git_dir = _find_upwards(".git")
    if git_dir is None:
        return "unknown"
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=git_dir.parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip()


def bench_baselines() -> Dict[str, Any]:
    """The repo's recorded perf baselines (``BENCH_engine.json``), if any."""
    path = _find_upwards("BENCH_engine.json")
    if path is None:
        return {}
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return {}


@dataclass
class RunManifest:
    """Provenance for one telemetry session."""

    created_utc: str
    git_sha: str
    python: str
    platform: str
    numpy: str
    cpu_count: int
    argv: List[str]
    config: Dict[str, Any] = field(default_factory=dict)
    bench_baselines: Dict[str, Any] = field(default_factory=dict)
    invocations: List[Dict[str, Any]] = field(default_factory=list)

    def record_invocation(self, name: str, payload: Dict[str, Any]) -> None:
        """Append one ``run_trials``/suite/CLI invocation's config."""
        self.invocations.append({"invocation": name, **payload})

    def as_record(self) -> Dict[str, Any]:
        """The JSON-lines record (``type: manifest``)."""
        return {
            "type": "manifest",
            "created_utc": self.created_utc,
            "git_sha": self.git_sha,
            "python": self.python,
            "platform": self.platform,
            "numpy": self.numpy,
            "cpu_count": self.cpu_count,
            "argv": self.argv,
            "config": self.config,
            "bench_baselines": self.bench_baselines,
            "invocations": self.invocations,
        }


def collect_manifest(config: Optional[Dict[str, Any]] = None) -> RunManifest:
    """Build a manifest for the current process and configuration."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return RunManifest(
        created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_sha=git_sha(),
        python=sys.version.split()[0],
        platform=platform.platform(),
        numpy=numpy_version,
        cpu_count=os.cpu_count() or 1,
        argv=list(sys.argv),
        config=dict(config or {}),
        bench_baselines=bench_baselines(),
    )
