"""Counters, gauges and histograms for streaming-algorithm telemetry.

A :class:`MetricsRegistry` is a flat, name-keyed collection of three
instrument kinds:

* **counter** — a monotonically increasing integer (edges consumed,
  reservoir evictions, heavy-hitter promotions, oracle calls, ...);
* **gauge** — a last-write-wins scalar (sketch bucket saturation,
  sampling probabilities, ...);
* **histogram** — a mergeable summary (count / sum / min / max) of a
  sequence of observations (per-trial space, bucket sizes, ...).

Design constraints, in order:

1. **Telemetry off must be free.**  Algorithms obtain instruments
   through the active :mod:`repro.obs.session`; when no session is
   active they receive the no-op singletons below, and every batch
   emission site is additionally guarded by ``tel.enabled`` so the hot
   path pays at most a handful of attribute reads per ``run()``.
2. **Deterministic aggregation.**  A registry never stores wall-clock
   or other nondeterministic values (those belong to spans), and
   :meth:`MetricsRegistry.merge` folds per-trial snapshots in the
   caller's (trial-index) order, so serial and parallel runs of the
   same seed schedule aggregate to bit-identical contents.
3. **Picklable snapshots.**  :meth:`MetricsRegistry.snapshot` returns
   plain sorted dicts that cross process boundaries and serialize to
   JSON lines unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A mergeable count / sum / min / max summary of observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
        }


class MetricsRegistry:
    """A name-keyed collection of counters, gauges and histograms.

    Instruments are created on first access; names are free-form but
    the convention is dotted lowercase with the owning subsystem as the
    prefix (``stream.passes``, ``mv-triangle-random-order.size_S``,
    ``sketch.reservoir.evictions``).  See docs/observability.md for the
    registry of names the built-in instrumentation emits.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # -- convenience ----------------------------------------------------
    def inc(self, name: str, amount: Number = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """A plain, sorted, picklable view of the registry contents."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: Dict[str, Dict[str, Number]]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, gauges take the incoming value (last write wins in
        merge order), histograms combine their summaries.  Callers must
        merge per-trial snapshots in trial-index order so that serial
        and parallel runs aggregate identically.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            count = summary.get("count", 0)
            if not count:
                continue
            histogram.count += count
            histogram.total += summary.get("sum", 0.0)
            for key, better in (("min", min), ("max", max)):
                incoming = summary.get(key)
                current = getattr(histogram, key)
                setattr(
                    histogram,
                    key,
                    incoming if current is None else better(current, incoming),
                )


class _NullInstrument:
    """Absorbs every instrument call; shared by all no-op handles."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def as_dict(self) -> Dict[str, Number]:
        return {}


class NullMetrics:
    """The disabled-telemetry registry: every method is a no-op."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def inc(self, name: str, amount: Number = 1) -> None:
        pass

    def set_gauge(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: Dict[str, Dict[str, Number]]) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()
NULL_METRICS = NullMetrics()
