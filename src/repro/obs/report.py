"""Render a trace file (``repro obs report``) as plain-text tables.

The report has three sections:

1. **Manifest summary** — who/where/when the trace was produced;
2. **Phase table** — span records grouped by their path with per-trial
   indices collapsed (``.../trial[3]/pass1`` → ``.../trial[*]/pass1``),
   showing count, wall/CPU time and peak space;
3. **Budget check** — every ``type: run`` record's per-trial relative
   errors against the theorem's epsilon (or an explicit override),
   flagging trials whose error or space exceeded budget.

Kept out of :mod:`repro.obs`'s eager imports: it pulls in
:mod:`repro.experiments.reporting`, and ``repro.experiments`` itself
imports :mod:`repro.obs` — the CLI imports this module lazily instead.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_table, print_experiment

_INDEXED = re.compile(r"\[\d+\]")

_MANIFEST_FIELDS = (
    "created_utc",
    "git_sha",
    "python",
    "numpy",
    "platform",
    "cpu_count",
    "argv",
    "config",
)


def load_records(path: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace file, skipping blank lines."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def normalize_path(path: str) -> str:
    """Collapse per-instance indices so repeated phases group together."""
    return _INDEXED.sub("[*]", path)


def phase_rows(records: Sequence[Dict[str, Any]]) -> List[List[Any]]:
    """Aggregate span records into phase-table rows, sorted by path."""
    groups: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        key = normalize_path(record.get("path", record.get("name", "?")))
        group = groups.setdefault(
            key,
            {"kind": record.get("kind", ""), "n": 0, "wall": 0.0, "cpu": 0.0,
             "space": None, "errors": 0},
        )
        group["n"] += 1
        group["wall"] += record.get("wall_s", 0.0)
        group["cpu"] += record.get("cpu_s", 0.0)
        if "error" in record:
            group["errors"] += 1
        space = record.get("attrs", {}).get("space_peak")
        if isinstance(space, (int, float)):
            group["space"] = (
                space if group["space"] is None else max(group["space"], space)
            )
    rows = []
    for path in sorted(groups):
        group = groups[path]
        rows.append(
            [
                path,
                group["kind"],
                group["n"],
                group["wall"],
                group["wall"] / group["n"],
                group["cpu"],
                group["space"] if group["space"] is not None else "-",
                group["errors"] or "",
            ]
        )
    return rows


def manifest_rows(manifest: Dict[str, Any]) -> List[List[str]]:
    rows = []
    for field in _MANIFEST_FIELDS:
        if field not in manifest:
            continue
        value = manifest[field]
        if isinstance(value, list):
            value = " ".join(str(item) for item in value)
        elif isinstance(value, dict):
            value = json.dumps(value, sort_keys=True)
        rows.append([field, str(value)])
    baselines = manifest.get("bench_baselines") or {}
    if baselines:
        rows.append(["bench_baselines", ", ".join(sorted(baselines))])
    for invocation in manifest.get("invocations", []):
        name = invocation.get("invocation", "?")
        detail = ", ".join(
            f"{key}={value}"
            for key, value in sorted(invocation.items())
            if key != "invocation"
        )
        rows.append([f"invocation:{name}", detail])
    return rows


def budget_rows(
    run: Dict[str, Any],
    error_budget: Optional[float] = None,
    space_budget: Optional[float] = None,
) -> Tuple[List[List[Any]], int]:
    """Per-trial budget check rows for one ``type: run`` record.

    Returns the rows and the number of flagged trials.  The error
    budget defaults to the run's recorded epsilon (the theorem's
    accuracy parameter); with neither, errors are shown but not
    flagged.
    """
    truth = run.get("truth")
    estimates = run.get("estimates", [])
    spaces = run.get("space_items", [])
    walls = run.get("wall_seconds", [])
    budget = error_budget if error_budget is not None else run.get("epsilon")
    rows: List[List[Any]] = []
    flagged = 0
    for index, estimate in enumerate(estimates):
        rel_err: Any = "-"
        if truth:
            rel_err = abs(estimate - truth) / truth
        space = spaces[index] if index < len(spaces) else "-"
        wall = walls[index] if index < len(walls) else "-"
        over_error = (
            budget is not None and isinstance(rel_err, float) and rel_err > budget
        )
        over_space = (
            space_budget is not None
            and isinstance(space, (int, float))
            and space > space_budget
        )
        flag = ""
        if over_error:
            flag += "ERROR>budget"
        if over_space:
            flag += (" " if flag else "") + "SPACE>budget"
        if flag:
            flagged += 1
        rows.append([index, estimate, rel_err, space, wall, flag])
    return rows, flagged


def render_report(
    records: Sequence[Dict[str, Any]],
    error_budget: Optional[float] = None,
    space_budget: Optional[float] = None,
) -> int:
    """Print the full report; returns the total number of flagged trials."""
    manifests = [r for r in records if r.get("type") == "manifest"]
    runs = [r for r in records if r.get("type") == "run"]
    spans = [r for r in records if r.get("type") == "span"]

    if manifests:
        print_experiment(
            "Run manifest", format_table(["field", "value"], manifest_rows(manifests[0]))
        )
    else:
        print("(no manifest record in trace)")

    if spans:
        print_experiment(
            "Per-phase timing / space",
            format_table(
                ["phase", "kind", "count", "wall_s", "mean_wall_s", "cpu_s",
                 "space_peak", "errors"],
                phase_rows(spans),
            ),
        )
    else:
        print("(no span records in trace)")

    total_flagged = 0
    for run in runs:
        name = run.get("algorithm", run.get("invocation", "run"))
        rows, flagged = budget_rows(run, error_budget, space_budget)
        total_flagged += flagged
        if not rows:
            continue
        title = f"Trial budget check: {name}"
        budget = error_budget if error_budget is not None else run.get("epsilon")
        if budget is not None:
            title += f" (error budget {budget})"
        print_experiment(
            title,
            format_table(
                ["trial", "estimate", "rel_error", "space_items", "wall_s", "flag"],
                rows,
            ),
        )
        if flagged:
            print(f"  !! {flagged} trial(s) exceeded budget")

    metrics = [r for r in records if r.get("type") == "metrics"]
    if metrics:
        snapshot = metrics[-1].get("metrics", {})
        rows = []
        for name, value in snapshot.get("counters", {}).items():
            rows.append([name, "counter", value])
        for name, value in snapshot.get("gauges", {}).items():
            rows.append([name, "gauge", value])
        for name, summary in snapshot.get("histograms", {}).items():
            count = summary.get("count", 0)
            mean = summary.get("sum", 0.0) / count if count else 0.0
            rows.append(
                [
                    name,
                    "histogram",
                    f"n={count} mean={mean:.4g} "
                    f"min={summary.get('min', 0)} max={summary.get('max', 0)}",
                ]
            )
        if rows:
            print_experiment(
                "Aggregated metrics", format_table(["metric", "kind", "value"], rows)
            )
    return total_flagged


def report_file(
    path: str,
    error_budget: Optional[float] = None,
    space_budget: Optional[float] = None,
) -> int:
    """Load ``path`` and render the report; returns flagged-trial count."""
    return render_report(load_records(path), error_budget, space_budget)
