"""Telemetry sessions: the active Tracer + MetricsRegistry + manifest.

The module keeps one process-wide *active* :class:`Telemetry`;
instrumented code asks for it with :func:`current` and gets the no-op
:data:`NULL` when telemetry is off (the default), so the hot path pays
nothing beyond an attribute check.  Usage::

    from repro import obs

    with obs.session(path="run.jsonl", config={"seed": 0}) as tel:
        run_trials(...)                    # instrumented internally
    # run.jsonl now holds manifest + spans + metrics as JSON lines

Worker processes (and serial trials, for bit-identical aggregation)
capture into a fresh session via :func:`capture`, export a picklable
:class:`TrialTelemetry`, and the parent folds those exports back in
trial-index order with :meth:`Telemetry.absorb`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .manifest import RunManifest, collect_manifest
from .metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from .trace import NULL_TRACER, NullTracer, Tracer


@dataclass
class TrialTelemetry:
    """A picklable per-trial (or per-sweep-point) telemetry capture."""

    index: int
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)


class Telemetry:
    """One live telemetry session: tracer + metrics + manifest + runs."""

    enabled = True

    def __init__(self, manifest: Optional[RunManifest] = None) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.manifest = manifest
        self.runs: List[Dict[str, Any]] = []

    # -- recording -------------------------------------------------------
    def record_run(self, invocation: str, payload: Dict[str, Any]) -> None:
        """Log one harness invocation (``run_trials``, an experiment, ...).

        The payload lands both in the manifest (config provenance) and
        as a ``type: run`` record that ``repro obs report`` renders and
        budget-checks.
        """
        self.runs.append({"type": "run", "invocation": invocation, **payload})
        if self.manifest is not None:
            summary = {
                key: value
                for key, value in payload.items()
                if not isinstance(value, (list, dict))
            }
            self.manifest.record_invocation(invocation, summary)

    def absorb(self, capture: Optional[TrialTelemetry]) -> None:
        """Fold a per-trial capture into this session.

        No-op on ``None`` so callers can pass results through without
        checking whether the trial was captured.  Must be called in
        trial-index order — that is what makes serial and parallel runs
        aggregate bit-identically.
        """
        if capture is None:
            return
        self.metrics.merge(capture.metrics)
        self.tracer.absorb(capture.spans)

    def export(self, index: int) -> TrialTelemetry:
        """Snapshot this session as a picklable per-trial capture."""
        return TrialTelemetry(
            index=index,
            spans=list(self.tracer.records),
            metrics=self.metrics.snapshot(),
        )

    # -- output ----------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """All records of this session, manifest first, metrics last."""
        out: List[Dict[str, Any]] = []
        if self.manifest is not None:
            out.append(self.manifest.as_record())
        out.extend(self.runs)
        out.extend(self.tracer.records)
        out.append({"type": "metrics", "metrics": self.metrics.snapshot()})
        return out

    def write_jsonl(self, path: str) -> int:
        """Write this session as JSON lines; returns the record count.

        The trace is written atomically (temp file + rename) so a crash
        mid-write cannot leave a torn trace next to a valid run.
        """
        # Imported lazily: repro.obs must stay importable on its own
        # (repro.resilience.checkpoint imports repro.obs).
        from ..resilience.atomic import atomic_write

        records = self.records()
        with atomic_write(path) as handle:
            for record in records:
                handle.write(json.dumps(record, default=repr) + "\n")
        return len(records)


class _NullTelemetry:
    """The disabled session: shared no-op tracer and metrics."""

    __slots__ = ()
    enabled = False
    tracer: NullTracer = NULL_TRACER
    metrics: NullMetrics = NULL_METRICS
    manifest = None
    runs: List[Dict[str, Any]] = []  # always empty; do not mutate

    def record_run(self, invocation: str, payload: Dict[str, Any]) -> None:
        pass

    def absorb(self, capture: Optional[TrialTelemetry]) -> None:
        pass

    def export(self, index: int) -> TrialTelemetry:
        return TrialTelemetry(index=index)

    def records(self) -> List[Dict[str, Any]]:
        return []

    def write_jsonl(self, path: str) -> int:
        return 0


NULL = _NullTelemetry()

_ACTIVE: Optional[Telemetry] = None


def current() -> Telemetry:
    """The active telemetry session, or the no-op :data:`NULL`."""
    return _ACTIVE if _ACTIVE is not None else NULL  # type: ignore[return-value]


@contextmanager
def session(
    path: Optional[str] = None,
    config: Optional[Dict[str, Any]] = None,
    collect_env: bool = True,
) -> Iterator[Telemetry]:
    """Activate a telemetry session for the enclosed block.

    Args:
        path: when given, the session is written there as JSON lines on
            exit (even if the block raises — partial traces are still
            evidence).
        config: caller configuration recorded in the manifest.
        collect_env: set False to skip the git/platform probe (fast
            in-memory sessions, e.g. benchmarks and tests).
    """
    global _ACTIVE
    manifest = collect_manifest(config) if collect_env else None
    telemetry = Telemetry(manifest=manifest)
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
        if path is not None:
            telemetry.write_jsonl(path)


@contextmanager
def capture(index: int = 0) -> Iterator[Telemetry]:
    """Activate a fresh, manifest-less session for one unit of work.

    Used by :func:`repro.experiments.parallel.execute_trial` (and the
    sweep runner) in both serial and worker processes: the unit runs
    against its own registry/tracer, then ``telemetry.export(index)``
    produces the picklable capture the parent absorbs.
    """
    global _ACTIVE
    telemetry = Telemetry()
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
