"""Hierarchical span tracing for experiments and streaming passes.

A :class:`Tracer` records a tree of *spans* — timed regions with a
kind, a name, and free-form attributes.  The canonical hierarchy is

    experiment -> sweep_point -> trial -> pass -> phase

but any nesting is allowed; spans carry their full slash-joined path
(``experiment:E1/run_trials/trial[3]/pass1:stream``), so the record
stream is flat JSON-lines while the hierarchy stays recoverable.

Each completed span records wall time (``perf_counter``) and CPU time
(``process_time``).  Timings are inherently nondeterministic, so they
live only here — never in the :class:`~repro.obs.metrics.MetricsRegistry`
— and equivalence checks between serial and parallel runs compare span
*counts and paths*, not durations.

Worker processes capture spans into their own tracer;
:meth:`Tracer.absorb` grafts those records under the parent's current
path in trial-index order, so ``n_jobs=1`` and ``n_jobs>1`` produce an
identical span forest.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional


class SpanHandle:
    """The object a ``with tracer.span(...) as sp`` block receives.

    ``sp.set(key, value)`` annotates the span after work has run —
    e.g. peak space or the estimate, which are unknown at entry.
    """

    __slots__ = ("_tracer", "name", "kind", "attrs", "_path", "_wall0", "_cpu0")

    def __init__(
        self, tracer: "Tracer", name: str, kind: str, attrs: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self._path = ""
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "SpanHandle":
        self._tracer._stack.append(self.name)
        self._path = "/".join(self._tracer._stack)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._tracer._stack.pop()
        record: Dict[str, Any] = {
            "type": "span",
            "kind": self.kind,
            "name": self.name,
            "path": self._path,
            "wall_s": wall,
            "cpu_s": cpu,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer.records.append(record)
        return False


class Tracer:
    """Collects span records (completion order) with hierarchy via paths."""

    def __init__(self) -> None:
        self._stack: List[str] = []
        self.records: List[Dict[str, Any]] = []

    def span(self, name: str, kind: str = "phase", **attrs: Any) -> SpanHandle:
        """Open a span: ``with tracer.span("pass1:stream", kind="pass"):``."""
        return SpanHandle(self, name, kind, attrs)

    @property
    def current_path(self) -> str:
        """Slash-joined path of the currently open spans ('' at root)."""
        return "/".join(self._stack)

    def absorb(
        self, records: Iterable[Dict[str, Any]], base_path: Optional[str] = None
    ) -> None:
        """Graft span records captured elsewhere under ``base_path``.

        ``base_path`` defaults to the tracer's current open path, so a
        runner that absorbs per-trial captures inside its own
        ``run_trials`` span nests them correctly.  Records are appended
        in the order given — callers iterate trials in index order to
        keep serial and parallel traces identical.
        """
        if base_path is None:
            base_path = self.current_path
        for record in records:
            grafted = dict(record)
            if base_path:
                grafted["path"] = f"{base_path}/{record['path']}"
            self.records.append(grafted)

    def span_count(self) -> int:
        return len(self.records)


class _NullSpanHandle:
    """Reusable no-op span: one shared instance, zero allocations."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """The disabled-telemetry tracer: spans are free no-ops."""

    __slots__ = ()
    records: List[Dict[str, Any]] = []  # always empty; do not mutate

    def span(self, name: str, kind: str = "phase", **attrs: Any) -> _NullSpanHandle:
        return NULL_SPAN

    @property
    def current_path(self) -> str:
        return ""

    def absorb(
        self, records: Iterable[Dict[str, Any]], base_path: Optional[str] = None
    ) -> None:
        pass

    def span_count(self) -> int:
        return 0


NULL_SPAN = _NullSpanHandle()
NULL_TRACER = NullTracer()
