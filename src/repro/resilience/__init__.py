"""Resilience layer: fault injection, validation, checkpoint/resume.

This package hardens the reproduction harness against the failure modes
real runs actually hit:

* corrupted input streams — :class:`FaultPlan` / :class:`FaultyStream`
  inject seeded faults, :class:`~repro.streams.validation.ValidatedStream`
  applies the ``strict`` / ``repair`` / ``skip`` policies;
* dying workers and runaway trials — the hardened
  :class:`~repro.experiments.parallel.ParallelTrialRunner` (retry,
  timeout, crash recovery) lives in :mod:`repro.experiments.parallel`
  and raises the error types defined here;
* interrupted sweeps — :func:`config_hash` / :class:`Checkpoint` /
  :class:`CheckpointContext` persist completed work units atomically so
  ``--resume`` replays them byte-identically;
* torn artifacts — :func:`atomic_write` backs every export, trace and
  checkpoint write.

See docs/robustness.md for the full tour.  This module must not import
from :mod:`repro.experiments` (the experiments import *us*).
"""

from ..streams.policies import (
    POLICIES,
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    StreamFaultError,
    check_policy,
)
from ..streams.validation import ValidatedStream
from .atomic import atomic_write
from .checkpoint import (
    NULL_CHECKPOINT,
    Checkpoint,
    CheckpointContext,
    config_hash,
    is_missing,
)
from .errors import (
    CheckpointMismatchError,
    SpaceBudgetExceeded,
    TrialRetryError,
    TrialTimeoutError,
)
from .faults import FaultPlan, FaultyStream

__all__ = [
    "POLICIES",
    "POLICY_REPAIR",
    "POLICY_SKIP",
    "POLICY_STRICT",
    "StreamFaultError",
    "check_policy",
    "ValidatedStream",
    "atomic_write",
    "NULL_CHECKPOINT",
    "Checkpoint",
    "CheckpointContext",
    "config_hash",
    "is_missing",
    "CheckpointMismatchError",
    "SpaceBudgetExceeded",
    "TrialRetryError",
    "TrialTimeoutError",
    "FaultPlan",
    "FaultyStream",
]
