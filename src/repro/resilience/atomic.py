"""Atomic file writes for experiment artifacts.

An interrupted run must never leave a torn JSON/CSV on disk: exports,
telemetry traces and checkpoints are all written to a temporary file in
the *target directory* (same filesystem, so the final rename cannot
cross a device boundary) and moved into place with :func:`os.replace`,
which is atomic on POSIX and Windows.  Readers therefore observe either
the previous complete artifact or the new complete artifact — never a
prefix.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

PathLike = Union[str, Path]


@contextmanager
def atomic_write(
    path: PathLike,
    mode: str = "w",
    encoding: str = "utf-8",
    newline: str = None,
) -> Iterator[IO]:
    """Open a temp file next to ``path``; atomically rename on success.

    On any exception the temp file is removed and the original artifact
    (if any) is left untouched.  The data is flushed and fsynced before
    the rename, so a crash immediately after the context exits still
    leaves a complete file.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{target.name}.", suffix=".tmp"
    )
    handle = os.fdopen(fd, mode, encoding=encoding, newline=newline)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp_name, str(target))
    except BaseException:
        try:
            handle.close()
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        raise
