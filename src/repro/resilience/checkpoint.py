"""Checkpoint/resume for experiment sweeps.

Long Monte-Carlo sweeps die mid-run — OOM kills, preemptions, ^C — and
without checkpoints everything already computed is lost.  This module
gives the experiment suite, ``paper-table`` and ``run_sweep`` a shared,
minimal persistence layer:

* a **checkpoint file** is JSON lines: a header record carrying a
  ``key`` (the :func:`config_hash` of the run's config + seed
  schedule) followed by one record per completed *unit* of work;
* every completed unit triggers an **atomic rewrite** (temp file +
  ``os.replace``), so a SIGKILL at any instant leaves either the
  previous complete checkpoint or the new one — never a torn file;
* **resume** refuses a checkpoint whose key does not match the current
  config (:class:`~repro.resilience.errors.CheckpointMismatchError`);
  matching units are returned from the file instead of re-run, so an
  interrupted sweep restarts at the first incomplete unit and — because
  every unit is a pure function of the config and seeds — produces
  byte-identical results to an uninterrupted run.

Unit payloads must round-trip through JSON unchanged (plain dicts,
lists, strings, numbers, bools) — exactly the record tables the
experiments already produce.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .. import obs as _obs
from .atomic import atomic_write
from .errors import CheckpointMismatchError

PathLike = Union[str, Path]

CHECKPOINT_VERSION = 1

_MISSING = object()


def config_hash(config: Any) -> str:
    """A short stable hash of a JSON-able config (sorted keys)."""
    payload = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class Checkpoint:
    """A file-backed store of completed work units for one run config.

    Args:
        path: the checkpoint file (JSON lines).
        key: the run's :func:`config_hash`; recorded in the header and
            verified on resume.
        resume: when True, an existing file with a matching key is
            loaded and its units served from cache; a mismatched key
            raises :class:`CheckpointMismatchError`.  When False, any
            existing file is discarded and a fresh checkpoint started.
    """

    def __init__(self, path: PathLike, key: str, resume: bool = False) -> None:
        self.path = Path(path)
        self.key = key
        self._units: Dict[str, Any] = {}
        self._order: List[str] = []
        self.resumed = False
        self.created_utc = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        if resume and self.path.exists():
            self._load()
            self.resumed = True
        self._write()  # materialize the header (and any loaded units)

    # -- persistence -----------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            return
        header = json.loads(lines[0])
        if header.get("type") != "checkpoint" or "key" not in header:
            raise CheckpointMismatchError(
                f"{self.path} is not a checkpoint file (bad header)"
            )
        if header["key"] != self.key:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was recorded for config key "
                f"{header['key']!r} but this run hashes to {self.key!r}; "
                "refusing to resume across different configs/seed schedules"
            )
        self.created_utc = header.get("created_utc", self.created_utc)
        for line in lines[1:]:
            record = json.loads(line)
            if record.get("type") != "unit":
                continue
            name = record["name"]
            if name not in self._units:
                self._order.append(name)
            self._units[name] = record["payload"]

    def _write(self) -> None:
        header = {
            "type": "checkpoint",
            "version": CHECKPOINT_VERSION,
            "key": self.key,
            "created_utc": self.created_utc,
        }
        with atomic_write(self.path) as handle:
            handle.write(json.dumps(header) + "\n")
            for name in self._order:
                record = {"type": "unit", "name": name, "payload": self._units[name]}
                handle.write(json.dumps(record) + "\n")

    # -- unit store ------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._units

    def get(self, name: str) -> Any:
        return self._units[name]

    def record(self, name: str, payload: Any) -> None:
        """Store one completed unit and atomically persist the file."""
        if name not in self._units:
            self._order.append(name)
        self._units[name] = payload
        self._write()

    @property
    def completed(self) -> List[str]:
        return list(self._order)

    def lineage(self) -> Dict[str, Any]:
        """Provenance summary for the run manifest."""
        return {
            "path": str(self.path),
            "key": self.key,
            "resumed": self.resumed,
            "created_utc": self.created_utc,
            "cached_units": len(self._units),
        }


class CheckpointContext:
    """What experiment code consumes: ``ctx.unit(name, thunk)``.

    With no checkpoint attached (the default), ``unit`` just runs the
    thunk — zero overhead, no behavior change.  With a checkpoint, a
    completed unit is served from the file (counted as a hit, metric
    ``checkpoint.units_cached``) and a fresh unit is executed then
    persisted (metric ``checkpoint.units_run``).
    """

    def __init__(self, checkpoint: Optional[Checkpoint] = None) -> None:
        self.checkpoint = checkpoint
        self.hits = 0
        self.misses = 0

    @property
    def active(self) -> bool:
        return self.checkpoint is not None

    def lookup(self, name: str) -> Any:
        """The cached payload for ``name``, or the module sentinel."""
        if self.checkpoint is not None and name in self.checkpoint:
            return self.checkpoint.get(name)
        return _MISSING

    def store(self, name: str, payload: Any) -> None:
        if self.checkpoint is not None:
            self.checkpoint.record(name, payload)

    def unit(self, name: str, thunk: Callable[[], Any]) -> Any:
        """Run (or recall) one named unit of work."""
        cached = self.lookup(name)
        if cached is not _MISSING:
            self.hits += 1
            _obs.current().metrics.inc("checkpoint.units_cached")
            return cached
        value = thunk()
        self.store(name, value)
        self.misses += 1
        if self.checkpoint is not None:
            _obs.current().metrics.inc("checkpoint.units_run")
        return value

    def lineage(self) -> Optional[Dict[str, Any]]:
        if self.checkpoint is None:
            return None
        summary = self.checkpoint.lineage()
        summary["cache_hits"] = self.hits
        summary["cache_misses"] = self.misses
        return summary


#: Shared inactive context: ``unit`` runs every thunk directly.
NULL_CHECKPOINT = CheckpointContext(None)


def is_missing(value: Any) -> bool:
    """True when :meth:`CheckpointContext.lookup` found nothing."""
    return value is _MISSING
