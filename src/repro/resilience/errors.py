"""Exception types of the resilience layer.

Kept dependency-free so any layer (streams, the parallel engine, the
experiment suite) can raise them without import cycles.
"""

from __future__ import annotations


class SpaceBudgetExceeded(RuntimeError):
    """A trial's peak space crossed the configured budget.

    Raised only when the caller asked for ``on_budget="raise"``; the
    default behavior of the hardened runner is to *flag* the trial
    (``result.details["space_budget_exceeded"]``) and keep the sweep
    alive — one runaway trial should degrade, not abort.
    """


class TrialRetryError(RuntimeError):
    """A trial kept failing after every allowed retry.

    The original exception is chained as ``__cause__``; the message
    names the trial index and the seeds of the final attempt so the
    failure is reproducible in isolation.
    """


class TrialTimeoutError(RuntimeError):
    """A trial exceeded its wall-clock timeout with no retries left."""


class CheckpointMismatchError(RuntimeError):
    """A checkpoint file belongs to a different config/seed schedule.

    Resuming a sweep against a checkpoint recorded under different
    parameters would silently mix incompatible results; the hash check
    turns that into a loud error.
    """
