"""Seeded fault injection for stream sources.

The paper's guarantees assume clean insert-only streams; production
feeds are not clean.  :class:`FaultyStream` decorates any
:class:`~repro.streams.models.StreamSource` and injects the fault
taxonomy of docs/robustness.md:

* **duplicate** — a token is emitted twice;
* **self_loop** — a spurious ``(u, u)`` token is inserted;
* **reverse**   — a token's endpoints are swapped (edge streams only);
* **drop**      — a token is silently lost;
* **truncate**  — the stream's suffix is cut off (a dying feed);
* **split_block** / **shuffle_blocks** — an adjacency list is split in
  two / the block order is permuted (adjacency sources only).

The corrupted sequence is built once at construction from ``seed``, so
every pass replays identical faults and a trial remains a pure function
of its seeds — the property the parallel engine's bit-identical
serial==parallel guarantee rests on.  Injected counts are available as
:attr:`FaultyStream.injected` and are emitted to the active telemetry
under ``faults.injected.<kind>``.

``num_vertices`` / ``num_edges`` report the *declared* (clean) values
of the wrapped source: algorithms are told the ``m`` the pipeline
believes, while the tokens they actually receive disagree — exactly the
failure mode under study.  Pair with
:class:`~repro.streams.validation.ValidatedStream` to study the
repair / skip / strict policies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional, Tuple

from ..graphs.graph import Vertex
from ..streams.models import StreamSource
from .. import obs as _obs

INJECTED_METRIC_PREFIX = "faults.injected."


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind fault rates, all in ``[0, 1]``.

    ``duplicate_rate``/``self_loop_rate``/``reverse_rate``/``drop_rate``
    are per-token probabilities; ``truncate_fraction`` removes that
    fraction of the token suffix; ``split_block_rate`` is a per-block
    probability (adjacency sources); ``shuffle_blocks`` permutes block
    order.  The zero plan is a passthrough.
    """

    duplicate_rate: float = 0.0
    self_loop_rate: float = 0.0
    reverse_rate: float = 0.0
    drop_rate: float = 0.0
    truncate_fraction: float = 0.0
    split_block_rate: float = 0.0
    shuffle_blocks: bool = False

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name == "shuffle_blocks":
                continue
            value = getattr(self, spec.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{spec.name} must be in [0, 1], got {value}")

    @classmethod
    def mixed(cls, rate: float) -> "FaultPlan":
        """An even mix: each token is duplicated / self-looped /
        reversed / dropped with probability ``rate / 4`` — so ``rate``
        is (approximately) the fraction of faulted tokens, the x-axis
        of the robustness-curve experiment (E16)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        quarter = rate / 4.0
        return cls(
            duplicate_rate=quarter,
            self_loop_rate=quarter,
            reverse_rate=quarter,
            drop_rate=quarter,
        )

    @property
    def is_zero(self) -> bool:
        return (
            self.duplicate_rate == 0.0
            and self.self_loop_rate == 0.0
            and self.reverse_rate == 0.0
            and self.drop_rate == 0.0
            and self.truncate_fraction == 0.0
            and self.split_block_rate == 0.0
            and not self.shuffle_blocks
        )


class FaultyStream(StreamSource):
    """A stream source that replays a seeded corruption of its base."""

    def __init__(self, source: StreamSource, plan: FaultPlan, seed: int = 0) -> None:
        super().__init__()
        self._source = source
        self._plan = plan
        self._seed = seed
        self.injected: Dict[str, int] = {}
        rng = random.Random(seed)
        self._block_list: Optional[List[Tuple[Vertex, List[Vertex]]]] = None
        if hasattr(source, "_blocks"):
            self._block_list = self._corrupt_blocks(rng)
            self._token_list = [
                (v, u) for v, neighbors in self._block_list for u in neighbors
            ]
        else:
            self._token_list = self._corrupt_tokens(rng)
        self._emit_injected()

    # -- corruption (construction time, deterministic in seed) ----------
    def _inject(self, kind: str, count: int = 1) -> None:
        if count:
            self.injected[kind] = self.injected.get(kind, 0) + count

    def _corrupt_tokens(self, rng: random.Random) -> List[Tuple[Vertex, Vertex]]:
        plan = self._plan
        out: List[Tuple[Vertex, Vertex]] = []
        for u, v in self._source._tokens():
            if plan.drop_rate and rng.random() < plan.drop_rate:
                self._inject("drop")
                continue
            token = (u, v)
            if plan.reverse_rate and rng.random() < plan.reverse_rate:
                token = (v, u)
                self._inject("reverse")
            out.append(token)
            if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
                out.append(token)
                self._inject("duplicate")
            if plan.self_loop_rate and rng.random() < plan.self_loop_rate:
                out.append((token[0], token[0]))
                self._inject("self_loop")
        return self._truncate_tokens(out)

    def _truncate_tokens(self, tokens: List) -> List:
        fraction = self._plan.truncate_fraction
        if not fraction:
            return tokens
        keep = len(tokens) - int(len(tokens) * fraction)
        self._inject("truncated_tokens", len(tokens) - keep)
        return tokens[:keep]

    def _corrupt_blocks(
        self, rng: random.Random
    ) -> List[Tuple[Vertex, List[Vertex]]]:
        plan = self._plan
        blocks: List[Tuple[Vertex, List[Vertex]]] = []
        for vertex, neighbors in self._source._blocks():
            entries: List[Vertex] = []
            for u in neighbors:
                if plan.drop_rate and rng.random() < plan.drop_rate:
                    self._inject("drop")
                    continue
                entries.append(u)
                if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
                    entries.append(u)
                    self._inject("duplicate")
                if plan.self_loop_rate and rng.random() < plan.self_loop_rate:
                    entries.append(vertex)  # a (vertex, vertex) self loop
                    self._inject("self_loop")
            if (
                plan.split_block_rate
                and len(entries) >= 2
                and rng.random() < plan.split_block_rate
            ):
                cut = 1 + rng.randrange(len(entries) - 1)
                blocks.append((vertex, entries[:cut]))
                blocks.append((vertex, entries[cut:]))
                self._inject("split_block")
            else:
                blocks.append((vertex, entries))
        if plan.shuffle_blocks:
            rng.shuffle(blocks)
            self._inject("shuffled_blocks", len(blocks))
        return self._truncate_blocks(blocks)

    def _truncate_blocks(
        self, blocks: List[Tuple[Vertex, List[Vertex]]]
    ) -> List[Tuple[Vertex, List[Vertex]]]:
        fraction = self._plan.truncate_fraction
        if not fraction:
            return blocks
        total = sum(len(neighbors) for _, neighbors in blocks)
        keep = total - int(total * fraction)
        out: List[Tuple[Vertex, List[Vertex]]] = []
        remaining = keep
        for vertex, neighbors in blocks:
            if remaining <= 0:
                break
            if len(neighbors) <= remaining:
                out.append((vertex, neighbors))
                remaining -= len(neighbors)
            else:  # the feed died mid-block
                out.append((vertex, neighbors[:remaining]))
                remaining = 0
        self._inject("truncated_tokens", total - keep)
        return out

    def _emit_injected(self) -> None:
        telemetry = _obs.current()
        if not telemetry.enabled:
            return
        for kind, count in self.injected.items():
            telemetry.metrics.inc(INJECTED_METRIC_PREFIX + kind, count)

    # -- declared shape (the clean values the pipeline believes) --------
    @property
    def num_vertices(self) -> int:
        return self._source.num_vertices

    @property
    def num_edges(self) -> int:
        return self._source.num_edges

    @property
    def stream_length(self) -> int:
        """The *actual* token count of one corrupted pass."""
        return len(self._token_list)

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def source(self) -> StreamSource:
        return self._source

    @property
    def provides_adjacency(self) -> bool:
        return self._block_list is not None

    # -- passes ----------------------------------------------------------
    def _tokens(self) -> Iterator[Tuple[Vertex, Vertex]]:
        return iter(self._token_list)

    def _blocks(self) -> Iterator[Tuple[Vertex, List[Vertex]]]:
        if self._block_list is None:
            raise TypeError(
                f"{type(self._source).__name__} is not an adjacency-list source"
            )
        for vertex, neighbors in self._block_list:
            yield vertex, list(neighbors)

    def adjacency_lists(self) -> Iterator[Tuple[Vertex, List[Vertex]]]:
        """Begin a new pass over the corrupted adjacency blocks."""
        if self._block_list is None:
            raise TypeError(
                f"{type(self._source).__name__} is not an adjacency-list source"
            )
        self._passes += 1
        telemetry = _obs.current()
        if telemetry.enabled:
            telemetry.metrics.inc("stream.passes")
        tokens = 0
        try:
            for vertex, neighbors in self._blocks():
                tokens += len(neighbors)
                yield vertex, neighbors
        finally:
            if telemetry.enabled:
                telemetry.metrics.inc("stream.edges_consumed", tokens)
