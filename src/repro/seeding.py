"""Namespaced, structured seed derivation — one RNG stream per component.

The bug class this module kills: two *different* components handed the
same integer seed used to construct byte-identical RNGs —
``ReservoirSampler(k, seed=7)`` and ``UniformItemSampler(seed=7)`` both
called ``random.Random(7)``, and every vectorized generator fed the raw
seed straight into ``PCG64(seed)`` — so "independently seeded"
randomness sources emitted identical (perfectly correlated) streams.
Correlated randomness silently *inflates* apparent estimator accuracy,
which is exactly the failure mode a reproduction must not have.

Every RNG in this repo is now derived from a structured digest::

    derive_seed(component_tag, *typed_fields, seed=seed)

which sha256-hashes a canonical, type-tagged encoding of the component
name, its distinguishing fields (independence degree, namespace, ...)
and the user seed.  Two components agree on their stream only if they
agree on *all* of it.  The encoding is versioned (``SCHEME``): any
change to it is a new scheme string, never a silent re-mix.

The previous ad-hoc defenses — linear offsets like ``seed * 37 + 5``
(collide across components: ``37 s + 5 = 53 s' + 9`` has integer
solutions) and ``repr``-keyed seeding like ``random.Random(repr((tag,
k, seed)))`` (collides whenever two field tuples share a repr, and
couples the stream to Python's repr format) — are gone.

There is deliberately **no** legacy switch: goldens that pinned the old
streams were updated instead, so a single derivation scheme covers the
whole tree and ``repro verify seeds`` can audit it (see
:mod:`repro.verify.seeds`).
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

import numpy as np

#: Version tag mixed into every digest.  Bump (never reuse) when the
#: encoding changes; documented in docs/verification.md.
SCHEME = "repro-seed-v1"

Field = Union[int, float, str, bool, bytes, tuple, list, None]


def _encode(field: Field) -> bytes:
    """Canonical type-tagged encoding of one seed field.

    Each scalar carries an explicit type tag so cross-type collisions
    (``1`` vs ``True`` vs ``"1"`` vs ``1.0``) are impossible, and
    sequences are length-delimited so nesting is unambiguous —
    ``("a", ("b",))`` and ``("a", "b")`` encode differently.
    """
    if field is None:
        return b"n:"
    if isinstance(field, bool):  # before int: bool is an int subclass
        return b"b:1" if field else b"b:0"
    if isinstance(field, int):
        return b"i:" + str(field).encode("ascii")
    if isinstance(field, float):
        return b"f:" + field.hex().encode("ascii")
    if isinstance(field, str):
        raw = field.encode("utf-8")
        return b"s:" + str(len(raw)).encode("ascii") + b":" + raw
    if isinstance(field, bytes):
        return b"y:" + str(len(field)).encode("ascii") + b":" + field
    if isinstance(field, (tuple, list)):
        inner = b"".join(_encode(item) for item in field)
        return b"t:" + str(len(field)).encode("ascii") + b"[" + inner + b"]"
    raise TypeError(
        f"seed fields must be int/float/str/bool/bytes/tuple/None, "
        f"got {type(field).__name__}"
    )


def derive_seed(component: str, *fields: Field, seed: Field = 0) -> int:
    """A 63-bit seed unique to ``(component, fields, seed)``.

    Args:
        component: the component tag, e.g. ``"sketch:reservoir-sampler"``.
            Dotted/colon-separated lowercase names by convention.
        fields: distinguishing structural fields (independence degree,
            namespace string, copy index, ...) — anything that makes two
            instances of the same component class logically independent.
        seed: the user-facing seed (keyword-only so call sites read as
            ``derive_seed("tag", k, seed=seed)``).
    """
    if not isinstance(component, str) or not component:
        raise TypeError(f"component tag must be a non-empty str, got {component!r}")
    digest = hashlib.sha256()
    digest.update(SCHEME.encode("ascii"))
    digest.update(b"\x00")
    digest.update(_encode(component))
    for field in fields:
        digest.update(b"\x1f")
        digest.update(_encode(field))
    digest.update(b"\x1e")
    digest.update(_encode(seed))
    return int.from_bytes(digest.digest()[:8], "big") >> 1  # 63 bits, non-negative


def component_rng(component: str, *fields: Field, seed: Field = 0) -> random.Random:
    """A ``random.Random`` whose state is namespaced to the component."""
    return random.Random(derive_seed(component, *fields, seed=seed))


def numpy_generator(
    component: str, *fields: Field, seed: Field = 0
) -> "np.random.Generator":
    """A numpy ``Generator`` (PCG64) namespaced to the component."""
    return np.random.Generator(
        np.random.PCG64(derive_seed(component, *fields, seed=seed))
    )
