"""Sketching substrate: hashing, AMS, CountSketch, l2 sampling, wedges."""

from .ams import AmsF2Sketch
from .countsketch import CountSketch
from .estimators import (
    mean,
    median,
    median_of_means,
    relative_error,
    within_factor,
)
from .hashing import (
    MERSENNE_PRIME,
    KWiseHash,
    hash_family,
    stable_key,
    stable_key_array,
)
from .l2_sampler import L2Sampler, L2SamplerBank
from .misra_gries import MisraGries
from .reservoir import ReservoirSampler, UniformItemSampler
from .wedge_f2 import WedgeF2Estimator

__all__ = [
    "MERSENNE_PRIME",
    "KWiseHash",
    "hash_family",
    "stable_key",
    "stable_key_array",
    "AmsF2Sketch",
    "CountSketch",
    "L2Sampler",
    "L2SamplerBank",
    "MisraGries",
    "ReservoirSampler",
    "UniformItemSampler",
    "WedgeF2Estimator",
    "mean",
    "median",
    "median_of_means",
    "relative_error",
    "within_factor",
]
