"""The Alon–Matias–Szegedy F2 sketch for explicit update streams.

Given updates ``(key, delta)`` to an implicit vector ``f``, each basic
accumulator keeps ``Y_j = sum_i f_i * s_j(i)`` for a 4-wise independent
sign function ``s_j``; ``Y_j^2`` is an unbiased estimator of
``F2(f) = sum_i f_i^2`` with variance at most ``2 * F2^2``.  Copies are
combined by median-of-means.

Used by the l2-sampling four-cycle algorithm (Theorem 4.3b) to estimate
``F2(x)`` of the wedge vector, and independently tested as a substrate.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

import numpy as np

from .estimators import median_of_means
from .hashing import KWiseHash, hash_family, stable_key_array


class AmsF2Sketch:
    """Median-of-means AMS sketch with ``groups * group_size`` copies."""

    def __init__(self, groups: int = 5, group_size: int = 8, seed: int = 0) -> None:
        if groups < 1 or group_size < 1:
            raise ValueError("groups and group_size must be positive")
        self.groups = groups
        self.group_size = group_size
        count = groups * group_size
        self._signs: List[KWiseHash] = hash_family(
            count, k=4, seed=seed, namespace="ams.signs"
        )
        self._accumulators = np.zeros(count, dtype=np.float64)

    @property
    def num_copies(self) -> int:
        return len(self._accumulators)

    def update(self, key: Hashable, delta: float = 1.0) -> None:
        """Apply ``f[key] += delta``."""
        for j, sign_hash in enumerate(self._signs):
            self._accumulators[j] += delta * sign_hash.sign(key)

    def update_batch(
        self,
        keys: Sequence[Hashable],
        deltas: Optional[Sequence[float]] = None,
    ) -> None:
        """Apply ``f[keys[i]] += deltas[i]`` for the whole batch at once.

        Each copy's accumulator gains ``sum_i deltas[i] * s_j(keys[i])``,
        computed with the vectorized sign kernel — the same arithmetic
        as a scalar :meth:`update` loop (exactly so for integer-valued
        updates; up to float summation order in general).
        """
        stable = stable_key_array(
            keys if isinstance(keys, np.ndarray) else list(keys)
        )
        if stable.size == 0:
            return
        if deltas is None:
            delta_arr = np.ones(stable.size, dtype=np.float64)
        else:
            delta_arr = np.asarray(deltas, dtype=np.float64)
            if delta_arr.shape != (stable.size,):
                raise ValueError(
                    f"deltas shape {delta_arr.shape} does not match "
                    f"{stable.size} keys"
                )
        for j, sign_hash in enumerate(self._signs):
            signs = sign_hash.signs_array(stable).astype(np.float64)
            self._accumulators[j] += float(np.dot(delta_arr, signs))

    def estimate(self) -> float:
        """The current F2 estimate (median of group means of squares)."""
        squares = [float(y) * float(y) for y in self._accumulators]
        return median_of_means(squares, groups=self.groups)

    def merge(self, other: "AmsF2Sketch") -> None:
        """Combine with a sketch of another stream (same seed/layout only).

        Linear sketches add: the merged sketch summarizes the
        concatenated streams.
        """
        if (
            self.groups != other.groups
            or self.group_size != other.group_size
            or any(a.seed != b.seed for a, b in zip(self._signs, other._signs))
        ):
            raise ValueError("can only merge sketches with identical layout and seeds")
        self._accumulators += other._accumulators

    @property
    def space_items(self) -> int:
        """Words of state (one accumulator per copy)."""
        return len(self._accumulators)
