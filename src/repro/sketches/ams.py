"""The Alon–Matias–Szegedy F2 sketch for explicit update streams.

Given updates ``(key, delta)`` to an implicit vector ``f``, each basic
accumulator keeps ``Y_j = sum_i f_i * s_j(i)`` for a 4-wise independent
sign function ``s_j``; ``Y_j^2`` is an unbiased estimator of
``F2(f) = sum_i f_i^2`` with variance at most ``2 * F2^2``.  Copies are
combined by median-of-means.

Used by the l2-sampling four-cycle algorithm (Theorem 4.3b) to estimate
``F2(x)`` of the wedge vector, and independently tested as a substrate.
"""

from __future__ import annotations

from typing import Hashable, List

from .estimators import median_of_means
from .hashing import KWiseHash, hash_family


class AmsF2Sketch:
    """Median-of-means AMS sketch with ``groups * group_size`` copies."""

    def __init__(self, groups: int = 5, group_size: int = 8, seed: int = 0) -> None:
        if groups < 1 or group_size < 1:
            raise ValueError("groups and group_size must be positive")
        self.groups = groups
        self.group_size = group_size
        count = groups * group_size
        self._signs: List[KWiseHash] = hash_family(count, k=4, seed=seed)
        self._accumulators: List[float] = [0.0] * count

    @property
    def num_copies(self) -> int:
        return len(self._accumulators)

    def update(self, key: Hashable, delta: float = 1.0) -> None:
        """Apply ``f[key] += delta``."""
        for j, sign_hash in enumerate(self._signs):
            self._accumulators[j] += delta * sign_hash.sign(key)

    def estimate(self) -> float:
        """The current F2 estimate (median of group means of squares)."""
        squares = [y * y for y in self._accumulators]
        return median_of_means(squares, groups=self.groups)

    def merge(self, other: "AmsF2Sketch") -> None:
        """Combine with a sketch of another stream (same seed/layout only).

        Linear sketches add: the merged sketch summarizes the
        concatenated streams.
        """
        if (
            self.groups != other.groups
            or self.group_size != other.group_size
            or any(a.seed != b.seed for a, b in zip(self._signs, other._signs))
        ):
            raise ValueError("can only merge sketches with identical layout and seeds")
        for j in range(len(self._accumulators)):
            self._accumulators[j] += other._accumulators[j]

    @property
    def space_items(self) -> int:
        """Words of state (one accumulator per copy)."""
        return len(self._accumulators)
