"""CountSketch: linear sketch with per-coordinate recovery.

Each of ``rows`` rows hashes keys into ``width`` buckets (pairwise
independent) with a 4-wise sign; a coordinate's value is recovered as
the median over rows of ``sign * bucket``.  The recovery error of any
single coordinate is ``O(sqrt(F2 / width))`` with high probability.

This is the workhorse inside the l2 sampler (Section 4.2.4) and is
independently useful, so it lives in the substrate.

The table is a numpy array and updates come in two flavors: the scalar
:meth:`update` (one key at a time, memoized hash locations) and the
batched :meth:`update_batch` (vectorized hashing + ``np.add.at``
scatter), which applies the exact same arithmetic and is
property-tested equal to a scalar update sequence.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

import numpy as np

from .estimators import median
from .hashing import KWiseHash, hash_family, stable_key_array


class CountSketch:
    """A ``rows x width`` CountSketch table.

    Args:
        rows: number of independent hash rows (median over these).
        width: buckets per row.
        seed: derives every hash function deterministically.
        max_cache_entries: cap on the per-key (bucket, sign) memo.  The
            memo is real memory, so it is bounded and charged to
            :attr:`space_items`; past the cap, new keys are hashed on
            the fly without being memoized.
    """

    DEFAULT_MAX_CACHE_ENTRIES = 4096

    def __init__(
        self,
        rows: int = 5,
        width: int = 256,
        seed: int = 0,
        max_cache_entries: Optional[int] = None,
        namespace: str = "",
    ) -> None:
        if rows < 1 or width < 1:
            raise ValueError("rows and width must be positive")
        if max_cache_entries is None:
            max_cache_entries = self.DEFAULT_MAX_CACHE_ENTRIES
        if max_cache_entries < 0:
            raise ValueError("max_cache_entries cannot be negative")
        self.rows = rows
        self.width = width
        self.max_cache_entries = max_cache_entries
        prefix = f"{namespace}." if namespace else ""
        self._buckets: List[KWiseHash] = hash_family(
            rows, k=2, seed=seed, namespace=f"{prefix}countsketch.buckets"
        )
        self._signs: List[KWiseHash] = hash_family(
            rows, k=4, seed=seed, namespace=f"{prefix}countsketch.signs"
        )
        self._table = np.zeros((rows, width), dtype=np.float64)
        # per-key (bucket, sign) rows, memoized: streams hit the same
        # coordinate many times (e.g. one wedge-vector entry per wedge).
        # Bounded by ``max_cache_entries`` and charged to space_items.
        self._key_cache: dict = {}

    def _locate(self, key: Hashable):
        cached = self._key_cache.get(key)
        if cached is None:
            cached = [
                (self._buckets[r].bucket(key, self.width), self._signs[r].sign(key))
                for r in range(self.rows)
            ]
            if len(self._key_cache) < self.max_cache_entries:
                self._key_cache[key] = cached
        return cached

    def update(self, key: Hashable, delta: float = 1.0) -> None:
        """Apply ``f[key] += delta``."""
        for r, (bucket, sign) in enumerate(self._locate(key)):
            self._table[r, bucket] += delta * sign

    def update_batch(
        self,
        keys: Sequence[Hashable],
        deltas: Optional[Sequence[float]] = None,
    ) -> None:
        """Apply ``f[keys[i]] += deltas[i]`` for the whole batch at once.

        Equivalent to a loop of scalar :meth:`update` calls (exactly so
        for integer-valued deltas; up to float summation order in
        general), but hashes the batch with the vectorized polynomial
        kernels and scatters each row with ``np.add.at``.
        """
        stable = stable_key_array(
            keys if isinstance(keys, np.ndarray) else list(keys)
        )
        if stable.size == 0:
            return
        if deltas is None:
            delta_arr = np.ones(stable.size, dtype=np.float64)
        else:
            delta_arr = np.asarray(deltas, dtype=np.float64)
            if delta_arr.shape != (stable.size,):
                raise ValueError(
                    f"deltas shape {delta_arr.shape} does not match "
                    f"{stable.size} keys"
                )
        for r in range(self.rows):
            buckets = self._buckets[r].buckets_array(stable, self.width)
            signs = self._signs[r].signs_array(stable).astype(np.float64)
            np.add.at(self._table[r], buckets, delta_arr * signs)

    def query(self, key: Hashable) -> float:
        """Estimate ``f[key]`` (median over rows)."""
        return median(
            [sign * self._table[r, bucket] for r, (bucket, sign) in enumerate(self._locate(key))]
        )

    def merge(self, other: "CountSketch") -> None:
        """Combine with a sketch of another stream (same layout/seeds)."""
        if self.rows != other.rows or self.width != other.width:
            raise ValueError("can only merge sketches with identical layout")
        if any(a.seed != b.seed for a, b in zip(self._signs, other._signs)):
            raise ValueError("can only merge sketches with identical seeds")
        self._table += other._table

    @property
    def saturation(self) -> float:
        """Fraction of sketch buckets holding a nonzero value."""
        return float(np.count_nonzero(self._table)) / self._table.size

    @property
    def cache_entries(self) -> int:
        """Number of keys currently memoized in the (bucket, sign) cache."""
        return len(self._key_cache)

    @property
    def space_items(self) -> int:
        """Words of state: the table cells plus the live hash memo.

        The memo stores ``rows`` (bucket, sign) pairs per key but is
        charged one word per key, matching the paper's convention of
        counting stored ids rather than bytes.
        """
        return self.rows * self.width + len(self._key_cache)
