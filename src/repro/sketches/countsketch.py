"""CountSketch: linear sketch with per-coordinate recovery.

Each of ``rows`` rows hashes keys into ``width`` buckets (pairwise
independent) with a 4-wise sign; a coordinate's value is recovered as
the median over rows of ``sign * bucket``.  The recovery error of any
single coordinate is ``O(sqrt(F2 / width))`` with high probability.

This is the workhorse inside the l2 sampler (Section 4.2.4) and is
independently useful, so it lives in the substrate.
"""

from __future__ import annotations

from typing import Hashable, List

from .estimators import median
from .hashing import KWiseHash, hash_family


class CountSketch:
    """A ``rows x width`` CountSketch table."""

    def __init__(self, rows: int = 5, width: int = 256, seed: int = 0) -> None:
        if rows < 1 or width < 1:
            raise ValueError("rows and width must be positive")
        self.rows = rows
        self.width = width
        self._buckets: List[KWiseHash] = hash_family(rows, k=2, seed=seed * 2 + 1)
        self._signs: List[KWiseHash] = hash_family(rows, k=4, seed=seed * 2 + 2)
        self._table: List[List[float]] = [[0.0] * width for _ in range(rows)]
        # per-key (bucket, sign) rows, memoized: streams hit the same
        # coordinate many times (e.g. one wedge-vector entry per wedge)
        self._key_cache: dict = {}

    def _locate(self, key: Hashable):
        cached = self._key_cache.get(key)
        if cached is None:
            cached = [
                (self._buckets[r].bucket(key, self.width), self._signs[r].sign(key))
                for r in range(self.rows)
            ]
            self._key_cache[key] = cached
        return cached

    def update(self, key: Hashable, delta: float = 1.0) -> None:
        """Apply ``f[key] += delta``."""
        for r, (bucket, sign) in enumerate(self._locate(key)):
            self._table[r][bucket] += delta * sign

    def query(self, key: Hashable) -> float:
        """Estimate ``f[key]`` (median over rows)."""
        return median(
            [sign * self._table[r][bucket] for r, (bucket, sign) in enumerate(self._locate(key))]
        )

    def merge(self, other: "CountSketch") -> None:
        """Combine with a sketch of another stream (same layout/seeds)."""
        if self.rows != other.rows or self.width != other.width:
            raise ValueError("can only merge sketches with identical layout")
        if any(a.seed != b.seed for a, b in zip(self._signs, other._signs)):
            raise ValueError("can only merge sketches with identical seeds")
        for r in range(self.rows):
            row, other_row = self._table[r], other._table[r]
            for b in range(self.width):
                row[b] += other_row[b]

    @property
    def space_items(self) -> int:
        """Words of state (the table cells)."""
        return self.rows * self.width
