"""Estimator-combination utilities: mean, median, median-of-means.

The paper's algorithms are Monte Carlo: a basic estimator with the
right expectation and bounded variance is repeated and combined.  These
helpers implement the standard combinations with explicit, tested
semantics (even-length medians average the middle pair, empty inputs
raise, group counts are validated).
"""

from __future__ import annotations

from typing import List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; the average of the middle pair for even lengths."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def median_of_means(values: Sequence[float], groups: int) -> float:
    """Split ``values`` into ``groups`` contiguous groups, average each,
    return the median of the averages.

    The classic boost: means drive variance down by the group size,
    the median drives failure probability down exponentially in the
    number of groups.  ``len(values)`` must be divisible by ``groups``.
    """
    if groups < 1:
        raise ValueError(f"need at least one group, got {groups}")
    if not values:
        raise ValueError("median_of_means of empty sequence")
    if len(values) % groups:
        raise ValueError(
            f"{len(values)} values do not split evenly into {groups} groups"
        )
    size = len(values) // groups
    group_means: List[float] = [
        mean(values[g * size : (g + 1) * size]) for g in range(groups)
    ]
    return median(group_means)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth``; exact-zero truth compares exactly."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def within_factor(estimate: float, truth: float, factor: float) -> bool:
    """True when ``truth/factor <= estimate <= truth*factor`` (both > 0)."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if truth <= 0 or estimate <= 0:
        return truth == estimate
    return truth / factor <= estimate <= truth * factor
