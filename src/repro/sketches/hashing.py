"""k-wise independent hash families.

Every randomized choice the algorithms make that must be *queryable
without storing the sample* — "is vertex v in the level-i sample V_i?",
"what is the sign alpha_u?" — goes through a hash function from the
classic polynomial family over the Mersenne prime ``P = 2^61 - 1``:

    h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod P

which is k-wise independent when the coefficients are uniform.  The
paper's algorithms need pairwise (sampling) and 4-wise (the AMS-style
sign vectors of Section 4.2) independence; callers pick ``k``.

Keys may be integers, strings, or (nested) tuples thereof; they are
folded into integers by a fixed injective-enough encoding so that the
same key always maps to the same value regardless of Python's
per-process hash randomization.
"""

from __future__ import annotations

import random
from typing import Hashable, List

MERSENNE_PRIME = (1 << 61) - 1


def stable_key(value: Hashable) -> int:
    """Fold a vertex / edge / tuple key into a non-negative integer.

    Integers map to themselves (offset to be non-negative), strings via
    their UTF-8 bytes, and tuples by polynomial combination — all
    independent of ``PYTHONHASHSEED`` so experiments are reproducible.
    """
    if isinstance(value, bool):  # bool is an int subclass; keep it distinct
        return 7 if value else 11
    if isinstance(value, int):
        return value % MERSENNE_PRIME if value >= 0 else (MERSENNE_PRIME - 1 - (-value % MERSENNE_PRIME))
    if isinstance(value, str):
        acc = 5381
        for byte in value.encode("utf-8"):
            acc = (acc * 131 + byte) % MERSENNE_PRIME
        return acc
    if isinstance(value, tuple):
        acc = 104729
        for item in value:
            acc = (acc * 1000003 + stable_key(item) + 1) % MERSENNE_PRIME
        return acc
    if isinstance(value, frozenset):
        return stable_key(tuple(sorted(stable_key(item) for item in value)))
    raise TypeError(f"unsupported hash key type: {type(value).__name__}")


class KWiseHash:
    """A member of the degree-``(k-1)`` polynomial hash family.

    Provides raw values in ``[0, P)`` plus the derived views the
    algorithms need: uniforms in ``[0, 1)``, Bernoulli indicators,
    +-1 signs, and small-range buckets.
    """

    def __init__(self, k: int, seed: int) -> None:
        if k < 1:
            raise ValueError(f"independence degree must be >= 1, got {k}")
        rng = random.Random(("kwise", k, seed).__repr__())
        self.k = k
        self.seed = seed
        # leading coefficient nonzero keeps the polynomial degree exact
        self._coeffs: List[int] = [rng.randrange(1, MERSENNE_PRIME)]
        self._coeffs.extend(rng.randrange(MERSENNE_PRIME) for _ in range(k - 1))

    def value(self, key: Hashable) -> int:
        """The raw hash value in ``[0, MERSENNE_PRIME)``."""
        x = stable_key(key)
        acc = 0
        for coeff in self._coeffs:
            acc = (acc * x + coeff) % MERSENNE_PRIME
        return acc

    def uniform(self, key: Hashable) -> float:
        """A deterministic pseudo-uniform value in ``(0, 1)``.

        The value is bounded away from zero (by ``1/P``) so it is safe
        to divide by — as the l2 sampler's ``1/sqrt(u)`` scaling does.
        """
        return (self.value(key) + 1) / (MERSENNE_PRIME + 1)

    def bernoulli(self, key: Hashable, p: float) -> bool:
        """Indicator with ``P[true] = p`` — the sampling primitive.

        Membership in a hash-defined sample set is queryable at any time
        without storing the set, exactly as the paper's ``V_i = {v :
        f_i(v) = 1}`` construction requires.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self.value(key) < p * MERSENNE_PRIME

    def sign(self, key: Hashable) -> int:
        """A +-1 value (4-wise independent when ``k >= 4``)."""
        return 1 if self.value(key) & 1 else -1

    def bucket(self, key: Hashable, buckets: int) -> int:
        """A bucket index in ``[0, buckets)`` (CountSketch rows etc.)."""
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        return self.value(key) % buckets

    def choice4(self, key: Hashable, p0: float, p1: float, p2: float) -> int:
        """A four-way choice with probabilities ``p0, p1, p2, 1-p0-p1-p2``.

        Used by the three-pass algorithm's sub-sampling hash ``f`` of
        Section 5.1 (outputs 0/1/2/3).
        """
        if min(p0, p1, p2) < 0 or p0 + p1 + p2 > 1 + 1e-12:
            raise ValueError("probabilities must be non-negative and sum to <= 1")
        u = self.uniform(key)
        if u < p0:
            return 0
        if u < p0 + p1:
            return 1
        if u < p0 + p1 + p2:
            return 2
        return 3


def hash_family(count: int, k: int, seed: int) -> List[KWiseHash]:
    """``count`` independent ``KWiseHash`` functions derived from ``seed``."""
    return [KWiseHash(k, seed=seed * 1_000_003 + 17 * i + 1) for i in range(count)]
