"""k-wise independent hash families.

Every randomized choice the algorithms make that must be *queryable
without storing the sample* — "is vertex v in the level-i sample V_i?",
"what is the sign alpha_u?" — goes through a hash function from the
classic polynomial family over the Mersenne prime ``P = 2^61 - 1``:

    h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod P

which is k-wise independent when the coefficients are uniform.  The
paper's algorithms need pairwise (sampling) and 4-wise (the AMS-style
sign vectors of Section 4.2) independence; callers pick ``k``.

Keys may be integers, strings, or (nested) tuples thereof; they are
folded into integers by a fixed injective-enough encoding so that the
same key always maps to the same value regardless of Python's
per-process hash randomization.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List

import numpy as np

from ..seeding import component_rng

MERSENNE_PRIME = (1 << 61) - 1

_P64 = np.uint64(MERSENNE_PRIME)
_SHIFT61 = np.uint64(61)
_MASK31 = np.uint64((1 << 31) - 1)
_MASK30 = np.uint64((1 << 30) - 1)


def _mod_p(x: "np.ndarray") -> "np.ndarray":
    """Reduce uint64 values ``< 2**63`` modulo ``2**61 - 1``.

    Uses the Mersenne fold ``x mod p = (x >> 61) + (x & p)`` twice plus a
    final conditional subtraction, all branch-free on arrays.
    """
    x = (x >> _SHIFT61) + (x & _P64)
    x = (x >> _SHIFT61) + (x & _P64)
    return np.where(x >= _P64, x - _P64, x)


def _mulmod_p(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    """``a * b mod (2**61 - 1)`` for uint64 arrays with entries ``< 2**61``.

    Splits both operands into 31/30-bit halves so every intermediate
    product fits in 64 bits:

        a*b = a1*b1*2^62 + (a1*b0 + a0*b1)*2^31 + a0*b0,   2^62 = 2 (mod p)
    """
    a1 = a >> np.uint64(31)
    a0 = a & _MASK31
    b1 = b >> np.uint64(31)
    b0 = b & _MASK31
    top = _mod_p(_mod_p(a1 * b1) << np.uint64(1))
    mid = _mod_p(a1 * b0 + a0 * b1)
    # mid * 2^31 mod p: split mid = m1*2^30 + m0, and 2^61 = 1 (mod p)
    m1 = mid >> np.uint64(30)
    m0 = mid & _MASK30
    mid_term = _mod_p(m1 + (m0 << np.uint64(31)))
    low = _mod_p(a0 * b0)
    return _mod_p(top + _mod_p(mid_term + low))


def stable_key_array(keys: Iterable[Hashable]) -> "np.ndarray":
    """Vectorized :func:`stable_key`: fold a batch of keys to uint64 < P.

    Integer arrays are folded with array arithmetic; anything else
    (tuples, strings, mixed lists) falls back to the scalar encoder per
    element.  Both paths agree exactly with :func:`stable_key`.
    """
    if not isinstance(keys, np.ndarray) and isinstance(keys, (list, tuple, range)):
        try:
            candidate = np.asarray(keys)
        except (OverflowError, ValueError):  # e.g. ints beyond int64
            candidate = None
        if (
            candidate is not None
            and candidate.ndim == 1
            and np.issubdtype(candidate.dtype, np.integer)
        ):
            keys = candidate
    if isinstance(keys, np.ndarray) and np.issubdtype(keys.dtype, np.integer):
        values = keys.astype(np.int64, copy=False)
        # Both branches only ever take modulo of non-negative int64, where
        # C and Python semantics agree; results are < P < 2**61.
        folded = np.where(
            values < 0,
            MERSENNE_PRIME - 1 - (np.abs(values) % MERSENNE_PRIME),
            values % MERSENNE_PRIME,
        )
        return folded.astype(np.uint64)
    materialized = keys if hasattr(keys, "__len__") else list(keys)
    return np.fromiter(
        (stable_key(key) for key in materialized),
        dtype=np.uint64,
        count=len(materialized),  # type: ignore[arg-type]
    )


def stable_key(value: Hashable) -> int:
    """Fold a vertex / edge / tuple key into a non-negative integer.

    Integers map to themselves (offset to be non-negative), strings via
    their UTF-8 bytes, and tuples by polynomial combination — all
    independent of ``PYTHONHASHSEED`` so experiments are reproducible.
    """
    if isinstance(value, bool):  # bool is an int subclass; keep it distinct
        return 7 if value else 11
    if isinstance(value, int):
        return value % MERSENNE_PRIME if value >= 0 else (MERSENNE_PRIME - 1 - (-value % MERSENNE_PRIME))
    if isinstance(value, str):
        acc = 5381
        for byte in value.encode("utf-8"):
            acc = (acc * 131 + byte) % MERSENNE_PRIME
        return acc
    if isinstance(value, tuple):
        acc = 104729
        for item in value:
            acc = (acc * 1000003 + stable_key(item) + 1) % MERSENNE_PRIME
        return acc
    if isinstance(value, frozenset):
        # Domain-separated from tuples: a frozenset used to hash as the
        # tuple of its sorted member keys *by construction*, so e.g.
        # frozenset({1, 2}) and (1, 2) collided under every hash
        # function.  A distinct accumulator seed and multiplier keep
        # the set domain disjoint from the tuple domain.
        acc = 15485863
        for item_key in sorted(stable_key(item) for item in value):
            acc = (acc * 999983 + item_key + 1) % MERSENNE_PRIME
        return acc
    raise TypeError(f"unsupported hash key type: {type(value).__name__}")


class KWiseHash:
    """A member of the degree-``(k-1)`` polynomial hash family.

    Provides raw values in ``[0, P)`` plus the derived views the
    algorithms need: uniforms in ``[0, 1)``, Bernoulli indicators,
    +-1 signs, and small-range buckets.
    """

    def __init__(self, k: int, seed: int, namespace: str = "") -> None:
        if k < 1:
            raise ValueError(f"independence degree must be >= 1, got {k}")
        # Coefficients come from a namespaced digest of (k, namespace,
        # seed) — not the raw seed, and not a tuple-``repr`` — so two
        # consumers of the family given the same integer seed draw
        # decorrelated functions as long as their namespaces differ.
        rng = component_rng("sketch:kwise-hash", k, namespace, seed=seed)
        self.k = k
        self.seed = seed
        self.namespace = namespace
        # leading coefficient nonzero keeps the polynomial degree exact
        self._coeffs: List[int] = [rng.randrange(1, MERSENNE_PRIME)]
        self._coeffs.extend(rng.randrange(MERSENNE_PRIME) for _ in range(k - 1))

    def value(self, key: Hashable) -> int:
        """The raw hash value in ``[0, MERSENNE_PRIME)``."""
        x = stable_key(key)
        acc = 0
        for coeff in self._coeffs:
            acc = (acc * x + coeff) % MERSENNE_PRIME
        return acc

    def uniform(self, key: Hashable) -> float:
        """A deterministic pseudo-uniform value in ``(0, 1)``.

        The value is bounded away from zero (by ``1/P``) so it is safe
        to divide by — as the l2 sampler's ``1/sqrt(u)`` scaling does.
        """
        return (self.value(key) + 1) / (MERSENNE_PRIME + 1)

    def bernoulli(self, key: Hashable, p: float) -> bool:
        """Indicator with ``P[true] = p`` — the sampling primitive.

        Membership in a hash-defined sample set is queryable at any time
        without storing the set, exactly as the paper's ``V_i = {v :
        f_i(v) = 1}`` construction requires.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self.value(key) < p * MERSENNE_PRIME

    def sign(self, key: Hashable) -> int:
        """A +-1 value (4-wise independent when ``k >= 4``)."""
        return 1 if self.value(key) & 1 else -1

    def bucket(self, key: Hashable, buckets: int) -> int:
        """A bucket index in ``[0, buckets)`` (CountSketch rows etc.)."""
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        return self.value(key) % buckets

    # ------------------------------------------------------------------
    # vectorized kernels (batch views of the same hash function)
    # ------------------------------------------------------------------
    def values_array(self, stable_keys: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`value` over pre-folded keys.

        ``stable_keys`` must be a uint64 array of :func:`stable_key`
        outputs (see :func:`stable_key_array`).  Returns uint64 values in
        ``[0, MERSENNE_PRIME)`` identical to the scalar path, evaluated
        by Horner's rule with the branch-free Mersenne ``mulmod``.
        """
        x = np.asarray(stable_keys, dtype=np.uint64)
        acc = np.zeros_like(x)
        for coeff in self._coeffs:
            acc = _mod_p(_mulmod_p(acc, x) + np.uint64(coeff))
        return acc

    def uniforms_array(self, stable_keys: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`uniform` (float64 in ``(0, 1)``)."""
        values = self.values_array(stable_keys)
        return (values.astype(np.float64) + 1.0) / float(MERSENNE_PRIME + 1)

    def bernoulli_array(self, stable_keys: "np.ndarray", p: float) -> "np.ndarray":
        """Vectorized :meth:`bernoulli` (bool array)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        # The scalar path compares the exact integer value against the
        # float p*P; ``value < t`` over integers is ``value < ceil(t)``,
        # which keeps the comparison exact in uint64.
        threshold = np.uint64(math.ceil(p * MERSENNE_PRIME))
        return self.values_array(stable_keys) < threshold

    def signs_array(self, stable_keys: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`sign` (int64 array of +-1)."""
        values = self.values_array(stable_keys)
        return np.where(values & np.uint64(1), 1, -1).astype(np.int64)

    def buckets_array(self, stable_keys: "np.ndarray", buckets: int) -> "np.ndarray":
        """Vectorized :meth:`bucket` (int64 array in ``[0, buckets)``)."""
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        return (self.values_array(stable_keys) % np.uint64(buckets)).astype(np.int64)

    def choice4(self, key: Hashable, p0: float, p1: float, p2: float) -> int:
        """A four-way choice with probabilities ``p0, p1, p2, 1-p0-p1-p2``.

        Used by the three-pass algorithm's sub-sampling hash ``f`` of
        Section 5.1 (outputs 0/1/2/3).
        """
        if min(p0, p1, p2) < 0 or p0 + p1 + p2 > 1 + 1e-12:
            raise ValueError("probabilities must be non-negative and sum to <= 1")
        u = self.uniform(key)
        if u < p0:
            return 0
        if u < p0 + p1:
            return 1
        if u < p0 + p1 + p2:
            return 2
        return 3


def hash_family(
    count: int, k: int, seed: int, namespace: str = ""
) -> List[KWiseHash]:
    """``count`` independent ``KWiseHash`` functions derived from ``seed``.

    Member ``i`` lives in the sub-namespace ``f"{namespace}[{i}]"`` —
    structured derivation, not the old ``seed * 1_000_003 + 17 i + 1``
    arithmetic whose images could collide with other components' linear
    seed maps.
    """
    return [
        KWiseHash(k, seed=seed, namespace=f"{namespace}[{i}]") for i in range(count)
    ]
