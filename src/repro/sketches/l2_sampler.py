"""Approximate l2 sampling (Section 4.2.4's substrate).

Given a stream of updates to a vector ``f``, an l2 sampler outputs a
coordinate ``i`` with probability (approximately) proportional to
``f_i^2``, together with an estimate of ``f_i``.  We implement the
precision-sampling design of Jowhari–Saglam–Tardos / Andoni et al.:

* every coordinate gets a fixed pseudo-uniform ``u_i`` in (0, 1) from a
  hash function (so no per-coordinate state is needed);
* the stream is sketched with a CountSketch of the *scaled* vector
  ``g_i = f_i / sqrt(u_i)``;
* at extraction time, the largest ``|g_i|`` among the candidate domain
  is accepted iff ``g_i^2 >= F2(f) / accept_scale`` — which happens iff
  ``u_i <= accept_scale * f_i^2 / F2``, an event of probability
  proportional to ``f_i^2``.

A single :class:`L2Sampler` succeeds with probability about
``1 / accept_scale``; :class:`L2SamplerBank` runs many independent
copies so callers can draw many (approximately) independent samples
from one pass.

The candidate domain must be supplied at extraction time (we cannot
enumerate an implicit domain from the sketch alone); for the wedge
vector this is all vertex pairs, which is fine at experiment scale.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Tuple

from ..seeding import derive_seed
from .countsketch import CountSketch
from .hashing import KWiseHash


class L2Sampler:
    """One precision-sampling copy (succeeds with prob ~ 1/accept_scale)."""

    def __init__(
        self,
        seed: int = 0,
        rows: int = 5,
        width: int = 512,
        accept_scale: float = 4.0,
    ) -> None:
        if accept_scale <= 1.0:
            raise ValueError(f"accept_scale must exceed 1, got {accept_scale}")
        self.accept_scale = accept_scale
        self._uniforms = KWiseHash(k=2, seed=seed, namespace="l2-sampler.uniforms")
        self._sketch = CountSketch(
            rows=rows, width=width, seed=seed, namespace="l2-sampler"
        )
        self._scale_cache: dict = {}

    def _scale(self, key: Hashable) -> float:
        cached = self._scale_cache.get(key)
        if cached is None:
            cached = 1.0 / math.sqrt(self._uniforms.uniform(key))
            self._scale_cache[key] = cached
        return cached

    def update(self, key: Hashable, delta: float = 1.0) -> None:
        """Apply ``f[key] += delta`` (sketched as ``g[key] += delta/sqrt(u)``)."""
        self._sketch.update(key, delta * self._scale(key))

    def sample(
        self, candidates: Iterable[Hashable], f2_estimate: float
    ) -> Optional[Tuple[Hashable, float]]:
        """Attempt to draw a sample.

        Args:
            candidates: the coordinate domain to search (e.g. all vertex
                pairs).  Coordinates outside it can never be returned.
            f2_estimate: an estimate of ``F2(f)`` (from an AMS sketch or
                exact bookkeeping) used for the acceptance threshold.

        Returns:
            ``(key, f_estimate)`` on success, ``None`` if this copy's
            scaled maximum did not clear the threshold (the expected
            outcome for most copies — run a bank of them).
        """
        if f2_estimate < 0:
            raise ValueError("F2 estimate cannot be negative")
        best_key: Optional[Hashable] = None
        best_scaled = 0.0
        for key in candidates:
            scaled = self._sketch.query(key)
            if abs(scaled) > abs(best_scaled):
                best_scaled = scaled
                best_key = key
        if best_key is None:
            return None
        threshold = f2_estimate / self.accept_scale
        if best_scaled * best_scaled < threshold:
            return None
        f_estimate = best_scaled * math.sqrt(self._uniforms.uniform(best_key))
        return best_key, f_estimate

    @property
    def space_items(self) -> int:
        return self._sketch.space_items

    @property
    def saturation(self) -> float:
        return self._sketch.saturation


class L2SamplerBank:
    """``count`` independent l2 samplers fed the same update stream."""

    def __init__(
        self,
        count: int,
        seed: int = 0,
        rows: int = 5,
        width: int = 512,
        accept_scale: float = 4.0,
    ) -> None:
        if count < 1:
            raise ValueError(f"need at least one sampler, got {count}")
        self._samplers: List[L2Sampler] = [
            L2Sampler(
                seed=derive_seed("sketch:l2-sampler-bank", j, seed=seed),
                rows=rows,
                width=width,
                accept_scale=accept_scale,
            )
            for j in range(count)
        ]

    def __len__(self) -> int:
        return len(self._samplers)

    def update(self, key: Hashable, delta: float = 1.0) -> None:
        for sampler in self._samplers:
            sampler.update(key, delta)

    def samples(
        self, candidates: Iterable[Hashable], f2_estimate: float
    ) -> List[Tuple[Hashable, float]]:
        """Extract every successful sample across the bank.

        ``candidates`` may be consumed multiple times, so pass a
        re-iterable (list, or a callable domain wrapped by the caller).
        """
        candidate_list = list(candidates)
        results: List[Tuple[Hashable, float]] = []
        for sampler in self._samplers:
            drawn = sampler.sample(candidate_list, f2_estimate)
            if drawn is not None:
                results.append(drawn)
        return results

    @property
    def space_items(self) -> int:
        return sum(sampler.space_items for sampler in self._samplers)

    @property
    def saturation(self) -> float:
        """Mean bucket saturation across the bank's sketches."""
        if not self._samplers:
            return 0.0
        return sum(s.saturation for s in self._samplers) / len(self._samplers)
