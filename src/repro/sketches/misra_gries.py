"""Misra–Gries frequent-items summary.

The deterministic heavy-hitters workhorse: ``k`` counters over a
stream of items guarantee, for every item, an estimate within
``total / (k + 1)`` *below* its true count (never above).  Included as
substrate because heavy-object identification is the recurring motif
of the paper — hash-sampled oracles (Theorem 2.1), Useful-Algorithm
classifiers (Theorem 5.3) — and Misra–Gries is the classical
deterministic alternative the ablation benchmark compares against.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple


class MisraGries:
    """A ``k``-counter Misra–Gries summary.

    Guarantees after processing ``n`` items: for every item ``x``,

        count(x) - n / (k + 1)  <=  estimate(x)  <=  count(x).
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"need at least one counter, got {k}")
        self.k = k
        self._counters: Dict[Hashable, int] = {}
        self._processed = 0
        self._promotions = 0
        self._decrement_rounds = 0

    def update(self, item: Hashable, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item``."""
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self._processed += count
        if item in self._counters:
            self._counters[item] += count
            return
        if len(self._counters) < self.k:
            self._counters[item] = count
            self._promotions += 1
            return
        # decrement-all step; may need several rounds for count > 1
        remaining = count
        while remaining > 0:
            self._decrement_rounds += 1
            decrement = min(remaining, min(self._counters.values()))
            remaining -= decrement
            for key in list(self._counters):
                self._counters[key] -= decrement
                if self._counters[key] == 0:
                    del self._counters[key]
            if remaining > 0 and len(self._counters) < self.k:
                self._counters[item] = remaining
                self._promotions += 1
                remaining = 0

    def estimate(self, item: Hashable) -> int:
        """Lower-bound estimate of ``item``'s count (0 if untracked)."""
        return self._counters.get(item, 0)

    def heavy_hitters(self, threshold: float) -> List[Tuple[Hashable, int]]:
        """Items whose estimate reaches ``threshold * processed``.

        Guaranteed to include every item with true frequency at least
        ``threshold + 1/(k+1)``; may include items above ``threshold -
        1/(k+1)``.
        """
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        cutoff = threshold * self._processed
        return sorted(
            ((item, c) for item, c in self._counters.items() if c >= cutoff),
            key=lambda pair: -pair[1],
        )

    @property
    def processed(self) -> int:
        return self._processed

    @property
    def error_bound(self) -> float:
        """The maximum undercount: ``processed / (k + 1)``."""
        return self._processed / (self.k + 1)

    @property
    def promotions(self) -> int:
        """How many items were granted a counter (first time or again)."""
        return self._promotions

    @property
    def decrement_rounds(self) -> int:
        """How many decrement-all rounds the summary performed."""
        return self._decrement_rounds

    @property
    def space_items(self) -> int:
        return len(self._counters)
