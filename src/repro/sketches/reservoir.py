"""Reservoir sampling.

Used by the TRIEST baseline and the Bera–Chakrabarti-style baseline to
hold uniform samples of a stream whose length is unknown in advance.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

from ..seeding import component_rng

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Classic Algorithm R: a uniform sample of ``capacity`` items.

    After ``t`` items have been offered, the reservoir holds a uniform
    random subset of size ``min(t, capacity)``.  :meth:`add` reports
    which item (if any) was evicted so callers — e.g. TRIEST — can keep
    auxiliary state consistent with the reservoir contents.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = component_rng("sketch:reservoir-sampler", capacity, seed=seed)
        self._items: List[T] = []
        self._offered = 0
        self._evictions = 0

    def add(self, item: T) -> Optional[T]:
        """Offer an item.

        Returns:
            The item evicted to make room (or the offered item itself if
            it was rejected), or ``None`` if the reservoir simply grew.
        """
        self._offered += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return None
        slot = self._rng.randrange(self._offered)
        if slot < self.capacity:
            evicted = self._items[slot]
            self._items[slot] = item
            self._evictions += 1
            return evicted
        return item  # offered item rejected

    @property
    def items(self) -> List[T]:
        """Current reservoir contents (a copy)."""
        return list(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def offered(self) -> int:
        """Total items offered so far."""
        return self._offered

    @property
    def evictions(self) -> int:
        """How many resident items were displaced by replacements."""
        return self._evictions


class UniformItemSampler(Generic[T]):
    """A single uniform item from a stream (reservoir of capacity 1)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = component_rng("sketch:uniform-item-sampler", seed=seed)
        self._item: Optional[T] = None
        self._offered = 0

    def add(self, item: T) -> None:
        self._offered += 1
        if self._rng.randrange(self._offered) == 0:
            self._item = item

    @property
    def item(self) -> Optional[T]:
        return self._item

    @property
    def offered(self) -> int:
        return self._offered
