"""Stream models, validation policies and space accounting."""

from .file_stream import FileEdgeStream
from .meter import SpaceMeter
from .orders import (
    ORDER_FACTORIES,
    heavy_edges_first,
    heavy_edges_last,
    sorted_order,
    stream_with_order,
    vertex_grouped_order,
)
from .models import (
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
    StreamSource,
)
from .policies import (
    POLICIES,
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    StreamFaultError,
    check_policy,
)
from .validation import ValidatedStream

__all__ = [
    "SpaceMeter",
    "FileEdgeStream",
    "StreamSource",
    "ArbitraryOrderStream",
    "RandomOrderStream",
    "AdjacencyListStream",
    "ValidatedStream",
    "POLICIES",
    "POLICY_STRICT",
    "POLICY_REPAIR",
    "POLICY_SKIP",
    "StreamFaultError",
    "check_policy",
    "ORDER_FACTORIES",
    "stream_with_order",
    "sorted_order",
    "heavy_edges_first",
    "heavy_edges_last",
    "vertex_grouped_order",
]
