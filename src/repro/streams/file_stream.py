"""Streaming a graph straight off disk.

The in-memory stream sources (:mod:`repro.streams.models`) materialize
the edge list; that is fine for experiments but defeats the point of a
streaming algorithm on data larger than memory.  ``FileEdgeStream``
iterates an edge-list file directly: one pass reads the file once, and
the only O(m) state is a duplicate filter that can be switched off for
pre-deduplicated data (the common case for published datasets).

The file's line order is the arrival order — i.e. this is an
*arbitrary order* stream.  For the random-order model, shuffle the
file once offline (``repro.graphs.io.write_edge_list`` after a
permutation) rather than in memory.

Malformed lines are governed by the same validation policies as the
in-memory models (:mod:`repro.streams.policies`): the default is
``repair`` — drop self loops and (when ``deduplicate``) repeated edges,
counting them into the active telemetry as ``stream.faults.<kind>`` —
while ``strict`` raises :class:`StreamFaultError` on the first fault.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set

from ..graphs.graph import Edge, normalize_edge
from ..graphs.io import PathLike, iter_edge_list
from .models import StreamSource
from .policies import (
    POLICY_REPAIR,
    POLICY_STRICT,
    StreamFaultError,
    check_policy,
    emit_fault_counts,
)


class FileEdgeStream(StreamSource):
    """An arbitrary-order stream backed by an edge-list file.

    Args:
        path: edge-list file (see :mod:`repro.graphs.io` for the format).
        deduplicate: drop repeated edges while streaming.  Requires
            O(m) memory for the filter; turn off for clean data to
            stream in O(1) memory.
        precounted: optional ``(num_vertices, num_edges)`` if known,
            avoiding the initial counting pass.
        policy: fault handling (``strict`` / ``repair`` / ``skip``);
            under ``strict`` a self loop or duplicate raises
            :class:`StreamFaultError` (duplicates only when
            ``deduplicate`` is on, since detection needs the filter).

    The constructor takes one scan to count vertices/edges (algorithms
    need ``m`` up front, per the paper's convention) unless
    ``precounted`` is given.
    """

    def __init__(
        self,
        path: PathLike,
        deduplicate: bool = True,
        precounted: Optional[tuple] = None,
        policy: str = POLICY_REPAIR,
    ) -> None:
        super().__init__()
        self._path = path
        self._deduplicate = deduplicate
        self._policy = check_policy(policy)
        if precounted is not None:
            self._num_vertices, self._num_edges = precounted
        else:
            self._num_vertices, self._num_edges = self._count()

    def _count(self) -> tuple:
        vertices = set()
        seen: Set[Edge] = set()
        count = 0
        for u, v in iter_edge_list(self._path):
            if u == v:
                if self._policy == POLICY_STRICT:
                    raise StreamFaultError(
                        f"self loop {u!r}-{u!r} in {self._path} (strict policy)"
                    )
                continue
            edge = normalize_edge(u, v)
            if self._deduplicate:
                if edge in seen:
                    if self._policy == POLICY_STRICT:
                        raise StreamFaultError(
                            f"duplicate edge {edge!r} in {self._path} "
                            "(strict policy)"
                        )
                    continue
                seen.add(edge)
            count += 1
            vertices.add(u)
            vertices.add(v)
        return len(vertices), count

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def path(self) -> PathLike:
        return self._path

    def _tokens(self) -> Iterator[Edge]:
        seen: Optional[Set[Edge]] = set() if self._deduplicate else None
        counts: Dict[str, int] = {}
        try:
            for u, v in iter_edge_list(self._path):
                if u == v:
                    if self._policy == POLICY_STRICT:
                        raise StreamFaultError(
                            f"self loop {u!r}-{u!r} in {self._path} "
                            "(strict policy)"
                        )
                    counts["self_loop"] = counts.get("self_loop", 0) + 1
                    continue
                edge = normalize_edge(u, v)
                if seen is not None:
                    if edge in seen:
                        if self._policy == POLICY_STRICT:
                            raise StreamFaultError(
                                f"duplicate edge {edge!r} in {self._path} "
                                "(strict policy)"
                            )
                        counts["duplicate"] = counts.get("duplicate", 0) + 1
                        continue
                    seen.add(edge)
                yield edge
        finally:
            emit_fault_counts(counts)
