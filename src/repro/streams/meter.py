"""Space accounting for streaming algorithms.

The paper measures space in *words*: the number of edges, vertex ids
and counters an algorithm keeps.  Measuring Python object sizes would
drown the asymptotics in interpreter overhead, so every algorithm in
:mod:`repro.core` and :mod:`repro.baselines` reports its storage through
a :class:`SpaceMeter` that tracks named item counts and their peak.

Usage::

    meter = SpaceMeter()
    meter.add("sampled_edges", 1)        # stored one more edge
    meter.add("sampled_edges", -1)       # evicted one
    meter.set("counters", 3 * n)         # fixed-size counter bank
    meter.peak                            # max total items ever held
    meter.breakdown()                     # per-category peaks
    meter.timeline()                      # (mutation_index, total) samples

Mutations that belong to one logical step — e.g. rebuilding two
categories where one shrinks before the other grows — can be wrapped in
``with meter.step():`` so that intermediate states are not recorded as
peaks (only the state at step exit counts).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple


class SpaceMeter:
    """Tracks the number of stored items, per named category and overall.

    Besides the running peak, the meter keeps a decimated *timeline* of
    ``(mutation_index, total_items)`` samples: every ``timeline_stride``-th
    mutation is recorded, and when the buffer reaches
    ``timeline_capacity`` samples it is thinned by half and the stride
    doubled, so memory stays bounded while the full run remains covered.
    Pass ``timeline_capacity=0`` to disable timeline recording entirely
    (used by the telemetry-off overhead benchmark as the comparator).
    """

    DEFAULT_TIMELINE_CAPACITY = 512

    def __init__(self, timeline_capacity: int = DEFAULT_TIMELINE_CAPACITY) -> None:
        self._current: dict = {}
        self._peak_per_category: dict = {}
        self._peak_total = 0
        self._current_total = 0
        self._in_step = False
        self._mutations = 0
        self._timeline_capacity = timeline_capacity
        self._timeline_stride = 1
        self._timeline: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def add(self, category: str, count: int = 1) -> None:
        """Adjust the live item count of ``category`` by ``count``.

        Negative ``count`` models evictions; the live count may not go
        below zero (that would indicate an accounting bug, so it raises).
        """
        new_value = self._current.get(category, 0) + count
        if new_value < 0:
            raise ValueError(
                f"space meter for {category!r} went negative ({new_value})"
            )
        self._current[category] = new_value
        self._current_total += count
        self._refresh(category)

    def set(self, category: str, count: int) -> None:
        """Set the live item count of ``category`` to an absolute value."""
        if count < 0:
            raise ValueError(f"space meter cannot be negative, got {count}")
        self._current_total += count - self._current.get(category, 0)
        self._current[category] = count
        self._refresh(category)

    @contextmanager
    def step(self) -> Iterator["SpaceMeter"]:
        """Group mutations into one logical step for peak accounting.

        Inside the block, ``add``/``set`` update live counts but defer
        peak (and timeline) updates to block exit, so a rebuild that
        shrinks one category before growing another does not record a
        phantom peak from an intermediate state that never co-existed
        with the final one.  Steps do not nest (the outer step wins).
        """
        if self._in_step:
            yield self
            return
        self._in_step = True
        try:
            yield self
        finally:
            self._in_step = False
            for category, value in self._current.items():
                if value > self._peak_per_category.get(category, 0):
                    self._peak_per_category[category] = value
            self._commit_total()

    def _refresh(self, category: str) -> None:
        if self._in_step:
            return
        value = self._current[category]
        if value > self._peak_per_category.get(category, 0):
            self._peak_per_category[category] = value
        self._commit_total()

    def _commit_total(self) -> None:
        total = self._current_total
        if total > self._peak_total:
            self._peak_total = total
        self._mutations += 1
        if self._timeline_capacity <= 0:
            return
        if self._mutations % self._timeline_stride == 0:
            self._timeline.append((self._mutations, total))
            if len(self._timeline) >= self._timeline_capacity:
                # Thin to every other sample; doubling the stride keeps
                # future samples aligned with the survivors.
                self._timeline = self._timeline[1::2]
                self._timeline_stride *= 2

    # ------------------------------------------------------------------
    @property
    def current(self) -> int:
        """Total items held right now."""
        return self._current_total

    @property
    def peak(self) -> int:
        """Maximum total items held at any point so far."""
        return self._peak_total

    @property
    def mutations(self) -> int:
        """Number of committed meter updates (steps count as one)."""
        return self._mutations

    def current_of(self, category: str) -> int:
        return self._current.get(category, 0)

    def peak_of(self, category: str) -> int:
        return self._peak_per_category.get(category, 0)

    def breakdown(self) -> dict:
        """Per-category peak item counts (a copy)."""
        return dict(self._peak_per_category)

    def timeline(self, max_points: Optional[int] = None) -> List[Tuple[int, int]]:
        """Decimated ``(mutation_index, total_items)`` samples, in order.

        ``max_points`` further downsamples the returned copy (evenly,
        always keeping the last sample) — handy for embedding in span
        attributes without bloating the trace file.
        """
        samples = list(self._timeline)
        if max_points is not None and max_points > 0 and len(samples) > max_points:
            stride = -(-len(samples) // max_points)  # ceil division
            kept = samples[::stride]
            if kept[-1] != samples[-1]:
                kept.append(samples[-1])
            samples = kept
        return samples

    def merge(self, other: "SpaceMeter", prefix: str = "") -> None:
        """Fold another meter's peaks into this one (for sub-algorithms).

        Each of ``other``'s categories is recorded here (optionally
        prefixed) at its peak value, and the total peak grows by the
        other's total peak — a conservative upper bound appropriate for
        sub-algorithms that ran concurrently with this one.
        """
        for category, value in other._peak_per_category.items():
            name = f"{prefix}{category}"
            self._peak_per_category[name] = (
                self._peak_per_category.get(name, 0) + value
            )
            incoming = other._current.get(category, 0)
            self._current[name] = self._current.get(name, 0) + incoming
            self._current_total += incoming
        self._peak_total += other._peak_total

    def __repr__(self) -> str:
        return f"SpaceMeter(current={self.current}, peak={self.peak})"
