"""Space accounting for streaming algorithms.

The paper measures space in *words*: the number of edges, vertex ids
and counters an algorithm keeps.  Measuring Python object sizes would
drown the asymptotics in interpreter overhead, so every algorithm in
:mod:`repro.core` and :mod:`repro.baselines` reports its storage through
a :class:`SpaceMeter` that tracks named item counts and their peak.

Usage::

    meter = SpaceMeter()
    meter.add("sampled_edges", 1)        # stored one more edge
    meter.add("sampled_edges", -1)       # evicted one
    meter.set("counters", 3 * n)         # fixed-size counter bank
    meter.peak                            # max total items ever held
    meter.breakdown()                     # per-category peaks
"""

from __future__ import annotations

from typing import Dict


class SpaceMeter:
    """Tracks the number of stored items, per named category and overall."""

    def __init__(self) -> None:
        self._current: Dict[str, int] = {}
        self._peak_per_category: Dict[str, int] = {}
        self._peak_total = 0

    # ------------------------------------------------------------------
    def add(self, category: str, count: int = 1) -> None:
        """Adjust the live item count of ``category`` by ``count``.

        Negative ``count`` models evictions; the live count may not go
        below zero (that would indicate an accounting bug, so it raises).
        """
        new_value = self._current.get(category, 0) + count
        if new_value < 0:
            raise ValueError(
                f"space meter for {category!r} went negative ({new_value})"
            )
        self._current[category] = new_value
        self._refresh(category)

    def set(self, category: str, count: int) -> None:
        """Set the live item count of ``category`` to an absolute value."""
        if count < 0:
            raise ValueError(f"space meter cannot be negative, got {count}")
        self._current[category] = count
        self._refresh(category)

    def _refresh(self, category: str) -> None:
        value = self._current[category]
        if value > self._peak_per_category.get(category, 0):
            self._peak_per_category[category] = value
        total = self.current
        if total > self._peak_total:
            self._peak_total = total

    # ------------------------------------------------------------------
    @property
    def current(self) -> int:
        """Total items held right now."""
        return sum(self._current.values())

    @property
    def peak(self) -> int:
        """Maximum total items held at any point so far."""
        return self._peak_total

    def current_of(self, category: str) -> int:
        return self._current.get(category, 0)

    def peak_of(self, category: str) -> int:
        return self._peak_per_category.get(category, 0)

    def breakdown(self) -> Dict[str, int]:
        """Per-category peak item counts (a copy)."""
        return dict(self._peak_per_category)

    def merge(self, other: "SpaceMeter", prefix: str = "") -> None:
        """Fold another meter's peaks into this one (for sub-algorithms).

        Each of ``other``'s categories is recorded here (optionally
        prefixed) at its peak value, and the total peak grows by the
        other's total peak — a conservative upper bound appropriate for
        sub-algorithms that ran concurrently with this one.
        """
        for category, value in other._peak_per_category.items():
            name = f"{prefix}{category}"
            self._peak_per_category[name] = (
                self._peak_per_category.get(name, 0) + value
            )
            self._current[name] = self._current.get(name, 0) + other._current.get(
                category, 0
            )
        self._peak_total += other._peak_total

    def __repr__(self) -> str:
        return f"SpaceMeter(current={self.current}, peak={self.peak})"
