"""The three graph stream models of the paper.

* :class:`ArbitraryOrderStream` — edges in a fixed, adversary-chosen
  order (Section 5).
* :class:`RandomOrderStream` — a uniformly random permutation of the
  edges (Section 2).  The permutation is drawn once per stream
  *instance*; a multi-pass algorithm replays the same permutation each
  pass, matching the model's semantics.
* :class:`AdjacencyListStream` — every edge appears twice, grouped by
  endpoint (Section 4): first inside the adjacency list of the endpoint
  whose list comes earlier, then again in the other endpoint's list.

All sources are re-iterable; each call to :meth:`StreamSource.edges`
(or :meth:`AdjacencyListStream.adjacency_lists`) is one pass, and the
source counts passes so experiments can assert the pass budget.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..graphs.graph import Edge, Graph, Vertex, normalize_edge
from ..seeding import component_rng
from .. import obs as _obs
from .policies import (
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    StreamFaultError,
    check_policy,
    emit_fault_counts,
    scrub_graph_edges,
    scrub_neighbors,
)


def _counting_tokens(tokens: Iterator[Edge], metric: str) -> Iterator[Edge]:
    """Yield ``tokens`` while counting them into the active telemetry.

    The count is emitted once, in a ``finally`` block, so the per-token
    cost is a bare integer increment and early-terminated passes (an
    algorithm breaking out of the stream) still report what they read.
    """
    consumed = 0
    try:
        for token in tokens:
            consumed += 1
            yield token
    finally:
        _obs.current().metrics.inc(metric, consumed)


class StreamSource(ABC):
    """A re-iterable source of edge tokens over a fixed graph."""

    def __init__(self) -> None:
        self._passes = 0

    @property
    @abstractmethod
    def num_vertices(self) -> int:
        """Number of vertices ``n`` of the underlying graph."""

    @property
    @abstractmethod
    def num_edges(self) -> int:
        """Number of edges ``m`` of the underlying graph.

        Knowing ``m`` up front is the standard convention the paper
        adopts (prefix lengths such as ``q_i * m`` depend on it).
        """

    @property
    def stream_length(self) -> int:
        """Number of tokens in one pass (``m``, or ``2m`` for adjacency)."""
        return self.num_edges

    @property
    def passes_taken(self) -> int:
        """How many passes have been started on this source."""
        return self._passes

    @property
    def provides_adjacency(self) -> bool:
        """Whether this source yields vertex-grouped adjacency blocks.

        Section 4 algorithms require adjacency semantics; decorators
        (fault injection, validation) forward their base's answer, so
        this — not an ``isinstance`` check — is the model test.
        """
        return False

    @abstractmethod
    def _tokens(self) -> Iterator[Edge]:
        """Yield the edge tokens of a single pass, in stream order."""

    def edges(self) -> Iterator[Edge]:
        """Begin a new pass and iterate its edge tokens."""
        self._passes += 1
        telemetry = _obs.current()
        if not telemetry.enabled:
            return self._tokens()
        telemetry.metrics.inc("stream.passes")
        return _counting_tokens(self._tokens(), "stream.edges_consumed")

    def materialize(self) -> List[Edge]:
        """The token sequence of one pass, as a list (counts as a pass)."""
        return list(self.edges())


class ArbitraryOrderStream(StreamSource):
    """Edges presented in exactly the order given at construction.

    ``policy`` governs malformed input (see
    :mod:`repro.streams.policies`): under ``strict`` (the default) a
    self loop or duplicate edge raises :class:`StreamFaultError`;
    ``repair``/``skip`` drop the faulty token, counting it into the
    active telemetry as ``stream.faults.<kind>``.
    """

    def __init__(
        self,
        edges: Iterable[Tuple[Vertex, Vertex]],
        policy: str = POLICY_STRICT,
    ) -> None:
        super().__init__()
        check_policy(policy)
        self._edges: List[Edge] = []
        seen = set()
        vertices = set()
        counts: dict = {}
        for u, v in edges:
            if u == v:
                if policy == POLICY_STRICT:
                    raise StreamFaultError(
                        f"self loop {u!r}-{u!r} in arbitrary-order stream"
                    )
                counts["self_loop"] = counts.get("self_loop", 0) + 1
                continue
            edge = normalize_edge(u, v)
            if edge in seen:
                if policy == POLICY_STRICT:
                    raise StreamFaultError(
                        f"duplicate edge {edge!r} in arbitrary-order stream"
                    )
                counts["duplicate"] = counts.get("duplicate", 0) + 1
                continue
            seen.add(edge)
            self._edges.append(edge)
            vertices.add(u)
            vertices.add(v)
        emit_fault_counts(counts)
        self._num_vertices = len(vertices)

    @classmethod
    def from_graph(cls, graph: Graph) -> "ArbitraryOrderStream":
        """Stream a graph's edges in a deterministic (sorted) order."""
        source = cls(graph.edge_list())
        source._num_vertices = graph.num_vertices
        return source

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def _tokens(self) -> Iterator[Edge]:
        return iter(self._edges)


class RandomOrderStream(StreamSource):
    """A uniformly random permutation of the graph's edges.

    The permutation is sampled once, at construction, from ``seed``;
    every pass replays it.  Use :meth:`reshuffled` to get an independent
    instance (a fresh permutation) for repeated trials.

    ``policy`` governs self loops that a hand-built adjacency structure
    may contain: ``strict`` (the default) raises
    :class:`StreamFaultError` at construction, ``repair``/``skip``
    drop and count them.
    """

    def __init__(self, graph: Graph, seed: int = 0, policy: str = POLICY_STRICT) -> None:
        super().__init__()
        self._graph = graph
        self._seed = seed
        self._policy = check_policy(policy)
        self._edges, counts = scrub_graph_edges(graph, policy)
        emit_fault_counts(counts)
        component_rng("stream:random-order", seed=seed).shuffle(self._edges)

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def seed(self) -> int:
        return self._seed

    def reshuffled(self, seed: int) -> "RandomOrderStream":
        """An independent random-order instance of the same graph."""
        return RandomOrderStream(self._graph, seed=seed, policy=self._policy)

    def _tokens(self) -> Iterator[Edge]:
        return iter(self._edges)


class AdjacencyListStream(StreamSource):
    """Adjacency-list (vertex-grouped) stream: each edge appears twice.

    The vertex order is either supplied explicitly or drawn uniformly
    from ``seed``.  Within a list, neighbors appear in a deterministic
    shuffled order (also derived from ``seed``) — the model makes no
    promise about intra-list order, and algorithms must not rely on it.
    """

    def __init__(
        self,
        graph: Graph,
        vertex_order: Optional[Sequence[Vertex]] = None,
        seed: int = 0,
        policy: str = POLICY_STRICT,
    ) -> None:
        super().__init__()
        self._graph = graph
        self._policy = check_policy(policy)
        rng = component_rng("stream:adjacency-list", seed=seed)
        if vertex_order is None:
            order = sorted(graph.vertices(), key=repr)
            rng.shuffle(order)
        else:
            order = list(vertex_order)
            if set(order) != set(graph.vertices()):
                raise ValueError("vertex_order must be a permutation of the vertices")
        self._order: List[Vertex] = order
        # Pre-shuffle every list once so passes replay identical tokens.
        # ``policy`` decides what a self loop in the source adjacency
        # does: strict raises, repair/skip drop and count it.
        counts: dict = {}
        self._lists: List[Tuple[Vertex, List[Vertex]]] = []
        self._scrubbed_edges = 0
        for v in order:
            raw, loop_counts = scrub_neighbors(graph, v, policy)
            for kind, count in loop_counts.items():
                counts[kind] = counts.get(kind, 0) + count
            neighbors = sorted(raw, key=repr)
            rng.shuffle(neighbors)
            self._lists.append((v, neighbors))
            self._scrubbed_edges += len(neighbors)
        emit_fault_counts(counts)

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def stream_length(self) -> int:
        # 2m for a clean graph; the scrubbed token count when ``repair``
        # dropped self loops from a malformed source adjacency.
        return self._scrubbed_edges

    @property
    def provides_adjacency(self) -> bool:
        return True

    @property
    def vertex_order(self) -> List[Vertex]:
        """The order in which adjacency lists appear (a copy)."""
        return list(self._order)

    def _tokens(self) -> Iterator[Edge]:
        for v, neighbors in self._lists:
            for u in neighbors:
                yield normalize_edge(v, u)

    def _blocks(self) -> Iterator[Tuple[Vertex, List[Vertex]]]:
        """The raw ``(vertex, neighbors)`` blocks of one pass.

        The protected counterpart of :meth:`adjacency_lists` — no pass
        accounting, no telemetry — used by stream decorators
        (:class:`~repro.streams.validation.ValidatedStream`,
        :class:`~repro.resilience.faults.FaultyStream`) the same way
        :meth:`StreamSource._tokens` backs :meth:`StreamSource.edges`.
        """
        for v, neighbors in self._lists:
            yield v, list(neighbors)

    def adjacency_lists(self) -> Iterator[Tuple[Vertex, List[Vertex]]]:
        """Begin a new pass and yield ``(vertex, neighbor_list)`` blocks.

        This is the natural access pattern for Section 4 algorithms; the
        neighbor list of each block is complete (degree-many entries).
        """
        self._passes += 1
        telemetry = _obs.current()
        if telemetry.enabled:
            telemetry.metrics.inc("stream.passes")
        tokens = 0
        try:
            for v, neighbors in self._blocks():
                tokens += len(neighbors)
                yield v, neighbors
        finally:
            if telemetry.enabled:
                telemetry.metrics.inc("stream.edges_consumed", tokens)

    def reshuffled(self, seed: int) -> "AdjacencyListStream":
        """An independent adjacency-order instance of the same graph."""
        return AdjacencyListStream(self._graph, seed=seed, policy=self._policy)
