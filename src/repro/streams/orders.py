"""Adversarial and structured arrival orders.

The gap between the paper's random-order and arbitrary-order results
is exactly the gap between *typical* and *adversarial* arrival.  These
helpers build :class:`~repro.streams.models.ArbitraryOrderStream`
instances with specific adversarial orders, used by the stress tests
to show (a) which algorithms' guarantees survive reordering and (b)
the concrete failure the random-order lower bound weaponizes (heavy
edges arriving before any useful prefix).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..graphs.exact import per_edge_triangle_counts
from ..graphs.graph import Edge, Graph
from .models import ArbitraryOrderStream


def stream_with_order(graph: Graph, edges_in_order: Sequence[Edge]) -> ArbitraryOrderStream:
    """An arbitrary-order stream with exactly the given edge order."""
    ordered = list(edges_in_order)
    if sorted(ordered) != graph.edge_list():
        raise ValueError("order must be a permutation of the graph's edges")
    stream = ArbitraryOrderStream(ordered)
    return stream


def sorted_order(graph: Graph) -> ArbitraryOrderStream:
    """Edges sorted lexicographically — the classic 'clustered' order."""
    return ArbitraryOrderStream(graph.edge_list())


def heavy_edges_first(graph: Graph, seed: int = 0) -> ArbitraryOrderStream:
    """Edges ordered by *descending* triangle participation.

    The adversary of Theorem 2.6 in spirit: every heavy edge arrives
    before the stream has accumulated the prefix evidence the
    random-order algorithm needs, so its heavy-edge identification is
    maximally starved.
    """
    counts = per_edge_triangle_counts(graph)
    rng = random.Random(f"heavy-first-{seed}")
    edges = graph.edge_list()
    rng.shuffle(edges)  # break ties randomly
    edges.sort(key=lambda e: -counts.get(e, 0))
    return ArbitraryOrderStream(edges)


def heavy_edges_last(graph: Graph, seed: int = 0) -> ArbitraryOrderStream:
    """Edges ordered by *ascending* triangle participation — the
    friendly order: by the time heavy edges arrive, every prefix
    structure is saturated with their wedges."""
    counts = per_edge_triangle_counts(graph)
    rng = random.Random(f"heavy-last-{seed}")
    edges = graph.edge_list()
    rng.shuffle(edges)
    edges.sort(key=lambda e: counts.get(e, 0))
    return ArbitraryOrderStream(edges)


def vertex_grouped_order(graph: Graph, seed: int = 0) -> ArbitraryOrderStream:
    """Edges grouped by their lower endpoint (each edge once) — the
    single-sided cousin of the adjacency-list order, a common shape
    for edge lists dumped from adjacency storage."""
    rng = random.Random(f"grouped-{seed}")
    vertices = sorted(graph.vertices(), key=repr)
    rng.shuffle(vertices)
    rank = {v: i for i, v in enumerate(vertices)}
    edges = graph.edge_list()
    edges.sort(key=lambda e: min(rank[e[0]], rank[e[1]]))
    return ArbitraryOrderStream(edges)


ORDER_FACTORIES: dict = {
    "sorted": lambda graph, seed=0: sorted_order(graph),
    "heavy-first": heavy_edges_first,
    "heavy-last": heavy_edges_last,
    "vertex-grouped": vertex_grouped_order,
}
