"""Validation-policy primitives shared by the stream models.

Kept free of any :mod:`repro.streams.models` import so the models can
use these at construction time while :class:`ValidatedStream` (in
:mod:`repro.streams.validation`) builds on the models — no cycle.

The three policies:

* ``strict``  — any fault raises :class:`StreamFaultError`;
* ``repair``  — canonicalize endpoints, drop self-loops and duplicates;
* ``skip``    — drop faulty tokens, leave valid ones untouched.

Fault counts are emitted through the active :mod:`repro.obs` metrics
registry under ``stream.faults.<kind>`` (see docs/robustness.md).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graphs.graph import Edge, normalize_edge
from .. import obs as _obs

POLICY_STRICT = "strict"
POLICY_REPAIR = "repair"
POLICY_SKIP = "skip"
POLICIES = (POLICY_STRICT, POLICY_REPAIR, POLICY_SKIP)

FAULT_METRIC_PREFIX = "stream.faults."


class StreamFaultError(ValueError):
    """A malformed token reached a stream running the ``strict`` policy."""


def check_policy(policy: str) -> str:
    """Validate a policy name, returning it unchanged."""
    if policy not in POLICIES:
        raise ValueError(
            f"unknown validation policy {policy!r}; expected one of {POLICIES}"
        )
    return policy


def emit_fault_counts(counts: Dict[str, int]) -> None:
    """Fold per-pass fault counts into the active metrics registry."""
    if not counts:
        return
    telemetry = _obs.current()
    if not telemetry.enabled:
        return
    for kind, count in counts.items():
        if count:
            telemetry.metrics.inc(FAULT_METRIC_PREFIX + kind, count)


def scrub_graph_edges(graph, policy: str) -> Tuple[List[Edge], Dict[str, int]]:
    """The canonical edge list of ``graph``, with self-loops handled.

    ``Graph`` itself rejects self-loops, but a hand-built adjacency
    structure (or a subclass with looser invariants) can hold ``v`` in
    its own neighbor set; ``Graph.edges`` would then raise deep inside
    ``normalize_edge``.  This walks the adjacency directly so the
    policy decides: ``strict`` raises :class:`StreamFaultError`,
    ``repair``/``skip`` drop the loop and count it.
    """
    check_policy(policy)
    counts: Dict[str, int] = {}
    edges: List[Edge] = []
    for v in graph.vertices():
        for u in graph.neighbors(v):
            if u == v:
                if policy == POLICY_STRICT:
                    raise StreamFaultError(
                        f"self loop {v!r}-{v!r} in source graph (strict policy)"
                    )
                counts["self_loop"] = counts.get("self_loop", 0) + 1
                continue
            edge = normalize_edge(v, u)
            if edge[0] == v:  # count each undirected edge once
                edges.append(edge)
    edges.sort()
    return edges, counts


def scrub_neighbors(graph, vertex, policy: str) -> Tuple[list, Dict[str, int]]:
    """``graph.neighbors(vertex)`` minus self-loops, per policy."""
    counts: Dict[str, int] = {}
    neighbors = []
    for u in graph.neighbors(vertex):
        if u == vertex:
            if policy == POLICY_STRICT:
                raise StreamFaultError(
                    f"self loop {vertex!r}-{vertex!r} in source graph "
                    "(strict policy)"
                )
            counts["self_loop"] = counts.get("self_loop", 0) + 1
            continue
        neighbors.append(u)
    return neighbors, counts
