"""``ValidatedStream`` — per-pass validation over any stream source.

Real ingestion pipelines deliver duplicate edges, self-loops, reversed
endpoints and truncated feeds; the paper's stream models assume none of
those.  :class:`ValidatedStream` is the seam between the two worlds: it
wraps a (possibly corrupted — see
:class:`~repro.resilience.faults.FaultyStream`) source and applies one
of the three policies from :mod:`repro.streams.policies`:

* ``strict``  — any fault raises
  :class:`~repro.streams.policies.StreamFaultError`;
* ``repair``  — canonicalize endpoints, drop self-loops and duplicates,
  so downstream algorithms see a clean simple-graph stream;
* ``skip``    — drop faulty tokens but leave valid ones untouched
  (arrival orientation preserved).

Fault counts land in the active :mod:`repro.obs` MetricsRegistry under
``stream.faults.<kind>`` (see docs/robustness.md for the registry).

The dedupe filter needs O(m) memory per pass; that is the price of
validation, charged to the harness rather than the algorithm under
test (the algorithm's :class:`~repro.streams.meter.SpaceMeter` is
unaffected).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..graphs.graph import Edge, Vertex, normalize_edge
from .. import obs as _obs
from .models import StreamSource
from .policies import (
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    StreamFaultError,
    check_policy,
    emit_fault_counts,
)


class ValidatedStream(StreamSource):
    """Apply a validation policy to any stream source, per pass.

    Token faults handled: self-loop tokens ``(u, u)``; duplicate edges
    (for adjacency sources each edge may legitimately appear twice,
    once per endpoint, so the duplicate threshold is two there);
    reversed endpoints (counted and canonicalized — arrival orientation
    is not an error, so ``strict`` tolerates them too).

    Fault counts accumulate in :attr:`fault_counts` (cumulative across
    passes) and are emitted per pass through the active telemetry as
    ``stream.faults.<kind>``.  The declared ``num_vertices`` /
    ``num_edges`` are the source's — under ``repair`` the cleaned pass
    can be shorter than the declared ``m``, exactly the discrepancy a
    production feed exhibits.
    """

    def __init__(self, source: StreamSource, policy: str = POLICY_REPAIR) -> None:
        super().__init__()
        self._source = source
        self._policy = check_policy(policy)
        # Adjacency sources present each edge twice (once per endpoint);
        # only a third sighting is a duplicate there.
        adjacency = getattr(source, "provides_adjacency", False)
        self._max_occurrences = 2 if adjacency else 1
        self.fault_counts: Dict[str, int] = {}

    # -- delegated shape ------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._source.num_vertices

    @property
    def num_edges(self) -> int:
        return self._source.num_edges

    @property
    def stream_length(self) -> int:
        return self._source.stream_length

    @property
    def source(self) -> StreamSource:
        return self._source

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def provides_adjacency(self) -> bool:
        return getattr(self._source, "provides_adjacency", False)

    # -- internals ------------------------------------------------------
    def _count(self, counts: Dict[str, int], kind: str) -> None:
        counts[kind] = counts.get(kind, 0) + 1

    def _flush(self, counts: Dict[str, int]) -> None:
        for kind, count in counts.items():
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + count
        emit_fault_counts(counts)

    def _tokens(self) -> Iterator[Edge]:
        policy = self._policy
        seen: Dict[Edge, int] = {}
        counts: Dict[str, int] = {}
        try:
            for token in self._source._tokens():
                u, v = token
                if u == v:
                    if policy == POLICY_STRICT:
                        raise StreamFaultError(
                            f"self loop token {u!r}-{v!r} in stream (strict policy)"
                        )
                    self._count(counts, "self_loop")
                    continue
                edge = normalize_edge(u, v)
                if edge != tuple(token):
                    self._count(counts, "reversed")
                occurrences = seen.get(edge, 0)
                if occurrences >= self._max_occurrences:
                    if policy == POLICY_STRICT:
                        raise StreamFaultError(
                            f"duplicate edge {edge!r} in stream (strict policy)"
                        )
                    self._count(counts, "duplicate")
                    continue
                seen[edge] = occurrences + 1
                yield edge if policy != POLICY_SKIP else (u, v)
        finally:
            self._flush(counts)

    # -- adjacency passthrough -----------------------------------------
    def _blocks(self) -> Iterator[Tuple[Vertex, List[Vertex]]]:
        """Validated ``(vertex, neighbors)`` blocks of one pass.

        Per policy: self-loop entries and duplicate directed pairs are
        raised / dropped; consecutive blocks of the same vertex (a
        *split block* fault) are merged back under ``repair``/``skip``;
        a vertex whose blocks reappear non-consecutively (a *reordered
        split*) cannot be merged without buffering the stream, so it is
        yielded as-is and counted.
        """
        source_blocks = getattr(self._source, "_blocks", None)
        if source_blocks is None:
            raise TypeError(
                f"{type(self._source).__name__} is not an adjacency-list source"
            )
        policy = self._policy
        counts: Dict[str, int] = {}
        seen_pairs: set = set()
        finished: set = set()
        held: Optional[Tuple[Vertex, List[Vertex]]] = None
        try:
            for vertex, neighbors in source_blocks():
                entries: List[Vertex] = []
                for u in neighbors:
                    if u == vertex:
                        if policy == POLICY_STRICT:
                            raise StreamFaultError(
                                f"self loop entry {vertex!r} in its own "
                                "adjacency list (strict policy)"
                            )
                        self._count(counts, "self_loop")
                        continue
                    pair = (vertex, u)
                    if pair in seen_pairs:
                        if policy == POLICY_STRICT:
                            raise StreamFaultError(
                                f"duplicate entry {u!r} in adjacency list of "
                                f"{vertex!r} (strict policy)"
                            )
                        self._count(counts, "duplicate")
                        continue
                    seen_pairs.add(pair)
                    entries.append(u)
                if held is not None and held[0] == vertex:
                    if policy == POLICY_STRICT:
                        raise StreamFaultError(
                            f"adjacency list of {vertex!r} is split across "
                            "multiple blocks (strict policy)"
                        )
                    self._count(counts, "split_block")
                    held[1].extend(entries)
                    continue
                if held is not None:
                    yield held
                    finished.add(held[0])
                if vertex in finished:
                    if policy == POLICY_STRICT:
                        raise StreamFaultError(
                            f"adjacency list of {vertex!r} reappears after "
                            "other blocks (strict policy)"
                        )
                    self._count(counts, "split_block")
                held = (vertex, entries)
            if held is not None:
                yield held
        finally:
            self._flush(counts)

    def adjacency_lists(self) -> Iterator[Tuple[Vertex, List[Vertex]]]:
        """Begin a new pass and yield validated adjacency blocks."""
        self._passes += 1
        telemetry = _obs.current()
        if telemetry.enabled:
            telemetry.metrics.inc("stream.passes")
        tokens = 0
        try:
            for vertex, neighbors in self._blocks():
                tokens += len(neighbors)
                yield vertex, neighbors
        finally:
            if telemetry.enabled:
                telemetry.metrics.inc("stream.edges_consumed", tokens)
