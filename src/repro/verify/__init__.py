"""Statistical guarantee certification (``repro verify``).

The paper's theorems promise, for each algorithm, that

    P(|T_hat - T| > eps * T) <= delta

at a stated space budget.  This package turns those promises into
*testable certificates*:

* :mod:`repro.verify.stats` — small-sample binomial machinery (Wilson
  and Clopper–Pearson confidence intervals, chi-square variance-ratio
  bounds) with no external dependencies.
* :mod:`repro.verify.budgets` — the Chebyshev "budget from paper"
  parameterizations: for each estimator with a closed-form variance on
  vertex-disjoint planted workloads, the knob setting that makes the
  theoretical failure probability at most ``delta``.
* :mod:`repro.verify.certify` — the certification engine: seeded trial
  batches through :class:`~repro.experiments.parallel.ParallelTrialRunner`
  with sequential early stopping, emitting per-theorem PASS / FAIL /
  INCONCLUSIVE certificates.
* :mod:`repro.verify.variance` — empirical-vs-theoretical variance
  ratio checks for the unbiased estimators.
* :mod:`repro.verify.seeds` — the static seed audit: flags any two RNG
  components whose leading draws coincide under a shared seed (the bug
  class :mod:`repro.seeding` eliminates).
* :mod:`repro.verify.report` — table / JSON rendering.

CLI: ``python -m repro verify {guarantee,variance,seeds,all}``.
"""

from __future__ import annotations

from .budgets import Budget, chebyshev_slack
from .certify import (
    PLANS,
    Certificate,
    GuaranteePlan,
    certify,
    certify_all,
    certify_checkpoint_key,
)
from .seeds import AUDIT_SEEDS, SeedCollision, SeedProbe, audit_seeds, default_probes
from .stats import (
    BinomialCI,
    clopper_pearson_interval,
    inverse_normal_cdf,
    variance_ratio_bounds,
    wilson_interval,
)
from .variance import VarianceModel, VarianceReport, check_variance
from .report import certificates_to_json, render_certificates, render_variance

__all__ = [
    "AUDIT_SEEDS",
    "BinomialCI",
    "Budget",
    "Certificate",
    "GuaranteePlan",
    "PLANS",
    "SeedCollision",
    "SeedProbe",
    "VarianceModel",
    "VarianceReport",
    "audit_seeds",
    "certificates_to_json",
    "certify",
    "certify_all",
    "certify_checkpoint_key",
    "chebyshev_slack",
    "check_variance",
    "clopper_pearson_interval",
    "default_probes",
    "inverse_normal_cdf",
    "render_certificates",
    "render_variance",
    "variance_ratio_bounds",
    "wilson_interval",
]
