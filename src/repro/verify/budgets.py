"""Chebyshev "budget from paper" parameterizations.

Every unbiased estimator in this repo has a closed-form variance on the
vertex-disjoint planted workloads (no noise edges, so the planted count
is the *entire* count and per-structure survival events are independent
Bernoullis).  Chebyshev then converts a variance into a guarantee:

    P(|T_hat - T| > eps T) <= Var / (eps T)^2 <= delta
    <=>  Var <= delta (eps T)^2.

Each budget function below solves that inequality for the algorithm's
sampling knob.  Writing ``s = delta * eps^2 * T`` (the *Chebyshev
slack*, :func:`chebyshev_slack`):

* **edge sampling, triangles** — surviving ~ Bin(T, p^3), so
  ``Var = T (1 - p^3) / p^3 <= delta (eps T)^2  <=>  p^3 >= 1/(1+s)``.
* **edge sampling, four-cycles** — same with ``p^4 >= 1/(1+s)``.
* **wedge-pair sampling** — each planted C4 contributes two
  independent wedge-pair indicators Bernoulli(p_w^2), so
  ``Var = T (1 - p_w^2) / (2 p_w^2)`` and ``p_w^2 >= 1/(1+2s)``.
* **MVV two-pass** — hits ~ Bin(3T, p) (three edges per planted
  triangle, each an independent witness), ``Var = T (1-p)/(3p)`` and
  ``p >= 1/(1+3s)``.
* **Cormode–Jowhari** — each planted triangle closes a prefix wedge
  with probability ``q = 3 beta^2 (1 - beta)``; ``Var <= T (1-q)/q``
  needs ``q >= 1/(1+s)``, solved for the prefix fraction ``beta`` by
  bisection on the increasing branch ``beta in (0, 2/3]``.
* **TRIEST-impr** — each triangle contributes ``eta(t) B`` with
  ``B ~ Bernoulli(1/eta(t))``, variance ``eta(t) - 1 <= eta_end - 1``
  where ``eta_end = (m-1)(m-2) / (M(M-1))``; requiring
  ``eta_end <= 1 + s`` gives the reservoir size
  ``M (M-1) >= (m-1)(m-2)/(1+s)`` — the familiar ``M ~ m / sqrt(s)``.

The paper's own multi-pass algorithms (Theorem 2.1 random-order
triangles, Theorem 5.3 three-pass four-cycles) have no closed-form
variance here; their budgets run the algorithm at a halved internal
``eps`` (a constant-factor space increase, exactly the slack the
theorems absorb into Õ) and certify the *implied* bound
``Var <= delta (eps T)^2`` empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = [
    "Budget",
    "chebyshev_slack",
    "cormode_jowhari_budget",
    "edge_sampling_c4_budget",
    "edge_sampling_triangle_budget",
    "implied_budget",
    "mvv_twopass_budget",
    "triest_impr_budget",
    "wedge_pair_budget",
]


@dataclass(frozen=True)
class Budget:
    """Constructor kwargs plus the derived quantities behind them.

    ``params`` go straight into the algorithm constructor (minus the
    seed, which the trial runner supplies); ``detail`` carries the
    derived sampling rates and variance bounds for certificates and
    variance checks.
    """

    params: Dict[str, Any] = field(default_factory=dict)
    detail: Dict[str, float] = field(default_factory=dict)


def chebyshev_slack(epsilon: float, delta: float, truth: float) -> float:
    """``s = delta * eps^2 * T`` — the headroom Chebyshev leaves."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if truth < 1.0:
        raise ValueError(f"truth must be >= 1, got {truth}")
    return delta * epsilon * epsilon * truth


def edge_sampling_triangle_budget(
    truth: float, m: int, n: int, epsilon: float, delta: float
) -> Budget:
    s = chebyshev_slack(epsilon, delta, truth)
    p = min(1.0, (1.0 / (1.0 + s)) ** (1.0 / 3.0))
    return Budget(
        params={"p": p},
        detail={"p": p, "variance": truth * (1.0 - p**3) / p**3},
    )


def edge_sampling_c4_budget(
    truth: float, m: int, n: int, epsilon: float, delta: float
) -> Budget:
    s = chebyshev_slack(epsilon, delta, truth)
    p = min(1.0, (1.0 / (1.0 + s)) ** 0.25)
    return Budget(
        params={"p": p},
        detail={"p": p, "variance": truth * (1.0 - p**4) / p**4},
    )


def wedge_pair_budget(
    truth: float, m: int, n: int, epsilon: float, delta: float
) -> Budget:
    s = chebyshev_slack(epsilon, delta, truth)
    p_w = min(1.0, math.sqrt(1.0 / (1.0 + 2.0 * s)))
    return Budget(
        params={"wedge_probability": p_w},
        detail={
            "p": p_w,
            "variance": truth * (1.0 - p_w**2) / (2.0 * p_w**2),
        },
    )


def mvv_twopass_budget(
    truth: float, m: int, n: int, epsilon: float, delta: float
) -> Budget:
    s = chebyshev_slack(epsilon, delta, truth)
    p = min(1.0, 1.0 / (1.0 + 3.0 * s))
    # TwoPassTriangles exposes p as p = min(1, c / (eps sqrt(T))).
    c = p * epsilon * math.sqrt(truth)
    return Budget(
        params={"t_guess": truth, "epsilon": epsilon, "c": c},
        detail={"p": p, "variance": truth * (1.0 - p) / (3.0 * p)},
    )


def cormode_jowhari_budget(
    truth: float, m: int, n: int, epsilon: float, delta: float
) -> Budget:
    s = chebyshev_slack(epsilon, delta, truth)
    q_target = 1.0 / (1.0 + s)
    q_max = 4.0 / 9.0  # 3 beta^2 (1 - beta) at beta = 2/3
    if q_target >= q_max:
        beta = 2.0 / 3.0
        q = q_max
    else:
        lo, hi = 0.0, 2.0 / 3.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if 3.0 * mid * mid * (1.0 - mid) < q_target:
                lo = mid
            else:
                hi = mid
        beta = 0.5 * (lo + hi)
        q = 3.0 * beta * beta * (1.0 - beta)
    c = beta * epsilon * math.sqrt(truth)
    return Budget(
        params={"t_guess": truth, "epsilon": epsilon, "c": c},
        detail={"beta": beta, "q": q, "variance": truth * (1.0 - q) / q},
    )


def triest_impr_budget(
    truth: float, m: int, n: int, epsilon: float, delta: float
) -> Budget:
    s = chebyshev_slack(epsilon, delta, truth)
    target = max(1.0, (m - 1.0) * (m - 2.0) / (1.0 + s))
    # smallest integer M with M (M - 1) >= target
    memory = max(6, math.ceil(0.5 + math.sqrt(0.25 + target)))
    eta_end = max(1.0, (m - 1.0) * (m - 2.0) / (memory * (memory - 1.0)))
    return Budget(
        params={"memory": memory},
        detail={"memory": float(memory), "variance": truth * (eta_end - 1.0)},
    )


def implied_budget(
    truth: float, m: int, n: int, epsilon: float, delta: float, **params: Any
) -> Budget:
    """Budget for the paper's own algorithms: run at ``eps/2`` internally
    and certify ``Var <= delta (eps T)^2`` as an implied bound."""
    return Budget(
        params={"t_guess": truth, "epsilon": epsilon / 2.0, **params},
        detail={"variance": chebyshev_slack(epsilon, delta, truth) * truth},
    )
