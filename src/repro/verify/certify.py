"""Guarantee certification: turn a theorem's (eps, delta) promise into
a PASS / FAIL / INCONCLUSIVE certificate.

For one algorithm the procedure is:

1. Build the plan's vertex-disjoint planted workload (no noise edges,
   so the ground truth ``T`` is exact and the Chebyshev budgets of
   :mod:`repro.verify.budgets` are honest).
2. Instantiate the algorithm at the paper budget for (eps, delta).
3. Run seeded trial batches through the existing
   :class:`~repro.experiments.parallel.ParallelTrialRunner` (via
   :func:`~repro.experiments.runner.run_trials`) — every batch gets a
   namespaced base seed from :func:`repro.seeding.derive_seed`, so the
   whole certification is a pure function of the user seed.
4. After each batch, bound the failure probability
   ``P(|T_hat - T| > eps T)`` with a Wilson (default) or
   Clopper–Pearson interval and stop early:

   * upper bound <= delta       -> **PASS** (certified at confidence),
   * lower bound  > delta       -> **FAIL**,
   * trial budget exhausted     -> **INCONCLUSIVE** (certificate still
     carries the interval, so the result is a bound, never silence).

Batches are checkpointable units (:mod:`repro.resilience.checkpoint`):
an interrupted ``repro verify all`` resumes without rerunning finished
batches, with byte-identical certificates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..baselines.cormode_jowhari import CormodeJowhariTriangles
from ..baselines.edge_sampling import EdgeSamplingFourCycles, EdgeSamplingTriangles
from ..baselines.mvv_twopass import TwoPassTriangles
from ..baselines.triest import TriestImpr
from ..baselines.wedge_pair_sampling import WedgePairSamplingFourCycles
from ..core.fourcycle_arbitrary_threepass import FourCycleArbitraryThreePass
from ..core.triangle_random_order import TriangleRandomOrder
from ..experiments.parallel import SeededFactory
from ..experiments.runner import run_trials
from ..graphs.generators import planted_four_cycles, planted_triangles
from ..graphs.graph import Graph
from ..resilience.checkpoint import NULL_CHECKPOINT, CheckpointContext, config_hash
from ..seeding import derive_seed
from ..streams.models import (
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
)
from .budgets import (
    Budget,
    cormode_jowhari_budget,
    edge_sampling_c4_budget,
    edge_sampling_triangle_budget,
    implied_budget,
    mvv_twopass_budget,
    triest_impr_budget,
    wedge_pair_budget,
)
from .stats import BinomialCI, clopper_pearson_interval, wilson_interval

__all__ = [
    "PLANS",
    "Certificate",
    "GuaranteePlan",
    "certify",
    "certify_all",
    "certify_checkpoint_key",
]

#: The paper's canonical guarantee: (1 +- eps) with constant success
#: probability 2/3 — what ``--budget-from-paper`` certifies.
PAPER_EPSILON = 0.3
PAPER_DELTA = 1.0 / 3.0

WorkloadBuilder = Callable[[int, bool], Tuple[Graph, float]]
BudgetBuilder = Callable[[float, int, int, float, float], Budget]


# ----------------------------------------------------------------------
# planted workloads (noise-free, so truth == planted count exactly)
# ----------------------------------------------------------------------
def _triangle_workload(seed: int, quick: bool) -> Tuple[Graph, float]:
    count = 60 if quick else 200
    graph = planted_triangles(3 * count, count, extra_edges=0, seed=seed)
    return graph, float(count)


def _four_cycle_workload(seed: int, quick: bool) -> Tuple[Graph, float]:
    count = 40 if quick else 150
    graph = planted_four_cycles(4 * count, count, extra_edges=0, seed=seed)
    return graph, float(count)


def _small_four_cycle_workload(seed: int, quick: bool) -> Tuple[Graph, float]:
    # The three-pass algorithm runs a Useful oracle per stored cycle
    # edge; keep its workload compact so certification stays minutes-free.
    count = 20 if quick else 40
    graph = planted_four_cycles(4 * count, count, extra_edges=0, seed=seed)
    return graph, float(count)


# ----------------------------------------------------------------------
# plan registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GuaranteePlan:
    """Everything needed to certify one algorithm against its theorem."""

    name: str
    theorem: str
    problem: str  # "triangles" | "four-cycles"
    model: str  # "random" | "arbitrary" | "adjacency"
    algorithm: Callable[..., Any]
    workload: WorkloadBuilder
    budget: BudgetBuilder
    #: "exact" | "upper-bound" | "implied" — how the theoretical
    #: variance in the budget detail should be read (see verify.variance).
    variance_kind: str = "exact"
    variance_slack: float = 1.0
    seed_param: Optional[str] = "seed"

    def build(
        self, epsilon: float, delta: float, seed: int, quick: bool
    ) -> "BuiltPlan":
        workload_seed = derive_seed("verify:workload", self.name, seed=seed)
        graph, truth = self.workload(workload_seed, quick)
        budget = self.budget(truth, graph.num_edges, graph.num_vertices, epsilon, delta)
        algorithm_factory = SeededFactory(
            target=self.algorithm, kwargs=dict(budget.params), seed_param=self.seed_param
        )
        stream_factory = _stream_factory(self.model, graph)
        return BuiltPlan(
            plan=self,
            graph=graph,
            truth=truth,
            budget=budget,
            algorithm_factory=algorithm_factory,
            stream_factory=stream_factory,
        )


@dataclass(frozen=True)
class BuiltPlan:
    plan: GuaranteePlan
    graph: Graph
    truth: float
    budget: Budget
    algorithm_factory: SeededFactory
    stream_factory: SeededFactory


def _stream_factory(model: str, graph: Graph) -> SeededFactory:
    if model == "random":
        return SeededFactory(target=RandomOrderStream, kwargs={"graph": graph})
    if model == "adjacency":
        return SeededFactory(target=AdjacencyListStream, kwargs={"graph": graph})
    if model == "arbitrary":
        return SeededFactory(
            target=ArbitraryOrderStream.from_graph,
            kwargs={"graph": graph},
            seed_param=None,
        )
    raise ValueError(f"unknown stream model {model!r}")


PLANS: Dict[str, GuaranteePlan] = {
    plan.name: plan
    for plan in (
        GuaranteePlan(
            name="edge-sampling-triangles",
            theorem="baseline (Chebyshev)",
            problem="triangles",
            model="arbitrary",
            algorithm=EdgeSamplingTriangles,
            workload=_triangle_workload,
            budget=edge_sampling_triangle_budget,
        ),
        GuaranteePlan(
            name="edge-sampling-fourcycles",
            theorem="baseline (Chebyshev)",
            problem="four-cycles",
            model="arbitrary",
            algorithm=EdgeSamplingFourCycles,
            workload=_four_cycle_workload,
            budget=edge_sampling_c4_budget,
        ),
        GuaranteePlan(
            name="wedge-pair-sampling",
            theorem="KMPV-style comparator",
            problem="four-cycles",
            model="adjacency",
            algorithm=WedgePairSamplingFourCycles,
            workload=_four_cycle_workload,
            budget=wedge_pair_budget,
        ),
        GuaranteePlan(
            name="mvv-twopass-triangles",
            theorem="MVV two-pass (Sec. 2)",
            problem="triangles",
            model="arbitrary",
            algorithm=TwoPassTriangles,
            workload=_triangle_workload,
            budget=mvv_twopass_budget,
        ),
        GuaranteePlan(
            name="cormode-jowhari",
            theorem="Cormode–Jowhari (Sec. 2)",
            problem="triangles",
            model="random",
            algorithm=CormodeJowhariTriangles,
            workload=_triangle_workload,
            budget=cormode_jowhari_budget,
            variance_kind="upper-bound",
            variance_slack=1.6,
            seed_param=None,
        ),
        GuaranteePlan(
            name="triest-impr",
            theorem="TRIEST-impr (KDD'16)",
            problem="triangles",
            model="arbitrary",
            algorithm=TriestImpr,
            workload=_triangle_workload,
            budget=triest_impr_budget,
            variance_kind="upper-bound",
            variance_slack=2.0,
        ),
        GuaranteePlan(
            name="triangle-random-order",
            theorem="Theorem 2.1",
            problem="triangles",
            model="random",
            algorithm=TriangleRandomOrder,
            workload=_triangle_workload,
            budget=implied_budget,
            variance_kind="implied",
            variance_slack=1.0,
        ),
        GuaranteePlan(
            name="threepass-fourcycles",
            theorem="Theorem 5.3",
            problem="four-cycles",
            model="arbitrary",
            algorithm=FourCycleArbitraryThreePass,
            workload=_small_four_cycle_workload,
            budget=implied_budget,
            variance_kind="implied",
            variance_slack=1.0,
        ),
    )
}


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
@dataclass
class Certificate:
    """The outcome of certifying one (algorithm, eps, delta) triple."""

    algorithm: str
    theorem: str
    problem: str
    model: str
    epsilon: float
    delta: float
    confidence: float
    method: str
    trials: int
    failures: int
    ci_low: float
    ci_high: float
    verdict: str  # "PASS" | "FAIL" | "INCONCLUSIVE"
    batches: int
    truth: float
    workload: Dict[str, Any] = field(default_factory=dict)
    budget: Dict[str, float] = field(default_factory=dict)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    def to_record(self) -> Dict[str, Any]:
        """A flat, JSON-able summary (one table row)."""
        return {
            "algorithm": self.algorithm,
            "theorem": self.theorem,
            "verdict": self.verdict,
            "epsilon": self.epsilon,
            "delta": round(self.delta, 4),
            "trials": self.trials,
            "failures": self.failures,
            "fail_rate": round(self.failure_rate, 4),
            "ci_high": round(self.ci_high, 4),
            "method": self.method,
            "confidence": self.confidence,
        }


def _interval(method: str, failures: int, trials: int, confidence: float) -> BinomialCI:
    if method == "wilson":
        return wilson_interval(failures, trials, confidence)
    if method == "clopper-pearson":
        return clopper_pearson_interval(failures, trials, confidence)
    raise ValueError(f"unknown interval method {method!r}; use wilson or clopper-pearson")


def certify_checkpoint_key(
    names: Sequence[str],
    epsilon: float,
    delta: float,
    seed: int,
    quick: bool,
    batch_size: int,
    max_trials: int,
) -> str:
    """The config hash a certification checkpoint is keyed by."""
    return config_hash(
        {
            "command": "verify-guarantee",
            "plans": sorted(names),
            "epsilon": epsilon,
            "delta": delta,
            "seed": seed,
            "quick": quick,
            "batch_size": batch_size,
            "max_trials": max_trials,
        }
    )


def certify(
    name: str,
    epsilon: float = PAPER_EPSILON,
    delta: float = PAPER_DELTA,
    *,
    confidence: float = 0.95,
    batch_size: int = 25,
    max_trials: int = 200,
    seed: int = 0,
    n_jobs: int = 1,
    quick: bool = False,
    method: str = "wilson",
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> Certificate:
    """Certify one plan; see the module docstring for the procedure."""
    try:
        plan = PLANS[name]
    except KeyError:
        known = ", ".join(sorted(PLANS))
        raise KeyError(f"unknown guarantee plan {name!r}; known: {known}") from None
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if max_trials < batch_size:
        raise ValueError(
            f"max_trials ({max_trials}) must be at least batch_size ({batch_size})"
        )
    _interval(method, 0, 1, confidence)  # validate method/confidence eagerly
    built = plan.build(epsilon, delta, seed, quick)
    telemetry = _obs.current()

    estimates: List[float] = []
    batches = 0
    num_batches = math.ceil(max_trials / batch_size)
    with telemetry.tracer.span(
        "verify:certify", kind="verify", algorithm=name, epsilon=epsilon, delta=delta
    ):
        for index in range(num_batches):
            remaining = max_trials - len(estimates)
            size = min(batch_size, remaining)
            unit = (
                f"{name}|eps={epsilon}|delta={delta:.6f}|quick={quick}"
                f"|batch={index}x{size}"
            )
            payload = checkpoint.unit(
                unit, lambda: _run_batch(built, name, index, size, seed, n_jobs)
            )
            estimates.extend(payload["estimates"])
            batches += 1
            failures = _count_failures(estimates, built.truth, epsilon)
            ci = _interval(method, failures, len(estimates), confidence)
            if ci.high <= delta or ci.low > delta:
                break
    failures = _count_failures(estimates, built.truth, epsilon)
    ci = _interval(method, failures, len(estimates), confidence)
    if ci.high <= delta:
        verdict = "PASS"
    elif ci.low > delta:
        verdict = "FAIL"
    else:
        verdict = "INCONCLUSIVE"
    if telemetry.enabled:
        telemetry.metrics.inc("verify.trials", len(estimates))
        telemetry.metrics.inc("verify.failures", failures)
        telemetry.metrics.inc(f"verify.verdict.{verdict.lower()}")
    return Certificate(
        algorithm=name,
        theorem=plan.theorem,
        problem=plan.problem,
        model=plan.model,
        epsilon=epsilon,
        delta=delta,
        confidence=confidence,
        method=method,
        trials=len(estimates),
        failures=failures,
        ci_low=ci.low,
        ci_high=ci.high,
        verdict=verdict,
        batches=batches,
        truth=built.truth,
        workload={
            "n": built.graph.num_vertices,
            "m": built.graph.num_edges,
            "truth": built.truth,
            "quick": quick,
        },
        budget={key: round(value, 6) for key, value in built.budget.detail.items()},
    )


def _run_batch(
    built: BuiltPlan, name: str, index: int, size: int, seed: int, n_jobs: int
) -> Dict[str, Any]:
    """One batch of trials; the JSON-able checkpoint unit payload."""
    base_seed = derive_seed("verify:certify", name, index, seed=seed)
    stats = run_trials(
        built.algorithm_factory,
        built.stream_factory,
        truth=built.truth,
        trials=size,
        base_seed=base_seed,
        n_jobs=n_jobs,
    )
    return {"estimates": list(stats.estimates), "base_seed": base_seed}


def _count_failures(estimates: Sequence[float], truth: float, epsilon: float) -> int:
    threshold = epsilon * truth
    return sum(1 for estimate in estimates if abs(estimate - truth) > threshold)


def certify_all(
    names: Optional[Sequence[str]] = None,
    epsilon: float = PAPER_EPSILON,
    delta: float = PAPER_DELTA,
    **kwargs: Any,
) -> List[Certificate]:
    """Certify every plan (or the named subset), in registry order."""
    selected = list(names) if names else sorted(PLANS)
    return [certify(name, epsilon, delta, **kwargs) for name in selected]
