"""Rendering for verification results: tables for terminals, JSON for
machines (CI artifacts, dashboards)."""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from ..experiments.reporting import format_records
from .certify import Certificate
from .seeds import SeedCollision
from .variance import VarianceReport

__all__ = [
    "certificates_to_json",
    "render_certificates",
    "render_seed_audit",
    "render_variance",
    "write_json",
]

PathLike = Union[str, Path]


def render_certificates(certificates: Sequence[Certificate]) -> str:
    """A fixed-width table of certificates, one row per algorithm."""
    if not certificates:
        return "(no certificates)"
    return format_records([certificate.to_record() for certificate in certificates])


def render_variance(reports: Sequence[VarianceReport]) -> str:
    if not reports:
        return "(no variance reports)"
    return format_records([report.to_record() for report in reports])


def render_seed_audit(collisions: Sequence[SeedCollision], probes: int) -> str:
    if not collisions:
        return f"seed audit clean: {probes} probes, no correlated streams"
    lines = [f"seed audit FAILED: {len(collisions)} collision(s) across {probes} probes"]
    lines.extend(f"  - {collision.describe()}" for collision in collisions)
    return "\n".join(lines)


def certificates_to_json(
    certificates: Sequence[Certificate] = (),
    variance_reports: Sequence[VarianceReport] = (),
    seed_collisions: "Sequence[SeedCollision] | None" = None,
) -> Dict[str, Any]:
    """A JSON-able document bundling one verification run's results."""
    document: Dict[str, Any] = {
        "schema": "repro-verify-v1",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if certificates:
        document["certificates"] = [
            {
                **certificate.to_record(),
                "ci_low": round(certificate.ci_low, 6),
                "ci_high": round(certificate.ci_high, 6),
                "batches": certificate.batches,
                "truth": certificate.truth,
                "workload": certificate.workload,
                "budget": certificate.budget,
                "problem": certificate.problem,
                "model": certificate.model,
            }
            for certificate in certificates
        ]
    if variance_reports:
        document["variance"] = [
            {
                **report.to_record(),
                "band_low": round(report.band_low, 6),
                "band_high": round(report.band_high, 6),
                "mean_estimate": report.mean_estimate,
                "truth": report.truth,
            }
            for report in variance_reports
        ]
    if seed_collisions is not None:
        document["seed_audit"] = {
            "collisions": [
                {
                    "probe_a": collision.probe_a,
                    "seed_a": collision.seed_a,
                    "probe_b": collision.probe_b,
                    "seed_b": collision.seed_b,
                }
                for collision in seed_collisions
            ],
            "clean": not seed_collisions,
        }
    return document


def write_json(path: PathLike, document: Dict[str, Any]) -> None:
    """Write a verification document (pretty-printed, trailing newline)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def summarize_verdicts(certificates: Sequence[Certificate]) -> Dict[str, List[str]]:
    """Group algorithm names by verdict, for exit-code decisions."""
    groups: Dict[str, List[str]] = {"PASS": [], "FAIL": [], "INCONCLUSIVE": []}
    for certificate in certificates:
        groups.setdefault(certificate.verdict, []).append(certificate.algorithm)
    return groups
