"""Static seed audit: ``repro verify seeds``.

The audit instantiates every RNG-bearing component in the tree at a
handful of shared seeds, records each one's first :data:`DRAWS` random
draws, and flags any two components whose streams coincide.  Before
the namespaced seeding scheme (:mod:`repro.seeding`) this audit fails
loudly: ``ReservoirSampler(k, seed)`` and ``UniformItemSampler(seed)``
both drove ``random.Random(seed)``, every vectorized generator fed the
raw seed into ``PCG64``, and the linear-offset hash seeds
(``seed * 37 + 5``) collided across components.  After it, every pair
of probes draws from sha256-separated streams and the audit is clean.

Two failure modes are checked:

* **cross-component** — two different probes produce identical leading
  draws at the same seed (the shared-raw-seed bug);
* **cross-seed** — one probe produces identical draws at two different
  seeds (a component that ignores or clamps its seed).

Probes favor *live instances* over re-derivations of the tag strings
(reaching into private RNG attributes where needed) so the audit keeps
watching the real components even if the derivation call sites drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.triest import _ReservoirGraph
from ..graphs.generators import generator_rng, generator_scalar_rng
from ..seeding import component_rng, derive_seed
from ..sketches.hashing import KWiseHash
from ..sketches.reservoir import ReservoirSampler, UniformItemSampler

__all__ = [
    "AUDIT_SEEDS",
    "DRAWS",
    "SeedCollision",
    "SeedProbe",
    "audit_seeds",
    "default_probes",
]

#: How many leading draws each probe records.  64 doubles make an
#: accidental collision between independent streams impossible in
#: practice (probability ~ 2^-3000) — any match is a real shared stream.
DRAWS = 64

#: The shared seeds every probe is instantiated at.
AUDIT_SEEDS: Tuple[int, ...] = (0, 7, 123)

Drawer = Callable[[int], Tuple[float, ...]]


@dataclass(frozen=True)
class SeedProbe:
    """One named component and how to extract its leading draws."""

    name: str
    draw: Drawer


@dataclass(frozen=True)
class SeedCollision:
    """Two probe/seed coordinates that produced identical streams."""

    probe_a: str
    seed_a: int
    probe_b: str
    seed_b: int

    def describe(self) -> str:
        if self.probe_a == self.probe_b:
            return (
                f"{self.probe_a}: seeds {self.seed_a} and {self.seed_b} "
                f"produce identical draws (seed ignored?)"
            )
        return (
            f"{self.probe_a} and {self.probe_b} produce identical draws "
            f"at shared seed {self.seed_a} (correlated RNG streams)"
        )


# ----------------------------------------------------------------------
# probe constructors
# ----------------------------------------------------------------------
def _scalar_draws(rng) -> Tuple[float, ...]:
    return tuple(rng.random() for _ in range(DRAWS))


def _numpy_draws(rng: "np.random.Generator") -> Tuple[float, ...]:
    return tuple(float(x) for x in rng.random(DRAWS))


def _generator_probe(name: str) -> SeedProbe:
    return SeedProbe(
        name=f"generator:{name}",
        draw=lambda seed, _n=name: _numpy_draws(generator_rng(_n, seed)),
    )


def _scalar_generator_probe(name: str) -> SeedProbe:
    return SeedProbe(
        name=f"generator:{name}",
        draw=lambda seed, _n=name: _scalar_draws(generator_scalar_rng(_n, seed)),
    )


def _kwise_probe(namespace: str, k: int = 2) -> SeedProbe:
    label = namespace if namespace else "<default>"
    return SeedProbe(
        name=f"kwise:{label}",
        draw=lambda seed, _ns=namespace, _k=k: tuple(
            KWiseHash(k=_k, seed=seed, namespace=_ns).uniform(i) for i in range(DRAWS)
        ),
    )


_NUMPY_GENERATORS = (
    "erdos-renyi",
    "gnm",
    "barabasi-albert",
    "chung-lu",
    "power-law.weights",
    "user-item",
    "random-bipartite",
    "planted-triangles",
    "planted-four-cycles",
    "planted-diamonds",
    "heavy-edge",
)

_SCALAR_GENERATORS = (
    "erdos-renyi-loop",
    "gnm-loop",
    "chung-lu-loop",
    "random-bipartite-loop",
)

#: KWiseHash namespaces in live use across the tree.  Probing several
#: proves the namespace really decorrelates the coefficient streams.
_KWISE_NAMESPACES = (
    "",
    "edge-sampling.sample",
    "mvv-twopass.sample",
    "wedge-pair-sampling.wedge",
    "fourcycle-distinguisher.sample",
    "useful.r1",
    "useful.r2",
)


def default_probes() -> List[SeedProbe]:
    """The full probe registry (rebuilt per call; probes are stateless)."""
    probes: List[SeedProbe] = []
    probes.extend(_generator_probe(name) for name in _NUMPY_GENERATORS)
    probes.extend(_scalar_generator_probe(name) for name in _SCALAR_GENERATORS)
    probes.append(
        SeedProbe(
            "sketch:reservoir-sampler",
            lambda seed: _scalar_draws(ReservoirSampler(8, seed=seed)._rng),
        )
    )
    probes.append(
        SeedProbe(
            "sketch:uniform-item-sampler",
            lambda seed: _scalar_draws(UniformItemSampler(seed=seed)._rng),
        )
    )
    probes.append(
        SeedProbe(
            "triest:reservoir[base]",
            lambda seed: _scalar_draws(_ReservoirGraph(8, seed, variant="base")._rng),
        )
    )
    probes.append(
        SeedProbe(
            "triest:reservoir[impr]",
            lambda seed: _scalar_draws(_ReservoirGraph(8, seed, variant="impr")._rng),
        )
    )
    probes.append(
        SeedProbe(
            "stream:random-order",
            lambda seed: _scalar_draws(component_rng("stream:random-order", seed=seed)),
        )
    )
    probes.append(
        SeedProbe(
            "stream:adjacency-list",
            lambda seed: _scalar_draws(
                component_rng("stream:adjacency-list", seed=seed)
            ),
        )
    )
    probes.append(
        SeedProbe(
            "baseline:bera-chakrabarti.positions",
            lambda seed: _scalar_draws(
                component_rng("bera-chakrabarti.positions", seed=seed)
            ),
        )
    )
    probes.append(
        SeedProbe(
            "core:fourcycle-l2.coin",
            lambda seed: _scalar_draws(component_rng("fourcycle-l2.coin", seed=seed)),
        )
    )
    probes.append(
        SeedProbe(
            "sketch:wedge-f2.signs",
            lambda seed: _numpy_draws(
                np.random.Generator(
                    np.random.Philox(
                        key=derive_seed("sketch:wedge-f2.signs", 40, seed=seed)
                    )
                )
            ),
        )
    )
    probes.extend(_kwise_probe(namespace) for namespace in _KWISE_NAMESPACES)
    return probes


# ----------------------------------------------------------------------
# the audit
# ----------------------------------------------------------------------
def audit_seeds(
    probes: Optional[Sequence[SeedProbe]] = None,
    seeds: Sequence[int] = AUDIT_SEEDS,
) -> List[SeedCollision]:
    """Run the audit; the returned list is empty iff the tree is clean.

    Args:
        probes: probe registry (defaults to :func:`default_probes`).
            Tests inject stub probes here — e.g. two raw-seeded
            components reproducing the pre-fix tree — to prove the
            audit actually fires.
        seeds: the shared seeds to instantiate every probe at.
    """
    if probes is None:
        probes = default_probes()
    names = [probe.name for probe in probes]
    if len(set(names)) != len(names):
        raise ValueError("probe names must be unique")
    streams: Dict[Tuple[str, int], Tuple[float, ...]] = {
        (probe.name, seed): probe.draw(seed) for probe in probes for seed in seeds
    }
    collisions: List[SeedCollision] = []
    # cross-component: same seed, different probes
    for seed in seeds:
        for i, probe_a in enumerate(probes):
            for probe_b in probes[i + 1 :]:
                if streams[(probe_a.name, seed)] == streams[(probe_b.name, seed)]:
                    collisions.append(
                        SeedCollision(probe_a.name, seed, probe_b.name, seed)
                    )
    # cross-seed: same probe, different seeds
    for probe in probes:
        for i, seed_a in enumerate(seeds):
            for seed_b in seeds[i + 1 :]:
                if streams[(probe.name, seed_a)] == streams[(probe.name, seed_b)]:
                    collisions.append(
                        SeedCollision(probe.name, seed_a, probe.name, seed_b)
                    )
    return collisions
