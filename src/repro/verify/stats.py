"""Small-sample binomial statistics for guarantee certification.

Certification observes ``k`` failures in ``n`` Monte Carlo trials and
must decide whether the true failure probability is below the
theorem's ``delta``.  Everything here is dependency-free (no scipy):

* :func:`wilson_interval` — the Wilson score interval, the default
  because it is well-behaved at ``k = 0`` (the common case when the
  paper budget holds).
* :func:`clopper_pearson_interval` — the exact binomial interval via
  bisection on the binomial tail; conservative, never anti-
  conservative, used when a certificate must be airtight.
* :func:`variance_ratio_bounds` — chi-square acceptance bounds for the
  empirical/theoretical variance ratio of ``n`` i.i.d. trials
  (Wilson–Hilferty approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "BinomialCI",
    "binomial_tail_ge",
    "chi_square_quantile",
    "clopper_pearson_interval",
    "inverse_normal_cdf",
    "variance_ratio_bounds",
    "wilson_interval",
]


@dataclass(frozen=True)
class BinomialCI:
    """A two-sided confidence interval on a binomial proportion."""

    low: float
    high: float
    method: str
    confidence: float

    def __contains__(self, p: float) -> bool:
        return self.low <= p <= self.high


# ----------------------------------------------------------------------
# inverse normal CDF (Acklam's rational approximation, |err| < 1.2e-9)
# ----------------------------------------------------------------------
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425


def inverse_normal_cdf(q: float) -> float:
    """The standard normal quantile ``Phi^{-1}(q)`` for ``q`` in (0, 1)."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile argument must be in (0, 1), got {q}")
    if q < _P_LOW:
        u = math.sqrt(-2.0 * math.log(q))
        return (
            ((((_C[0] * u + _C[1]) * u + _C[2]) * u + _C[3]) * u + _C[4]) * u + _C[5]
        ) / ((((_D[0] * u + _D[1]) * u + _D[2]) * u + _D[3]) * u + 1.0)
    if q > 1.0 - _P_LOW:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(
            ((((_C[0] * u + _C[1]) * u + _C[2]) * u + _C[3]) * u + _C[4]) * u + _C[5]
        ) / ((((_D[0] * u + _D[1]) * u + _D[2]) * u + _D[3]) * u + 1.0)
    u = q - 0.5
    r = u * u
    return (
        (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
        * u
        / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
    )


# ----------------------------------------------------------------------
# Wilson score interval
# ----------------------------------------------------------------------
def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> BinomialCI:
    """The Wilson score interval for ``successes / trials``."""
    _check_counts(successes, trials, confidence)
    z = inverse_normal_cdf(0.5 + confidence / 2.0)
    n = float(trials)
    phat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (phat + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n))
    return BinomialCI(
        low=max(0.0, center - half),
        high=min(1.0, center + half),
        method="wilson",
        confidence=confidence,
    )


# ----------------------------------------------------------------------
# exact (Clopper–Pearson) interval via binomial-tail bisection
# ----------------------------------------------------------------------
def _log_binom_coeff(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def binomial_tail_ge(k: int, n: int, p: float) -> float:
    """``P(X >= k)`` for ``X ~ Binomial(n, p)``, computed in log space."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for j in range(k, n + 1):
        total += math.exp(_log_binom_coeff(n, j) + j * log_p + (n - j) * log_q)
    return min(1.0, total)


def _bisect(fn, target: float, lo: float, hi: float, iterations: int = 80) -> float:
    """Solve ``fn(p) = target`` for ``fn`` monotone increasing on [lo, hi]."""
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if fn(mid) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> BinomialCI:
    """The exact (Clopper–Pearson) two-sided binomial interval.

    ``low`` solves ``P(X >= k | p) = alpha/2`` and ``high`` solves
    ``P(X <= k | p) = alpha/2`` — both tails are monotone in ``p``, so
    plain bisection suffices and no Beta quantile is needed.
    """
    _check_counts(successes, trials, confidence)
    alpha = 1.0 - confidence
    k, n = successes, trials
    if k == 0:
        low = 0.0
    else:
        low = _bisect(lambda p: binomial_tail_ge(k, n, p), alpha / 2.0, 0.0, 1.0)
    if k == n:
        high = 1.0
    else:
        # P(X <= k | p) = 1 - P(X >= k+1 | p) is decreasing in p, so
        # P(X >= k+1 | p) is increasing: solve it against 1 - alpha/2.
        high = _bisect(
            lambda p: binomial_tail_ge(k + 1, n, p), 1.0 - alpha / 2.0, 0.0, 1.0
        )
    return BinomialCI(low=low, high=high, method="clopper-pearson", confidence=confidence)


def _check_counts(successes: int, trials: int, confidence: float) -> None:
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


# ----------------------------------------------------------------------
# chi-square variance-ratio bounds
# ----------------------------------------------------------------------
def chi_square_quantile(df: int, q: float) -> float:
    """The chi-square quantile via the Wilson–Hilferty cube approximation.

    Accurate to a few percent for ``df >= 10`` — plenty for acceptance
    bands on a Monte Carlo variance ratio.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    z = inverse_normal_cdf(q)
    a = 2.0 / (9.0 * df)
    return df * (1.0 - a + z * math.sqrt(a)) ** 3


def variance_ratio_bounds(
    trials: int, confidence: float = 0.99, widen: float = 1.0
) -> Tuple[float, float]:
    """Acceptance band for ``sample_var / true_var`` over ``trials`` draws.

    Under normality the ratio is ``chi2(n-1)/(n-1)``; our estimators are
    sums of many Bernoullis, close enough for an acceptance band.
    ``widen`` multiplies the upper bound and divides the lower bound to
    absorb the heavier tails of small-``p`` Bernoulli sums.
    """
    if trials < 2:
        raise ValueError(f"need at least two trials for a variance, got {trials}")
    if widen < 1.0:
        raise ValueError(f"widen factor must be >= 1, got {widen}")
    df = trials - 1
    alpha = 1.0 - confidence
    low = chi_square_quantile(df, alpha / 2.0) / df
    high = chi_square_quantile(df, 1.0 - alpha / 2.0) / df
    return low / widen, high * widen
