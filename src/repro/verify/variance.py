"""Empirical-vs-theoretical variance checks for unbiased estimators.

The closed-form variances of :mod:`repro.verify.budgets` are exact on
the vertex-disjoint planted workloads, so the sample variance of ``N``
independent trials should match them — a much sharper probe of seeding
bugs than accuracy alone.  Correlated RNG streams (the bug class the
namespaced seeding of :mod:`repro.seeding` eliminates) typically
*shrink* the apparent variance: two "independent" components sharing a
stream act like one, and the empirical/theoretical ratio collapses
below the chi-square band.  This check is what would have caught it.

Three kinds of comparison, matching :attr:`GuaranteePlan.variance_kind`:

* ``exact`` — ratio must land inside the two-sided chi-square band of
  :func:`repro.verify.stats.variance_ratio_bounds` (widened for the
  non-normality of small Bernoulli sums).
* ``upper-bound`` — the theoretical value is only a bound (e.g.
  TRIEST-impr's ``T (eta - 1)``); the ratio must stay below the plan's
  slack, and an *extremely* small ratio is fine.
* ``implied`` — no closed form (the paper's own multi-pass
  algorithms); the empirical variance must stay below the Chebyshev
  requirement ``delta (eps T)^2`` the certification assumes.

Verdicts: ``OK`` inside the band, ``SUSPECT`` within 3x of it (noise),
``FAIL`` beyond — a FAIL on ``exact`` usually means either a broken
estimator or correlated randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import obs as _obs
from ..experiments.runner import run_trials
from ..resilience.checkpoint import NULL_CHECKPOINT, CheckpointContext
from ..seeding import derive_seed
from .certify import PAPER_DELTA, PAPER_EPSILON, PLANS
from .stats import variance_ratio_bounds

__all__ = ["VarianceModel", "VarianceReport", "check_variance", "check_variance_all"]

#: Widening factor on the chi-square band: our trial estimates are sums
#: of Bernoullis, whose kurtosis at moderate p inflates the variance of
#: the sample variance beyond the normal-theory chi-square.
CHI_SQUARE_WIDEN = 1.8


@dataclass(frozen=True)
class VarianceModel:
    """How a plan's theoretical variance is to be compared."""

    kind: str  # "exact" | "upper-bound" | "implied"
    slack: float = 1.0


@dataclass
class VarianceReport:
    """Outcome of one empirical-vs-theoretical variance comparison."""

    algorithm: str
    kind: str
    trials: int
    empirical: float
    theoretical: float
    ratio: float
    band_low: float
    band_high: float
    verdict: str  # "OK" | "SUSPECT" | "FAIL"
    mean_estimate: float
    truth: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "verdict": self.verdict,
            "trials": self.trials,
            "empirical_var": round(self.empirical, 2),
            "theoretical_var": round(self.theoretical, 2),
            "ratio": round(self.ratio, 3),
            "band": f"[{self.band_low:.2f}, {self.band_high:.2f}]",
        }


def _sample_variance(values: Sequence[float]) -> float:
    n = len(values)
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values) / (n - 1)


def check_variance(
    name: str,
    epsilon: float = PAPER_EPSILON,
    delta: float = PAPER_DELTA,
    *,
    trials: int = 64,
    seed: int = 0,
    n_jobs: int = 1,
    quick: bool = False,
    checkpoint: CheckpointContext = NULL_CHECKPOINT,
) -> VarianceReport:
    """Run ``trials`` independent trials of a plan at its paper budget
    and compare the sample variance against the theoretical value."""
    try:
        plan = PLANS[name]
    except KeyError:
        known = ", ".join(sorted(PLANS))
        raise KeyError(f"unknown guarantee plan {name!r}; known: {known}") from None
    if trials < 8:
        raise ValueError(f"variance checks need at least 8 trials, got {trials}")
    built = plan.build(epsilon, delta, seed, quick)
    theoretical = built.budget.detail["variance"]
    telemetry = _obs.current()
    with telemetry.tracer.span(
        "verify:variance", kind="verify", algorithm=name, trials=trials
    ):
        unit = f"variance|{name}|eps={epsilon}|delta={delta:.6f}|quick={quick}|n={trials}"
        payload = checkpoint.unit(
            unit,
            lambda: {
                "estimates": list(
                    run_trials(
                        built.algorithm_factory,
                        built.stream_factory,
                        truth=built.truth,
                        trials=trials,
                        base_seed=derive_seed("verify:variance", name, seed=seed),
                        n_jobs=n_jobs,
                    ).estimates
                )
            },
        )
    estimates = payload["estimates"]
    empirical = _sample_variance(estimates)
    mean_estimate = sum(estimates) / len(estimates)

    kind = plan.variance_kind
    slack = plan.variance_slack
    if kind == "exact":
        if theoretical <= 0.0:
            # p capped at 1: the estimator is exact; empirical must be ~0
            band_low, band_high = 0.0, 1e-9
            ratio = empirical
        else:
            band_low, band_high = variance_ratio_bounds(
                len(estimates), confidence=0.99, widen=CHI_SQUARE_WIDEN
            )
            ratio = empirical / theoretical
        verdict = _band_verdict(ratio, band_low, band_high)
    elif kind in ("upper-bound", "implied"):
        band_low, band_high = 0.0, slack if kind == "upper-bound" else 1.0
        ratio = empirical / theoretical if theoretical > 0 else math.inf
        if ratio <= band_high:
            verdict = "OK"
        elif ratio <= 3.0 * band_high:
            verdict = "SUSPECT"
        else:
            verdict = "FAIL"
    else:
        raise ValueError(f"unknown variance kind {kind!r}")
    if telemetry.enabled:
        telemetry.metrics.set_gauge(f"verify.variance_ratio.{name}", ratio)
    return VarianceReport(
        algorithm=name,
        kind=kind,
        trials=len(estimates),
        empirical=empirical,
        theoretical=theoretical,
        ratio=ratio,
        band_low=band_low,
        band_high=band_high,
        verdict=verdict,
        mean_estimate=mean_estimate,
        truth=built.truth,
        detail=dict(built.budget.detail),
    )


def _band_verdict(ratio: float, low: float, high: float) -> str:
    if low <= ratio <= high:
        return "OK"
    if low / 3.0 <= ratio <= high * 3.0:
        return "SUSPECT"
    return "FAIL"


def check_variance_all(
    names: Optional[Sequence[str]] = None,
    epsilon: float = PAPER_EPSILON,
    delta: float = PAPER_DELTA,
    **kwargs: Any,
) -> List[VarianceReport]:
    """Variance-check every plan (or the named subset)."""
    selected = list(names) if names else sorted(PLANS)
    return [check_variance(name, epsilon, delta, **kwargs) for name in selected]
