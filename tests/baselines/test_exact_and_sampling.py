"""Exact-stream and naive edge-sampling baselines."""

import statistics

import pytest

from repro.baselines import (
    EdgeSamplingFourCycles,
    EdgeSamplingTriangles,
    ExactFourCycleStream,
    ExactTriangleStream,
)
from repro.graphs import (
    complete_graph,
    erdos_renyi,
    four_cycle_count,
    triangle_count,
)
from repro.streams import AdjacencyListStream, ArbitraryOrderStream, RandomOrderStream


class TestExactStream:
    def test_triangles(self):
        graph = erdos_renyi(40, 0.3, seed=1)
        result = ExactTriangleStream().run(ArbitraryOrderStream.from_graph(graph))
        assert result.estimate == triangle_count(graph)
        assert result.space_items == graph.num_edges

    def test_four_cycles(self):
        graph = erdos_renyi(40, 0.3, seed=1)
        result = ExactFourCycleStream().run(RandomOrderStream(graph, seed=2))
        assert result.estimate == four_cycle_count(graph)

    def test_adjacency_duplicates_ignored(self):
        graph = erdos_renyi(30, 0.3, seed=3)
        result = ExactFourCycleStream().run(AdjacencyListStream(graph, seed=1))
        assert result.estimate == four_cycle_count(graph)
        assert result.space_items == graph.num_edges


class TestEdgeSampling:
    def test_validates_p(self):
        with pytest.raises(ValueError):
            EdgeSamplingTriangles(p=0.0)
        with pytest.raises(ValueError):
            EdgeSamplingFourCycles(p=1.5)

    def test_p_one_is_exact(self):
        graph = complete_graph(12)
        triangles = EdgeSamplingTriangles(p=1.0, seed=1).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        assert triangles.estimate == triangle_count(graph)
        cycles = EdgeSamplingFourCycles(p=1.0, seed=1).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        assert cycles.estimate == four_cycle_count(graph)

    def test_roughly_unbiased_triangles(self):
        graph = complete_graph(14)
        truth = triangle_count(graph)
        estimates = [
            EdgeSamplingTriangles(p=0.6, seed=seed)
            .run(ArbitraryOrderStream.from_graph(graph))
            .estimate
            for seed in range(30)
        ]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - truth) / truth < 0.25

    def test_space_tracks_p(self):
        graph = erdos_renyi(60, 0.3, seed=4)
        low = EdgeSamplingTriangles(p=0.2, seed=1).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        high = EdgeSamplingTriangles(p=0.8, seed=1).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        assert low.space_items < high.space_items
