"""The two-pass arbitrary-order triangle baseline."""

import statistics

import pytest

from repro.baselines import TwoPassTriangles
from repro.graphs import (
    complete_graph,
    heavy_edge_graph,
    planted_triangles,
    triangle_count,
)
from repro.streams import ArbitraryOrderStream, RandomOrderStream


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            TwoPassTriangles(t_guess=0)
        with pytest.raises(ValueError):
            TwoPassTriangles(t_guess=5, epsilon=0)


class TestExactMode:
    def test_p_one_counts_exactly(self):
        graph = complete_graph(12)
        truth = triangle_count(graph)
        result = TwoPassTriangles(t_guess=1, epsilon=0.9, c=100, seed=1).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        assert result.details["p"] == 1.0
        assert result.estimate == pytest.approx(truth)

    def test_two_passes(self):
        graph = complete_graph(8)
        stream = ArbitraryOrderStream.from_graph(graph)
        TwoPassTriangles(t_guess=10, seed=1).run(stream)
        assert stream.passes_taken == 2


class TestSampledMode:
    def test_unbiased_median(self):
        graph = planted_triangles(600, 150, extra_edges=800, seed=1)
        truth = triangle_count(graph)
        estimates = [
            TwoPassTriangles(t_guess=truth, epsilon=0.3, seed=seed)
            .run(RandomOrderStream(graph, seed=100 + seed))
            .estimate
            for seed in range(9)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.35

    def test_heavy_edge_workload_ok_in_two_passes(self):
        """Unlike one-pass prefix sampling, the two-pass estimator
        counts per-edge triangles exactly and is robust to heavy edges
        — the contrast Theorem 2.1 achieves in ONE pass given random
        order."""
        graph = heavy_edge_graph(1200, heavy_triangles=300, light_triangles=100, seed=1)
        truth = triangle_count(graph)
        estimates = [
            TwoPassTriangles(t_guess=truth, epsilon=0.3, seed=seed)
            .run(ArbitraryOrderStream.from_graph(graph))
            .estimate
            for seed in range(9)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.35

    def test_order_insensitive_expectation(self):
        """Arbitrary order: the same sample gives the same count in
        any arrival order (the count is exact per sampled edge)."""
        graph = planted_triangles(300, 60, extra_edges=200, seed=4)
        a = TwoPassTriangles(t_guess=60, epsilon=0.3, seed=7).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        b = TwoPassTriangles(t_guess=60, epsilon=0.3, seed=7).run(
            RandomOrderStream(graph, seed=99)
        )
        assert a.estimate == pytest.approx(b.estimate)

    def test_space_metered(self):
        graph = planted_triangles(300, 60, extra_edges=200, seed=4)
        result = TwoPassTriangles(t_guess=60, epsilon=0.3, seed=7).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        assert result.space.peak_of("sampled_edges") == result.details["sampled_edges"]
        assert result.space.peak_of("half_wedges") > 0
