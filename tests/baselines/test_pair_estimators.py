"""Cormode–Jowhari, Bera–Chakrabarti and wedge-pair-sampling baselines."""

import statistics

import pytest

from repro.baselines import (
    BeraChakrabartiFourCycles,
    CormodeJowhariTriangles,
    WedgePairSamplingFourCycles,
)
from repro.graphs import (
    complete_bipartite,
    four_cycle_count,
    heavy_edge_graph,
    planted_diamonds,
    planted_four_cycles,
    planted_triangles,
    total_wedges,
    triangle_count,
)
from repro.streams import AdjacencyListStream, ArbitraryOrderStream, RandomOrderStream


class TestCormodeJowhari:
    def test_validates(self):
        with pytest.raises(ValueError):
            CormodeJowhariTriangles(t_guess=0)

    def test_light_workload_accuracy(self):
        graph = planted_triangles(600, 150, extra_edges=800, seed=1)
        truth = triangle_count(graph)
        estimates = [
            CormodeJowhariTriangles(t_guess=truth, epsilon=0.3)
            .run(RandomOrderStream(graph, seed=100 + seed))
            .estimate
            for seed in range(9)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.35

    def test_full_prefix_is_exact(self):
        graph = planted_triangles(200, 20, extra_edges=100, seed=2)
        result = CormodeJowhariTriangles(t_guess=1, epsilon=0.9, c=100).run(
            RandomOrderStream(graph, seed=1)
        )
        assert result.details["beta"] == 1.0
        assert result.estimate == triangle_count(graph)

    def test_wider_error_than_mv_on_heavy_workload(self):
        """The shape claim of E1: without heavy-edge handling, the error
        spread on a heavy-edge graph is larger than Theorem 2.1's."""
        from repro.core import TriangleRandomOrder

        graph = heavy_edge_graph(1200, heavy_triangles=300, light_triangles=100, seed=1)
        truth = triangle_count(graph)
        cj_errors, mv_errors = [], []
        for seed in range(9):
            stream = RandomOrderStream(graph, seed=100 + seed)
            cj = CormodeJowhariTriangles(t_guess=truth, epsilon=0.3).run(stream)
            cj_errors.append(abs(cj.estimate - truth) / truth)
            stream = RandomOrderStream(graph, seed=100 + seed)
            mv = TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=seed).run(stream)
            mv_errors.append(abs(mv.estimate - truth) / truth)
        assert statistics.mean(mv_errors) < statistics.mean(cj_errors)


class TestBeraChakrabarti:
    def test_validates(self):
        with pytest.raises(ValueError):
            BeraChakrabartiFourCycles(t_guess=0)

    def test_accuracy(self):
        graph = planted_four_cycles(1200, 250, extra_edges=400, seed=2)
        truth = four_cycle_count(graph)
        estimates = [
            BeraChakrabartiFourCycles(t_guess=truth, epsilon=0.3, seed=seed)
            .run(RandomOrderStream(graph, seed=100 + seed))
            .estimate
            for seed in range(9)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.35

    def test_two_passes(self):
        graph = planted_four_cycles(300, 30, seed=3)
        stream = ArbitraryOrderStream.from_graph(graph)
        BeraChakrabartiFourCycles(t_guess=30, seed=1).run(stream)
        assert stream.passes_taken == 2

    def test_cycle_free_estimates_zero(self):
        from repro.graphs import friendship_graph

        graph = friendship_graph(100)
        result = BeraChakrabartiFourCycles(t_guess=100, seed=1).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        assert result.estimate == 0.0

    def test_space_grows_as_m2_over_t(self):
        graph = planted_four_cycles(1200, 250, extra_edges=400, seed=2)
        small_t = BeraChakrabartiFourCycles(t_guess=50, epsilon=0.3, seed=1).run(
            RandomOrderStream(graph, seed=1)
        )
        large_t = BeraChakrabartiFourCycles(t_guess=5000, epsilon=0.3, seed=1).run(
            RandomOrderStream(graph, seed=1)
        )
        assert large_t.details["pairs"] < small_t.details["pairs"]


class TestWedgePairSampling:
    def test_validates(self):
        with pytest.raises(ValueError):
            WedgePairSamplingFourCycles(wedge_probability=0)

    def test_full_sampling_exact(self):
        graph = complete_bipartite(2, 20)
        result = WedgePairSamplingFourCycles(wedge_probability=1.0, seed=1).run(
            AdjacencyListStream(graph, seed=1)
        )
        assert result.estimate == four_cycle_count(graph)

    def test_sampled_accuracy(self):
        graph = planted_diamonds(900, sizes=[15] * 8 + [5] * 15, extra_edges=200, seed=3)
        truth = four_cycle_count(graph)
        estimates = [
            WedgePairSamplingFourCycles(wedge_probability=0.5, seed=seed)
            .run(AdjacencyListStream(graph, seed=100 + seed))
            .estimate
            for seed in range(9)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.35

    def test_for_space_budget(self):
        graph = planted_diamonds(900, sizes=[15] * 8, seed=4)
        wedges = total_wedges(graph)
        algorithm = WedgePairSamplingFourCycles.for_space_budget(wedges, wedges // 4)
        assert algorithm.wedge_probability == pytest.approx(0.25)
