"""TRIEST base and impr."""

import statistics

import pytest

from repro.baselines import TriestBase, TriestImpr
from repro.graphs import complete_graph, planted_triangles, triangle_count
from repro.streams import RandomOrderStream


class TestValidation:
    def test_memory_floor(self):
        with pytest.raises(ValueError):
            TriestBase(memory=2)
        with pytest.raises(ValueError):
            TriestImpr(memory=2)


class TestExactRegime:
    """Memory >= m: the reservoir holds everything, counts are exact."""

    def test_base_exact(self):
        graph = complete_graph(12)  # m = 66
        result = TriestBase(memory=100, seed=1).run(RandomOrderStream(graph, seed=1))
        assert result.estimate == triangle_count(graph)

    def test_impr_exact(self):
        graph = complete_graph(12)
        result = TriestImpr(memory=100, seed=1).run(RandomOrderStream(graph, seed=1))
        assert result.estimate == triangle_count(graph)


class TestSampledRegime:
    def test_impr_concentration(self):
        graph = planted_triangles(500, 120, extra_edges=700, seed=2)
        truth = triangle_count(graph)
        estimates = [
            TriestImpr(memory=400, seed=seed)
            .run(RandomOrderStream(graph, seed=100 + seed))
            .estimate
            for seed in range(9)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.35

    def test_base_unbiased_on_average(self):
        graph = planted_triangles(300, 60, extra_edges=300, seed=3)
        truth = triangle_count(graph)
        estimates = [
            TriestBase(memory=250, seed=seed)
            .run(RandomOrderStream(graph, seed=100 + seed))
            .estimate
            for seed in range(25)
        ]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - truth) / truth < 0.5

    def test_memory_respected(self):
        graph = planted_triangles(500, 120, extra_edges=700, seed=2)
        result = TriestImpr(memory=200, seed=1).run(RandomOrderStream(graph, seed=1))
        assert result.space.peak_of("reservoir_edges") <= 200

    def test_estimates_nonnegative(self):
        graph = planted_triangles(300, 20, extra_edges=600, seed=4)
        for seed in range(5):
            result = TriestBase(memory=100, seed=seed).run(
                RandomOrderStream(graph, seed=seed)
            )
            assert result.estimate >= 0
