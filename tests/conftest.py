"""Shared fixtures: small reference graphs with known exact counts."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
)


@pytest.fixture
def triangle() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square() -> Graph:
    return cycle_graph(4)


@pytest.fixture
def k5() -> Graph:
    return complete_graph(5)


@pytest.fixture
def k33() -> Graph:
    return complete_bipartite(3, 3)


@pytest.fixture
def grid_4x5() -> Graph:
    return grid_graph(4, 5)


@pytest.fixture
def small_random() -> Graph:
    return erdos_renyi(30, 0.25, seed=7)
