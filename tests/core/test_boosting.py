"""MedianBoost amplification."""

import statistics

import pytest

from repro.core import (
    EstimateResult,
    MedianBoost,
    TriangleRandomOrder,
    copies_for_failure_probability,
)
from repro.graphs import planted_triangles, triangle_count
from repro.streams import ArbitraryOrderStream, RandomOrderStream, SpaceMeter


class _NoisyStub:
    """Estimates 100 +- a seed-dependent wobble; one copy in four is
    a wild outlier — the median must shrug it off."""

    def __init__(self, seed):
        self.seed = seed

    def run(self, stream):
        list(stream.edges())
        wobble = (self.seed % 7) - 3
        estimate = 100.0 + wobble
        if self.seed % 4 == 0:
            estimate = 10_000.0
        meter = SpaceMeter()
        meter.add("stub", 5)
        return EstimateResult(estimate, stream.passes_taken, meter, "stub")


class TestMedianBoost:
    def test_validates_copies(self):
        with pytest.raises(ValueError):
            MedianBoost(lambda seed: _NoisyStub(seed), copies=0)

    def test_median_suppresses_outliers(self):
        stream = ArbitraryOrderStream([(0, 1), (1, 2)])
        boost = MedianBoost(lambda seed: _NoisyStub(seed), copies=7, seed=1)
        result = boost.run(stream)
        assert 90 <= result.estimate <= 110

    def test_space_is_summed(self):
        stream = ArbitraryOrderStream([(0, 1)])
        result = MedianBoost(lambda seed: _NoisyStub(seed), copies=3, seed=1).run(stream)
        assert result.space_items == 15

    def test_passes_reported_per_copy(self):
        stream = ArbitraryOrderStream([(0, 1)])
        result = MedianBoost(lambda seed: _NoisyStub(seed), copies=4, seed=1).run(stream)
        assert result.passes == 1  # each stub copy takes one pass

    def test_details(self):
        stream = ArbitraryOrderStream([(0, 1)])
        result = MedianBoost(lambda seed: _NoisyStub(seed), copies=3, seed=1).run(stream)
        assert result.details["copies"] == 3
        assert len(result.details["estimates"]) == 3
        assert result.details["inner_algorithm"] == "stub"

    def test_boost_on_real_algorithm_tightens_errors(self):
        graph = planted_triangles(500, 120, extra_edges=700, seed=2)
        truth = triangle_count(graph)

        single_errors = []
        boosted_errors = []
        for trial in range(5):
            stream = RandomOrderStream(graph, seed=200 + trial)
            single = TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=trial).run(
                stream
            )
            single_errors.append(abs(single.estimate - truth) / truth)

            stream = RandomOrderStream(graph, seed=200 + trial)
            boosted = MedianBoost(
                lambda seed: TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=seed),
                copies=5,
                seed=trial,
            ).run(stream)
            boosted_errors.append(abs(boosted.estimate - truth) / truth)
        # boosting should not be worse on aggregate
        assert statistics.mean(boosted_errors) <= statistics.mean(single_errors) + 0.05


class TestCopiesForFailureProbability:
    def test_monotone_in_delta(self):
        assert copies_for_failure_probability(0.01) > copies_for_failure_probability(0.2)

    def test_always_odd(self):
        for delta in (0.3, 0.1, 0.01, 0.001):
            assert copies_for_failure_probability(delta) % 2 == 1

    def test_validates(self):
        with pytest.raises(ValueError):
            copies_for_failure_probability(0.0)
        with pytest.raises(ValueError):
            copies_for_failure_probability(0.1, base_failure=0.5)
