"""Theorem 5.6: the two-pass 0-vs-T four-cycle distinguisher."""

import math

import pytest

from repro.core import FourCycleDistinguisher, distinguish_with_boost
from repro.graphs import (
    complete_bipartite,
    four_cycle_count,
    friendship_graph,
    planted_four_cycles,
    star_graph,
)
from repro.streams import ArbitraryOrderStream, RandomOrderStream


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            FourCycleDistinguisher(t_guess=0)
        with pytest.raises(ValueError):
            FourCycleDistinguisher(t_guess=5, c=0)


class TestOneSidedNo:
    """On four-cycle-free graphs the answer is always NO."""

    @pytest.mark.parametrize("seed", range(4))
    def test_friendship_graph(self, seed):
        graph = friendship_graph(120)
        algorithm = FourCycleDistinguisher(t_guess=60, c=3.0, seed=seed)
        assert not algorithm.decide(ArbitraryOrderStream.from_graph(graph))

    def test_star(self):
        graph = star_graph(200)
        algorithm = FourCycleDistinguisher(t_guess=40, c=3.0, seed=1)
        assert not algorithm.decide(ArbitraryOrderStream.from_graph(graph))


class TestYesDetection:
    def test_planted_cycles_detected_majority(self):
        graph = planted_four_cycles(500, 80, extra_edges=100, seed=4)
        truth = four_cycle_count(graph)
        hits = 0
        for seed in range(9):
            algorithm = FourCycleDistinguisher(t_guess=truth, c=3.0, seed=seed)
            hits += algorithm.decide(RandomOrderStream(graph, seed=800 + seed))
        assert hits >= 6  # theorem promises >= 2/3

    def test_dense_bipartite_detected(self):
        graph = complete_bipartite(10, 10)
        truth = four_cycle_count(graph)
        algorithm = FourCycleDistinguisher(t_guess=truth, c=2.0, seed=1)
        assert algorithm.decide(ArbitraryOrderStream.from_graph(graph))

    def test_witness_is_a_real_cycle(self):
        graph = complete_bipartite(6, 6)
        result = FourCycleDistinguisher(t_guess=four_cycle_count(graph), c=2.0, seed=1).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        if result.details["found"]:
            a, b, c, d = result.details["witness"]
            assert graph.has_edge(a, b)
            assert graph.has_edge(b, c)
            assert graph.has_edge(c, d)
            assert graph.has_edge(d, a)


class TestSpaceBound:
    def test_kst_cap_respected(self):
        """Collected induced edges never exceed 2 |V_S|^{3/2}."""
        graph = planted_four_cycles(800, 100, extra_edges=400, seed=5)
        truth = four_cycle_count(graph)
        for seed in range(4):
            result = FourCycleDistinguisher(t_guess=truth, c=1.0, seed=seed).run(
                RandomOrderStream(graph, seed=900 + seed)
            )
            collected = result.details["induced_edges_collected"]
            cap = 2.0 * result.details["sampled_vertices"] ** 1.5
            assert collected <= math.ceil(cap)

    def test_two_passes(self):
        graph = planted_four_cycles(300, 30, seed=6)
        stream = ArbitraryOrderStream.from_graph(graph)
        FourCycleDistinguisher(t_guess=30, seed=1).run(stream)
        assert stream.passes_taken == 2


class TestBoost:
    def test_boost_yes(self):
        graph = planted_four_cycles(500, 80, extra_edges=100, seed=4)
        truth = four_cycle_count(graph)
        answer = distinguish_with_boost(
            lambda j: RandomOrderStream(graph, seed=j),
            t_guess=truth,
            copies=5,
            c=3.0,
            seed=1,
        )
        assert answer

    def test_boost_no(self):
        graph = friendship_graph(120)
        answer = distinguish_with_boost(
            lambda j: ArbitraryOrderStream.from_graph(graph),
            t_guess=60,
            copies=5,
            c=3.0,
            seed=1,
        )
        assert not answer
