"""Distinguisher-search estimation (derived application of Thm 5.6)."""

import pytest

from repro.core.distinguisher_search import SearchOutcome, estimate_by_search
from repro.graphs import four_cycle_count, friendship_graph, planted_four_cycles
from repro.streams import ArbitraryOrderStream, RandomOrderStream


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            estimate_by_search(lambda s: None, max_promise=0.5)
        with pytest.raises(ValueError):
            estimate_by_search(lambda s: None, max_promise=10, ratio=1.0)


class TestSearch:
    def test_cycle_free_graph_never_detects(self):
        graph = friendship_graph(150)
        outcome = estimate_by_search(
            lambda seed: ArbitraryOrderStream.from_graph(graph),
            max_promise=10_000,
            seed=1,
        )
        assert outcome.lower == 0.0
        assert outcome.point_estimate == 0.0
        # every probe down to 1 was tried and none detected
        assert all(rate == 0.0 for _, rate in outcome.probes)

    def test_bracket_contains_truth_within_ratio(self):
        graph = planted_four_cycles(1500, 300, extra_edges=400, seed=2)
        truth = four_cycle_count(graph)
        outcome = estimate_by_search(
            lambda seed: RandomOrderStream(graph, seed=seed),
            max_promise=4.0 * graph.num_edges**2,
            ratio=4.0,
            seed=3,
        )
        assert outcome.lower > 0
        # the calibrated point estimate (midpoint / 2c^2) lands within
        # a couple of ratio steps of the truth (heuristic, so the band
        # is generous)
        assert truth / 16 <= outcome.point_estimate <= truth * 16

    def test_probe_trace_is_descending(self):
        graph = planted_four_cycles(600, 80, seed=4)
        outcome = estimate_by_search(
            lambda seed: RandomOrderStream(graph, seed=seed),
            max_promise=10_000,
            seed=5,
        )
        promises = [p for p, _ in outcome.probes]
        assert promises == sorted(promises, reverse=True)

    def test_point_estimate_is_calibrated_midpoint(self):
        outcome = SearchOutcome(probes=[(16.0, 1.0)], lower=16.0, upper=64.0, c=1.0)
        assert outcome.point_estimate == pytest.approx(32.0 / 2.0)
        assert outcome.bracket == (16.0, 64.0)
