"""Theorem 4.2: the two-pass adjacency-list diamond algorithm."""

import statistics

import pytest

from repro.core import FourCycleAdjacencyDiamond
from repro.graphs import (
    complete_bipartite,
    four_cycle_count,
    friendship_graph,
    planted_diamonds,
)
from repro.streams import AdjacencyListStream, ArbitraryOrderStream


def _median_estimate(graph, t_guess, trials=5, **kwargs):
    estimates = []
    for seed in range(trials):
        algorithm = FourCycleAdjacencyDiamond(t_guess=t_guess, seed=seed, **kwargs)
        stream = AdjacencyListStream(graph, seed=300 + seed)
        estimates.append(algorithm.run(stream).estimate)
    return statistics.median(estimates)


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            FourCycleAdjacencyDiamond(t_guess=0)
        with pytest.raises(ValueError):
            FourCycleAdjacencyDiamond(t_guess=5, epsilon=1.5)

    def test_requires_adjacency_stream(self):
        algorithm = FourCycleAdjacencyDiamond(t_guess=5)
        with pytest.raises(TypeError):
            algorithm.run(ArbitraryOrderStream([(0, 1)]))


class TestExactMode:
    """Small T drives every sampling probability to 1: results are exact
    up to the shift/size-class bookkeeping, which must lose almost
    nothing — a strong end-to-end check of the combination logic."""

    def test_planted_mixture(self):
        graph = planted_diamonds(
            800, sizes=[20] * 6 + [8] * 10 + [3] * 20, extra_edges=300, seed=5
        )
        truth = four_cycle_count(graph)
        estimate = _median_estimate(graph, t_guess=truth, epsilon=0.3, trials=3)
        assert abs(estimate - truth) / truth < 0.05

    def test_single_diamond(self):
        graph = complete_bipartite(2, 30)  # one diamond of size 30
        truth = four_cycle_count(graph)
        estimate = _median_estimate(graph, t_guess=truth, epsilon=0.3, trials=3)
        assert abs(estimate - truth) / truth < 0.1

    def test_cycle_free_graph(self):
        graph = friendship_graph(60)
        estimate = _median_estimate(graph, t_guess=10, epsilon=0.3, trials=3)
        assert estimate <= 2.0


class TestSampledMode:
    def test_large_t_accuracy(self):
        graph = planted_diamonds(
            2200, sizes=[50] * 8 + [20] * 12, extra_edges=500, seed=7
        )
        truth = four_cycle_count(graph)
        estimate = _median_estimate(graph, t_guess=truth, epsilon=0.3, c=0.5, trials=5)
        assert abs(estimate - truth) / truth < 0.25

    def test_two_passes_used(self):
        graph = planted_diamonds(300, sizes=[10] * 4, seed=1)
        stream = AdjacencyListStream(graph, seed=1)
        result = FourCycleAdjacencyDiamond(t_guess=180, seed=1).run(stream)
        assert result.passes == 2


class TestDiagnostics:
    def test_details(self):
        graph = planted_diamonds(300, sizes=[10] * 4, seed=1)
        truth = four_cycle_count(graph)
        result = FourCycleAdjacencyDiamond(t_guess=truth, seed=1).run(
            AdjacencyListStream(graph, seed=1)
        )
        details = result.details
        assert len(details["shift_totals"]) >= 1
        assert 0 <= details["best_shift"] < len(details["shift_totals"])
        assert details["num_classes"] == len(details["per_class"]) or details[
            "num_classes"
        ] >= 1
        # the chosen shift's total is the maximum
        assert details["shift_totals"][details["best_shift"]] == max(
            details["shift_totals"]
        )
        assert result.estimate == pytest.approx(max(details["shift_totals"]) / 2.0)
