"""Theorem 4.3b: the one-pass l2-sampling adjacency-list counter."""

import statistics

import pytest

from repro.core import FourCycleL2Sampling
from repro.graphs import erdos_renyi, four_cycle_count
from repro.streams import AdjacencyListStream, ArbitraryOrderStream


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            FourCycleL2Sampling(t_guess=0)
        with pytest.raises(ValueError):
            FourCycleL2Sampling(t_guess=10, num_samplers=0)

    def test_requires_adjacency_stream(self):
        with pytest.raises(TypeError):
            FourCycleL2Sampling(t_guess=5).run(ArbitraryOrderStream([(0, 1)]))


class TestAccuracy:
    def test_dense_graph_median(self):
        graph = erdos_renyi(40, 0.5, seed=3)
        truth = four_cycle_count(graph)
        estimates = []
        for seed in range(3):
            algorithm = FourCycleL2Sampling(
                t_guess=truth,
                epsilon=0.2,
                num_samplers=60,
                groups=7,
                group_size=40,
                seed=seed,
            )
            stream = AdjacencyListStream(graph, seed=700 + seed)
            estimates.append(algorithm.run(stream).estimate)
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.4

    def test_sampled_values_are_wedge_counts(self):
        """Recovered x values must be genuine wedge-vector entries."""
        from repro.graphs import wedge_counts

        graph = erdos_renyi(30, 0.4, seed=4)
        legal = set(wedge_counts(graph).values())
        algorithm = FourCycleL2Sampling(
            t_guess=four_cycle_count(graph), num_samplers=40, seed=1
        )
        result = algorithm.run(AdjacencyListStream(graph, seed=5))
        assert result.details["num_samples"] > 0
        for value in result.details["sampled_values"]:
            assert value in legal

    def test_space_reports_delta_buffer(self):
        graph = erdos_renyi(30, 0.4, seed=4)
        algorithm = FourCycleL2Sampling(t_guess=100, num_samplers=4, seed=1)
        result = algorithm.run(AdjacencyListStream(graph, seed=5))
        assert result.space.peak_of("adjacency_buffer") == result.details["max_degree"]

    def test_single_pass(self):
        graph = erdos_renyi(25, 0.4, seed=6)
        stream = AdjacencyListStream(graph, seed=1)
        result = FourCycleL2Sampling(t_guess=100, num_samplers=4, seed=0).run(stream)
        assert result.passes == 1
