"""Theorem 4.3a: the one-pass moment-based adjacency-list counter."""

import statistics

import pytest

from repro.core import FourCycleMoment
from repro.graphs import erdos_renyi, four_cycle_count, wedge_counts
from repro.streams import AdjacencyListStream, ArbitraryOrderStream


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            FourCycleMoment(t_guess=0)
        with pytest.raises(ValueError):
            FourCycleMoment(t_guess=10, epsilon=2.0)

    def test_requires_adjacency_stream(self):
        with pytest.raises(TypeError):
            FourCycleMoment(t_guess=5).run(ArbitraryOrderStream([(0, 1)]))


class TestAccuracy:
    def test_dense_graph_median(self):
        """The T = Omega(n^2) regime the theorem targets."""
        graph = erdos_renyi(50, 0.5, seed=3)
        truth = four_cycle_count(graph)
        assert truth > graph.num_vertices**2  # confirm the regime
        estimates = []
        for seed in range(5):
            algorithm = FourCycleMoment(
                t_guess=truth, epsilon=0.2, groups=7, group_size=40, seed=seed
            )
            stream = AdjacencyListStream(graph, seed=400 + seed)
            estimates.append(algorithm.run(stream).estimate)
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.3

    def test_f1_component_unbiased(self):
        """With pair probability forced to 1, F1_hat equals F1(z)."""
        graph = erdos_renyi(25, 0.4, seed=4)
        epsilon = 0.34
        cap = 1.0 / epsilon
        truth_f1 = sum(min(v, cap) for v in wedge_counts(graph).values())
        algorithm = FourCycleMoment(
            t_guess=1, epsilon=epsilon, c=10**9, groups=2, group_size=2, seed=0
        )
        result = algorithm.run(AdjacencyListStream(graph, seed=1))
        assert result.details["pair_probability"] == 1.0
        assert result.details["f1_hat"] == pytest.approx(truth_f1)

    def test_estimate_formula(self):
        graph = erdos_renyi(25, 0.4, seed=4)
        result = FourCycleMoment(t_guess=100, epsilon=0.2, seed=0).run(
            AdjacencyListStream(graph, seed=1)
        )
        f2, f1 = result.details["f2_hat"], result.details["f1_hat"]
        assert result.estimate == pytest.approx(max(0.0, (f2 - f1) / 4.0))

    def test_single_pass(self):
        graph = erdos_renyi(25, 0.4, seed=4)
        stream = AdjacencyListStream(graph, seed=1)
        result = FourCycleMoment(t_guess=100, seed=0).run(stream)
        assert result.passes == 1


class TestSpace:
    def test_pair_counters_shrink_with_t(self):
        graph = erdos_renyi(40, 0.4, seed=5)
        small_guess = FourCycleMoment(t_guess=100, epsilon=0.3, seed=1).run(
            AdjacencyListStream(graph, seed=2)
        )
        large_guess = FourCycleMoment(t_guess=10**6, epsilon=0.3, seed=1).run(
            AdjacencyListStream(graph, seed=2)
        )
        assert (
            large_guess.details["sampled_pairs_with_wedges"]
            <= small_guess.details["sampled_pairs_with_wedges"]
        )
