"""Theorem 5.7: one-pass arbitrary-order counter for dense graphs,
including the dynamic (insert/delete) extension."""

import statistics

import pytest

from repro.core import FourCycleArbitraryOnePass
from repro.graphs import erdos_renyi, four_cycle_count
from repro.streams import ArbitraryOrderStream, RandomOrderStream


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            FourCycleArbitraryOnePass(t_guess=0)
        with pytest.raises(ValueError):
            FourCycleArbitraryOnePass(t_guess=10, epsilon=0)


class TestAccuracy:
    def test_dense_graph_median(self):
        graph = erdos_renyi(50, 0.5, seed=3)
        truth = four_cycle_count(graph)
        assert truth > graph.num_vertices**2
        estimates = []
        for seed in range(5):
            algorithm = FourCycleArbitraryOnePass(
                t_guess=truth, epsilon=0.2, groups=7, group_size=40, seed=seed
            )
            stream = RandomOrderStream(graph, seed=600 + seed)
            estimates.append(algorithm.run(stream).estimate)
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.3

    def test_order_insensitive(self):
        """The F2 counters are order-free; two orders give identical F2."""
        graph = erdos_renyi(30, 0.4, seed=4)
        a = FourCycleArbitraryOnePass(t_guess=1000, seed=7).run(
            ArbitraryOrderStream.from_graph(graph)
        )
        b = FourCycleArbitraryOnePass(t_guess=1000, seed=7).run(
            RandomOrderStream(graph, seed=99)
        )
        assert a.details["f2_hat"] == pytest.approx(b.details["f2_hat"])

    def test_single_pass(self):
        graph = erdos_renyi(30, 0.4, seed=4)
        stream = RandomOrderStream(graph, seed=1)
        result = FourCycleArbitraryOnePass(t_guess=100, seed=0).run(stream)
        assert result.passes == 1


class TestDynamic:
    def test_deletions_match_final_graph(self):
        """Insert extra edges then delete them: estimate ~ final graph."""
        graph = erdos_renyi(30, 0.5, seed=5)
        algorithm = FourCycleArbitraryOnePass(
            t_guess=four_cycle_count(graph), epsilon=0.25, groups=5, group_size=30, seed=2
        )
        spurious = [(900, 901), (901, 902), (902, 903)]
        updates = []
        edges = list(graph.edges())
        for u, v in edges[: len(edges) // 2]:
            updates.append((u, v, 1))
        for u, v in spurious:
            updates.append((u, v, 1))
        for u, v in spurious:
            updates.append((u, v, -1))
        for u, v in edges[len(edges) // 2 :]:
            updates.append((u, v, 1))
        dynamic_estimate = algorithm.run_dynamic(updates, n=graph.num_vertices)

        static = FourCycleArbitraryOnePass(
            t_guess=four_cycle_count(graph), epsilon=0.25, groups=5, group_size=30, seed=2
        ).run(ArbitraryOrderStream.from_graph(graph))
        assert dynamic_estimate == pytest.approx(static.estimate, rel=1e-6)
