"""Theorem 5.3: the three-pass arbitrary-order four-cycle counter."""

import statistics

import pytest

from repro.core import FourCycleArbitraryThreePass, subsample_q
from repro.graphs import (
    complete_bipartite,
    disjoint_union,
    four_cycle_count,
    friendship_graph,
    planted_diamonds,
    planted_four_cycles,
)
from repro.streams import RandomOrderStream


class TestSubsampleQ:
    @pytest.mark.parametrize("p", [0.01, 0.05, 0.09, 0.2, 0.4])
    def test_satisfies_defining_equation(self, p):
        q = subsample_q(p)
        assert p * (0.4 + q) ** 2 == pytest.approx(q, rel=1e-9)

    def test_small_p_asymptotics(self):
        # q ~ 0.16 p as p -> 0
        assert subsample_q(0.001) == pytest.approx(0.16 * 0.001, rel=0.05)

    def test_q_below_cap_in_paper_regime(self):
        assert subsample_q(0.09) <= 0.2

    def test_validates(self):
        with pytest.raises(ValueError):
            subsample_q(0.0)
        with pytest.raises(ValueError):
            subsample_q(1.0)


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            FourCycleArbitraryThreePass(t_guess=0)
        with pytest.raises(ValueError):
            FourCycleArbitraryThreePass(t_guess=5, eta=0)


class TestExactMode:
    """p = 1: stored cycles and the A0/A1 identity must be exact."""

    def test_planted_cycles(self):
        graph = planted_four_cycles(1200, 200, extra_edges=300, seed=9)
        truth = four_cycle_count(graph)
        result = FourCycleArbitraryThreePass(t_guess=truth, epsilon=0.3, seed=1).run(
            RandomOrderStream(graph, seed=1)
        )
        assert result.details["p"] == 1.0
        assert result.estimate == pytest.approx(truth)

    def test_heavy_edges_exact_via_a1(self):
        """A graph with every edge heavy (one big diamond): in exact
        mode the A0/4 + A1 coefficients must still reproduce T when
        exactly one edge per cycle is classified heavy ... or all-light
        classification keeps it in A0.  Either way the identity holds."""
        graph = disjoint_union(
            [complete_bipartite(2, 60), planted_four_cycles(600, 80, seed=3)]
        )
        truth = four_cycle_count(graph)
        result = FourCycleArbitraryThreePass(
            t_guess=truth, epsilon=0.3, eta=2.0, seed=1
        ).run(RandomOrderStream(graph, seed=2))
        assert result.details["p"] == 1.0
        assert result.estimate == pytest.approx(truth)

    def test_cycle_free(self):
        graph = friendship_graph(80)
        result = FourCycleArbitraryThreePass(t_guess=50, seed=1).run(
            RandomOrderStream(graph, seed=1)
        )
        assert result.estimate == 0.0
        assert result.details["stored_pairs"] == 0


class TestSampledMode:
    def test_medium_diamond_accuracy(self):
        graph = planted_diamonds(3000, [12] * 60, extra_edges=600, seed=11)
        truth = four_cycle_count(graph)
        estimates = []
        for seed in range(5):
            algorithm = FourCycleArbitraryThreePass(
                t_guess=truth, epsilon=0.3, eta=2.0, c=0.6, seed=seed, use_log_factor=False
            )
            result = algorithm.run(RandomOrderStream(graph, seed=500 + seed))
            assert result.details["p"] < 1.0
            estimates.append(result.estimate)
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.3

    def test_three_passes(self):
        graph = planted_four_cycles(400, 40, seed=2)
        stream = RandomOrderStream(graph, seed=3)
        result = FourCycleArbitraryThreePass(t_guess=160, seed=1).run(stream)
        assert result.passes == 3

    def test_details(self):
        graph = planted_four_cycles(400, 40, seed=2)
        result = FourCycleArbitraryThreePass(t_guess=160, seed=1).run(
            RandomOrderStream(graph, seed=3)
        )
        for key in ("p", "stored_pairs", "a0", "a1", "num_oracles", "num_heavy_edges"):
            assert key in result.details
        assert result.details["a0"] + result.details["a1"] <= result.details[
            "stored_pairs"
        ]
