"""White-box tests of algorithm internals.

The end-to-end tests pin the estimators' outputs; these pin the
intermediate machinery: the diamond algorithm's size classes, the
three-pass algorithm's cycle completion search and H_e sub-sampling,
and the random-order algorithm's common-neighbor primitive.
"""

import math

import pytest

from repro.core.fourcycle_adjacency_diamond import _ClassInstance, _choose2
from repro.core.fourcycle_arbitrary_threepass import (
    FourCycleArbitraryThreePass,
    _EdgeOracle,
    subsample_q,
)
from repro.core.triangle_random_order import _adj_add, _common_neighbors


class TestCommonNeighbors:
    def test_basic(self):
        adj = {}
        _adj_add(adj, 0, 1)
        _adj_add(adj, 0, 2)
        _adj_add(adj, 1, 2)
        assert set(_common_neighbors(adj, 0, 1)) == {2}

    def test_missing_vertex(self):
        adj = {}
        _adj_add(adj, 0, 1)
        assert _common_neighbors(adj, 0, 99) == []
        assert _common_neighbors(adj, 98, 99) == []

    def test_symmetric(self):
        adj = {}
        for edge in [(0, 2), (1, 2), (0, 3), (1, 3)]:
            _adj_add(adj, *edge)
        assert set(_common_neighbors(adj, 0, 1)) == {2, 3}
        assert set(_common_neighbors(adj, 1, 0)) == {2, 3}


class TestChoose2:
    def test_integers(self):
        assert _choose2(4) == 6.0
        assert _choose2(2) == 1.0
        assert _choose2(1) == 0.0

    def test_fractional(self):
        assert _choose2(2.5) == pytest.approx(2.5 * 1.5 / 2)


class TestClassInstance:
    def _instance(self, boundary=4.0, pv=1.0, pe=1.0, epsilon=0.3):
        return _ClassInstance(
            boundary=boundary, pv=pv, pe=pe, epsilon=epsilon, t_guess=100.0, seed=3
        )

    def test_accept_window(self):
        inst = self._instance(boundary=4.0, epsilon=0.3)
        assert inst.accept_low == pytest.approx(4.0 * 1.05)
        assert inst.accept_high == pytest.approx(8.0 * 0.95)

    def test_norm_floor(self):
        tiny = self._instance(boundary=1.0)
        assert tiny.norm == 0.5  # C(1,2) = 0 floored
        big = self._instance(boundary=10.0)
        assert big.norm == _choose2(10.0)

    def test_pass1_collects_sampled_edges(self):
        inst = self._instance(pv=1.0, pe=1.0)
        inst.observe_pass1("u", ["a", "b", "c"])
        assert "u" in inst.sampled[0] and "u" in inst.sampled[1]
        # pe=1: every incident edge indexed, in both copies
        assert inst.sampled_edge_count == 6
        assert set(inst.edge_index[0]) == {"a", "b", "c"}

    def test_pass2_requires_start(self):
        inst = self._instance()
        with pytest.raises(RuntimeError):
            inst.observe_pass2("v", ["a"])

    def test_exact_diamond_detected(self):
        """A size-5 diamond through an exact (pv=pe=1) class of
        boundary 4: d_hat=5 is accepted, middle pairs (d=2) rejected,
        and the estimate is exactly C(5,2) cycles."""
        inst = self._instance(boundary=4.0, epsilon=0.3)
        middles = [f"w{i}" for i in range(5)]
        blocks = [("v", middles), ("u", middles)] + [
            (w, ["u", "v"]) for w in middles
        ]
        # pass 1: every vertex's block (pv = 1 samples them all)
        for vertex, neighbors in blocks:
            inst.observe_pass1(vertex, neighbors)
        inst.start_pass2()
        for vertex, neighbors in blocks:
            inst.observe_pass2(vertex, neighbors)
        estimate = inst.estimate_cycles()
        assert estimate == pytest.approx(_choose2(5.0))


class TestCompletions:
    def test_finds_cycle(self):
        adj = {}
        from repro.core.triangle_random_order import _adj_add as add

        for edge in [(1, 2), (2, 3), (3, 0)]:
            add(adj, *edge)
        cycles = FourCycleArbitraryThreePass._completions(adj, 0, 1)
        assert cycles == [(0, 1, 2, 3)]

    def test_rejects_degenerate(self):
        adj = {}
        from repro.core.triangle_random_order import _adj_add as add

        # triangle, not a 4-cycle
        for edge in [(1, 2), (2, 0)]:
            add(adj, *edge)
        assert FourCycleArbitraryThreePass._completions(adj, 0, 1) == []

    def test_multiple_cycles(self):
        adj = {}
        from repro.core.triangle_random_order import _adj_add as add

        # two cycles through edge (0,1): 0-1-2-3 and 0-1-4-5
        for edge in [(1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 0)]:
            add(adj, *edge)
        cycles = FourCycleArbitraryThreePass._completions(adj, 0, 1)
        assert sorted(cycles) == [(0, 1, 2, 3), (0, 1, 4, 5)]


class TestEdgeOracleSampling:
    def test_paper_mode_marginal_rate(self):
        """H_e vertex inclusion probability is p * (0.4 + q)."""
        p = 0.3
        q = subsample_q(p)
        expected = p * (0.4 + q)
        # build many oracles over a fixed star around edge (a, b)
        a, b = "a", "b"
        included = 0
        total = 0
        for seed in range(300):
            import random

            rng = random.Random(seed)
            q_set = {f"d{i}" for i in range(20) if rng.random() < p}
            s_adj = {}
            for d in q_set:
                s_adj.setdefault(d, set()).add(a)
                s_adj.setdefault(a, set()).add(d)
            oracle = _EdgeOracle(
                edge=(a, b),
                q1=q_set,
                q2=set(),
                s1_adj=s_adj,
                s2_adj={},
                p=p,
                m_bound=10.0,
                seed=seed,
            )
            # each of the 20 candidate H_e vertices (d, a) could be in R1
            included += len(oracle._r[0])
            total += 20
        rate = included / total
        assert abs(rate - expected) < 0.03

    def test_direct_mode_for_large_p(self):
        oracle = _EdgeOracle(
            edge=("a", "b"),
            q1={"d"},
            q2=set(),
            s1_adj={"d": {"a"}, "a": {"d"}},
            s2_adj={},
            p=1.0,
            m_bound=10.0,
            seed=1,
        )
        assert oracle._mode == "direct"
        assert oracle.effective_p == pytest.approx(0.4)
