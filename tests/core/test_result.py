"""EstimateResult semantics."""

import pytest

from repro.core import EstimateResult
from repro.streams import SpaceMeter


def _result(estimate=10.0, algorithm="algo"):
    meter = SpaceMeter()
    meter.add("x", 7)
    return EstimateResult(estimate, 2, meter, algorithm, {"k": 1})


class TestEstimateResult:
    def test_space_items_is_peak(self):
        result = _result()
        result.space.add("x", -3)
        assert result.space_items == 7  # peak, not current

    def test_relative_error(self):
        assert _result(110.0).relative_error(100.0) == pytest.approx(0.1)
        assert _result(0.0).relative_error(0.0) == 0.0
        assert _result(1.0).relative_error(0.0) == float("inf")

    def test_repr_mentions_key_facts(self):
        text = repr(_result())
        assert "algo" in text
        assert "passes=2" in text

    def test_details_default(self):
        result = EstimateResult(1.0, 1, SpaceMeter(), "a")
        assert result.details == {}
