"""Theorem 2.1: the one-pass random-order triangle counter."""

import statistics

import pytest

from repro.core import TriangleRandomOrder
from repro.graphs import (
    complete_graph,
    erdos_renyi,
    heavy_edge_graph,
    max_edge_triangle_count,
    planted_triangles,
    triangle_count,
)
from repro.streams import RandomOrderStream


def _median_estimate(graph, t_guess, trials=7, **kwargs):
    estimates = []
    for seed in range(trials):
        algorithm = TriangleRandomOrder(t_guess=t_guess, seed=seed, **kwargs)
        stream = RandomOrderStream(graph, seed=100 + seed)
        estimates.append(algorithm.run(stream).estimate)
    return statistics.median(estimates)


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            TriangleRandomOrder(t_guess=0)
        with pytest.raises(ValueError):
            TriangleRandomOrder(t_guess=10, epsilon=0.0)
        with pytest.raises(ValueError):
            TriangleRandomOrder(t_guess=10, c=0.0)

    def test_empty_stream(self):
        from repro.streams import ArbitraryOrderStream

        result = TriangleRandomOrder(t_guess=1).run(ArbitraryOrderStream([]))
        assert result.estimate == 0.0


class TestAccuracy:
    def test_triangle_free_graph_estimates_zero_ish(self):
        graph = erdos_renyi(200, 0.01, seed=5)
        if triangle_count(graph) == 0:
            estimate = _median_estimate(graph, t_guess=4, epsilon=0.3)
            assert estimate == 0.0

    def test_light_workload(self):
        graph = planted_triangles(600, 150, extra_edges=800, seed=1)
        truth = triangle_count(graph)
        estimate = _median_estimate(graph, t_guess=truth, epsilon=0.3)
        assert abs(estimate - truth) / truth < 0.3

    def test_heavy_edge_workload(self):
        """The paper's headline case: one edge holds most triangles."""
        graph = heavy_edge_graph(1200, heavy_triangles=300, light_triangles=100, seed=1)
        truth = triangle_count(graph)
        assert max_edge_triangle_count(graph) == 300
        estimate = _median_estimate(graph, t_guess=truth, epsilon=0.3)
        assert abs(estimate - truth) / truth < 0.3

    def test_heavy_edge_is_caught(self):
        """The heavy edge is identified unless it lands inside every
        useful prefix (probability ~ 2^i / sqrt(T) per Lemma 2.3 — a
        real, bounded failure mode, so we assert a clear majority)."""
        graph = heavy_edge_graph(1200, heavy_triangles=300, light_triangles=100, seed=1)
        truth = triangle_count(graph)
        caught = 0
        for seed in range(9):
            algorithm = TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=seed)
            result = algorithm.run(RandomOrderStream(graph, seed=200 + seed))
            caught += result.details["heavy_edges_caught"] >= 1
        assert caught >= 5

    def test_heavy_edge_estimate_robust_via_median(self):
        """Even with occasional heavy-edge misses, the median across
        trials stays within the target band."""
        graph = heavy_edge_graph(1200, heavy_triangles=300, light_triangles=100, seed=1)
        truth = triangle_count(graph)
        estimates = []
        for seed in range(9):
            algorithm = TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=seed)
            result = algorithm.run(RandomOrderStream(graph, seed=200 + seed))
            estimates.append(result.estimate)
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.3

    def test_dense_graph(self):
        graph = complete_graph(30)
        truth = triangle_count(graph)  # 4060
        estimate = _median_estimate(graph, t_guess=truth, epsilon=0.3, trials=5)
        assert abs(estimate - truth) / truth < 0.35


class TestSpace:
    def test_space_shrinks_with_t(self):
        """The m/sqrt(T) law: larger T (same m) => less space."""
        small_t = planted_triangles(3000, 60, extra_edges=3000, seed=2)
        large_t = planted_triangles(3000, 900, extra_edges=480, seed=2)
        assert abs(small_t.num_edges - large_t.num_edges) < 400
        kwargs = dict(epsilon=0.3, c=0.05, use_log_factor=False)
        space_small = TriangleRandomOrder(
            t_guess=triangle_count(small_t), seed=1, **kwargs
        ).run(RandomOrderStream(small_t, seed=1)).space_items
        space_large = TriangleRandomOrder(
            t_guess=triangle_count(large_t), seed=1, **kwargs
        ).run(RandomOrderStream(large_t, seed=1)).space_items
        assert space_large < space_small

    def test_meter_categories_present(self):
        graph = planted_triangles(300, 40, extra_edges=200, seed=3)
        truth = triangle_count(graph)
        result = TriangleRandomOrder(t_guess=truth, seed=0).run(
            RandomOrderStream(graph, seed=0)
        )
        breakdown = result.space.breakdown()
        assert "prefix_S" in breakdown


class TestDiagnostics:
    def test_details_keys(self):
        graph = planted_triangles(300, 40, extra_edges=200, seed=3)
        truth = triangle_count(graph)
        result = TriangleRandomOrder(t_guess=truth, seed=0).run(
            RandomOrderStream(graph, seed=0)
        )
        for key in ("t0_hat", "heavy_hat", "size_S", "size_C", "size_P", "num_levels"):
            assert key in result.details
        assert result.passes == 1
        assert result.algorithm == "mv-triangle-random-order"

    def test_estimate_decomposition(self):
        graph = planted_triangles(300, 40, extra_edges=200, seed=3)
        truth = triangle_count(graph)
        result = TriangleRandomOrder(t_guess=truth, seed=0).run(
            RandomOrderStream(graph, seed=0)
        )
        assert result.estimate == pytest.approx(
            result.details["t0_hat"] + result.details["heavy_hat"]
        )
