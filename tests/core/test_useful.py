"""The Section 3 Useful Algorithm (Lemma 3.1)."""

import math
import random

import pytest

from repro.core import UsefulAlgorithm, bernoulli_vertex_sample
from repro.graphs import Graph, erdos_renyi


def _stream_graph(algorithm, graph, order):
    """Stream a weighted (here unit-weight) graph's vertices through
    the algorithm, exposing edges to R1 | R2 only — the paper's model."""
    observable = algorithm.r1 | algorithm.r2
    for v in order:
        weights = {u: 1.0 for u in graph.neighbors(v) if u in observable}
        algorithm.process_vertex(v, weights)


class TestUsefulExactMode:
    """p = 1: both samples are all of V, the estimate must be exact."""

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_total_weight(self, seed):
        graph = erdos_renyi(40, 0.2, seed=seed)
        vertices = sorted(graph.vertices())
        rng = random.Random(seed)
        rng.shuffle(vertices)
        algorithm = UsefulAlgorithm(r1=vertices, r2=vertices, p=1.0, m_bound=100.0)
        _stream_graph(algorithm, graph, vertices)
        assert algorithm.estimate() == pytest.approx(graph.num_edges)

    def test_exact_with_heavy_vertices(self):
        # a star: the hub has win ~ degree depending on position
        graph = Graph.from_edges([(0, i) for i in range(1, 30)])
        vertices = list(range(30))
        algorithm = UsefulAlgorithm(r1=vertices, r2=vertices, p=1.0, m_bound=4.0)
        _stream_graph(algorithm, graph, vertices)  # hub arrives first
        assert algorithm.estimate() == pytest.approx(29)
        assert 0 in algorithm.heavy_vertices  # hub's win = 29 >= sqrt(4)


class TestUsefulSampledMode:
    def test_additive_error_when_w_below_m(self):
        graph = erdos_renyi(150, 0.1, seed=3)
        w = graph.num_edges
        m_bound = 2.0 * w
        epsilon = 0.4
        errors = []
        for seed in range(8):
            p = 0.5
            r1, r2 = bernoulli_vertex_sample(graph.vertices(), p, seed=seed)
            algorithm = UsefulAlgorithm(r1=r1, r2=r2, p=p, m_bound=m_bound)
            order = sorted(graph.vertices())
            random.Random(seed).shuffle(order)
            _stream_graph(algorithm, graph, order)
            errors.append(abs(algorithm.estimate() - w))
        errors.sort()
        # median run within the +-eps*M additive guarantee
        assert errors[len(errors) // 2] <= epsilon * m_bound

    def test_separation_large_vs_small(self):
        """Lemma 3.1 b/c: W >= 2M  mostly decides large; W <= M/2 small."""
        dense = erdos_renyi(100, 0.3, seed=1)  # W ~ 1500
        sparse = erdos_renyi(100, 0.01, seed=1)  # W ~ 50
        m_bound = dense.num_edges / 2.0  # dense has W = 2M, sparse << M/2
        large_votes = small_votes = 0
        trials = 7
        for seed in range(trials):
            for graph, bucket in ((dense, "large"), (sparse, "small")):
                p = 0.6
                r1, r2 = bernoulli_vertex_sample(graph.vertices(), p, seed=seed + 50)
                algorithm = UsefulAlgorithm(r1=r1, r2=r2, p=p, m_bound=m_bound)
                order = sorted(graph.vertices())
                random.Random(seed).shuffle(order)
                _stream_graph(algorithm, graph, order)
                if algorithm.is_large():
                    if bucket == "large":
                        large_votes += 1
                else:
                    if bucket == "small":
                        small_votes += 1
        assert large_votes >= trials - 1
        assert small_votes >= trials - 1


class TestUsefulApi:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            UsefulAlgorithm(r1=[], r2=[], p=0.0, m_bound=1.0)
        with pytest.raises(ValueError):
            UsefulAlgorithm(r1=[], r2=[], p=0.5, m_bound=0.0)

    def test_rejects_self_neighbor(self):
        algorithm = UsefulAlgorithm(r1=[1], r2=[2], p=0.5, m_bound=1.0)
        with pytest.raises(ValueError):
            algorithm.process_vertex(1, {1: 1.0})

    def test_rejects_negative_weight(self):
        algorithm = UsefulAlgorithm(r1=[1], r2=[2], p=0.5, m_bound=1.0)
        with pytest.raises(ValueError):
            algorithm.process_vertex(3, {1: -1.0})

    def test_closed_after_estimate(self):
        algorithm = UsefulAlgorithm(r1=[1], r2=[2], p=0.5, m_bound=1.0)
        algorithm.process_vertex(1, {})
        algorithm.estimate()
        with pytest.raises(RuntimeError):
            algorithm.process_vertex(2, {})

    def test_non_sample_neighbors_ignored(self):
        members = [1, 2, 5]
        algorithm = UsefulAlgorithm(r1=members, r2=members, p=1.0, m_bound=100.0)
        algorithm.process_vertex(5, {1: 1.0, 2: 1.0, 99: 42.0})
        algorithm.process_vertex(1, {5: 1.0})
        algorithm.process_vertex(2, {5: 1.0})
        # edges (5,1) and (5,2) each counted once; the weight to 99
        # (outside both samples) contributes nothing
        assert algorithm.estimate() == pytest.approx(2.0)

    def test_space_items_accounts_samples_and_counters(self):
        algorithm = UsefulAlgorithm(r1=[1, 2], r2=[3], p=1.0, m_bound=1.0)
        assert algorithm.space_items == 2 + 1 + 0 + 3
        assert algorithm.heavy_counter_count == 0

    def test_bernoulli_vertex_sample_rate(self):
        r1, r2 = bernoulli_vertex_sample(range(4000), 0.3, seed=1)
        assert abs(len(r1) / 4000 - 0.3) < 0.05
        assert abs(len(r2) / 4000 - 0.3) < 0.05
        assert r1 != r2  # independent samples


class TestUsefulWeighted:
    """The weighted path (weights in [1, lambda]) — what the diamond
    algorithm feeds it."""

    def test_exact_mode_weighted_total(self):
        import random as _random

        from repro.graphs import erdos_renyi

        graph = erdos_renyi(30, 0.3, seed=2)
        # deterministic weights in [1, 5]
        def weight(u, v):
            lo, hi = sorted((u, v))
            return 1.0 + ((lo * 31 + hi * 7) % 5)

        total = sum(weight(u, v) for u, v in graph.edges())
        vertices = sorted(graph.vertices())
        algorithm = UsefulAlgorithm(r1=vertices, r2=vertices, p=1.0, m_bound=4 * total)
        order = list(vertices)
        _random.Random(3).shuffle(order)
        for v in order:
            algorithm.process_vertex(
                v, {u: weight(u, v) for u in graph.neighbors(v)}
            )
        assert algorithm.estimate() == pytest.approx(total)

    def test_sampled_weighted_additive_error(self):
        import random as _random

        from repro.graphs import erdos_renyi

        graph = erdos_renyi(120, 0.12, seed=5)

        def weight(u, v):
            lo, hi = sorted((u, v))
            return 1.0 + ((lo + 3 * hi) % 4)

        total = sum(weight(u, v) for u, v in graph.edges())
        m_bound = 1.5 * total
        errors = []
        for seed in range(7):
            r1, r2 = bernoulli_vertex_sample(graph.vertices(), 0.5, seed=seed)
            algorithm = UsefulAlgorithm(r1=r1, r2=r2, p=0.5, m_bound=m_bound)
            order = sorted(graph.vertices())
            _random.Random(seed).shuffle(order)
            observable = algorithm.r1 | algorithm.r2
            for v in order:
                algorithm.process_vertex(
                    v,
                    {
                        u: weight(u, v)
                        for u in graph.neighbors(v)
                        if u in observable
                    },
                )
            errors.append(abs(algorithm.estimate() - total) / m_bound)
        errors.sort()
        assert errors[len(errors) // 2] < 0.25
