"""CSV / JSON experiment export."""

import csv
import json

import pytest

from repro.experiments.export import export_csv, export_json, load_json

RECORDS = [
    {"algorithm": "a", "rel_err": 0.1, "space": 100},
    {"algorithm": "b", "rel_err": 0.2, "space": 50, "note": "extra"},
]


class TestExportCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.csv"
        assert export_csv(RECORDS, path) == 2
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["algorithm"] == "a"
        assert rows[1]["note"] == "extra"
        assert rows[0]["note"] == ""  # restval fills missing keys

    def test_header_order(self, tmp_path):
        path = tmp_path / "out.csv"
        export_csv(RECORDS, path)
        header = open(path).readline().strip().split(",")
        assert header[:3] == ["algorithm", "rel_err", "space"]
        assert "note" in header

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_csv([], tmp_path / "x.csv")


class TestExportJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        export_json(RECORDS, path, metadata={"experiment": "E1"})
        records = load_json(path)
        assert records == RECORDS
        document = json.loads(open(path).read())
        assert document["metadata"]["experiment"] == "E1"

    def test_numpy_scalars_serialized(self, tmp_path):
        import numpy as np

        path = tmp_path / "np.json"
        export_json([{"x": np.float64(1.5), "n": np.int64(3)}], path)
        assert load_json(path) == [{"x": 1.5, "n": 3}]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_json([], tmp_path / "x.json")

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            export_json([{"bad": object()}], tmp_path / "bad.json")
