"""Frontier measurement utilities."""

import pytest

from repro.core import EstimateResult
from repro.experiments.frontier import (
    Frontier,
    FrontierPoint,
    dominates,
    measure_frontier,
)
from repro.streams import ArbitraryOrderStream, SpaceMeter


class _KnobStub:
    """Error and space both controlled by the knob: space = 100 * knob,
    error = 1 / knob (a clean tradeoff curve)."""

    def __init__(self, knob, seed):
        self.knob = knob

    def run(self, stream):
        list(stream.edges())
        meter = SpaceMeter()
        meter.add("s", int(100 * self.knob))
        estimate = 100.0 * (1.0 + 1.0 / self.knob)
        return EstimateResult(estimate, 1, meter, "stub")


def _measure(label="stub", knobs=(1, 2, 4)):
    return measure_frontier(
        label=label,
        knobs=list(knobs),
        algorithm_for_knob=lambda knob, seed: _KnobStub(knob, seed),
        stream_factory=lambda seed: ArbitraryOrderStream([(0, 1)]),
        truth=100.0,
        epsilon=0.6,
        trials=3,
    )


class TestMeasureFrontier:
    def test_points_track_knobs(self):
        frontier = _measure()
        assert [p.knob for p in frontier.points] == [1, 2, 4]
        assert [p.median_space for p in frontier.points] == [100, 200, 400]
        assert frontier.points[0].median_rel_error == pytest.approx(1.0)
        assert frontier.points[2].median_rel_error == pytest.approx(0.25)

    def test_success_rate_band(self):
        frontier = _measure()
        assert frontier.points[0].success_rate == 0.0  # error 1.0 > 0.6
        assert frontier.points[2].success_rate == 1.0  # error 0.25 <= 0.6

    def test_rows(self):
        rows = _measure().rows()
        assert rows[0]["algorithm"] == "stub"
        assert "median_space" in rows[0]


class TestErrorAtSpace:
    def test_feasible(self):
        frontier = _measure()
        assert frontier.error_at_space(250) == pytest.approx(0.5)
        assert frontier.error_at_space(1000) == pytest.approx(0.25)

    def test_infeasible(self):
        assert _measure().error_at_space(50) == float("inf")


class TestDominates:
    def test_strictly_better_curve_dominates(self):
        better = Frontier(
            "better",
            [FrontierPoint(1, 100, 0.1, 0.1, 1.0), FrontierPoint(2, 200, 0.05, 0.05, 1.0)],
        )
        worse = Frontier(
            "worse",
            [FrontierPoint(1, 100, 0.3, 0.3, 0.0), FrontierPoint(2, 200, 0.2, 0.2, 0.0)],
        )
        assert dominates(better, worse, budgets=[100, 200, 300])
        assert not dominates(worse, better, budgets=[100, 200, 300])

    def test_no_overlap_means_no_dominance(self):
        small = Frontier("s", [FrontierPoint(1, 10, 0.5, 0.5, 0)])
        big = Frontier("b", [FrontierPoint(1, 1000, 0.1, 0.1, 1)])
        assert not dominates(small, big, budgets=[10])  # big infeasible there
