"""The memoized ground-truth cache used by workload construction."""

import pytest

from repro.experiments.groundtruth import (
    cache_info,
    cached_ground_truth,
    clear_cache,
    freeze_params,
)
from repro.graphs import erdos_renyi, four_cycle_count, triangle_count


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFreezeParams:
    def test_nested_structures_hashable(self):
        frozen = freeze_params({"a": [1, 2], "b": {"c": (3, {4})}})
        assert hash(frozen) == hash(freeze_params({"a": [1, 2], "b": {"c": (3, {4})}}))

    def test_distinct_params_distinct_keys(self):
        assert freeze_params({"n": 10}) != freeze_params({"n": 11})


class TestCachedGroundTruth:
    def test_counts_match_exact(self):
        graph = erdos_renyi(30, 0.2, seed=1)
        counts = cached_ground_truth("gnp", {"n": 30, "p": 0.2, "seed": 1}, graph)
        assert counts["triangles"] == triangle_count(graph)
        assert counts["four_cycles"] == four_cycle_count(graph)

    def test_hit_on_second_call(self):
        graph = erdos_renyi(20, 0.2, seed=2)
        params = {"n": 20, "p": 0.2, "seed": 2}
        first = cached_ground_truth("gnp", params, graph)
        second = cached_ground_truth("gnp", params, graph)
        assert first == second
        info = cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["entries"] == 1

    def test_returns_copy_not_alias(self):
        graph = erdos_renyi(15, 0.2, seed=3)
        params = {"seed": 3}
        first = cached_ground_truth("gnp", params, graph)
        first["triangles"] = -999
        assert cached_ground_truth("gnp", params, graph)["triangles"] != -999

    def test_distinct_generators_not_conflated(self):
        graph_a = erdos_renyi(20, 0.3, seed=4)
        graph_b = erdos_renyi(20, 0.1, seed=4)
        a = cached_ground_truth("gnp", {"p": 0.3, "seed": 4}, graph_a)
        b = cached_ground_truth("gnp", {"p": 0.1, "seed": 4}, graph_b)
        assert cache_info()["entries"] == 2
        assert a["triangles"] == triangle_count(graph_a)
        assert b["triangles"] == triangle_count(graph_b)

    def test_clear_cache_resets(self):
        graph = erdos_renyi(10, 0.2, seed=5)
        cached_ground_truth("gnp", {"seed": 5}, graph)
        clear_cache()
        info = cache_info()
        assert info == {"hits": 0, "misses": 0, "entries": 0}
