"""The parallel trial engine: seed schedule, fan-out, equivalence.

The contract under test is the tentpole guarantee: ``run_trials(...,
n_jobs=1)`` and ``n_jobs>1`` produce bit-identical ``TrialStats``
(estimates, spaces, pass counts, order) because every trial is a pure
function of the seeds in :func:`repro.experiments.parallel.seed_schedule`.
"""

import warnings

import pytest

from repro.baselines import CormodeJowhariTriangles
from repro.core import EstimateResult, FourCycleArbitraryThreePass, TriangleRandomOrder
from repro.experiments import (
    ParallelTrialRunner,
    SeededFactory,
    TrialSpec,
    build_workload,
    execute_trial,
    make_factory,
    parallel_map,
    run_trials,
    seed_schedule,
)
from repro.streams import ArbitraryOrderStream, RandomOrderStream, SpaceMeter


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_matches_parallel(self):
        items = list(range(20))
        assert parallel_map(_square, items, n_jobs=1) == parallel_map(
            _square, items, n_jobs=2
        )

    def test_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], n_jobs=2) == [9, 1, 4]

    def test_unpicklable_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="not .*picklable|picklable"):
            result = parallel_map(lambda x: x + 1, [1, 2, 3], n_jobs=2)
        assert result == [2, 3, 4]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], n_jobs=4) == []
        assert parallel_map(_square, [5], n_jobs=4) == [25]


class TestSeedSchedule:
    def test_matches_documented_serial_schedule(self):
        assert seed_schedule(3, 2) == [(3000, 3500), (3001, 3501)]

    def test_validates(self):
        with pytest.raises(ValueError):
            seed_schedule(0, 0)

    def test_no_seed_collisions(self):
        pairs = seed_schedule(5, 100)
        flat = [s for pair in pairs for s in pair]
        assert len(set(flat)) == len(flat)


class TestSeededFactory:
    def test_passes_seed_through(self):
        factory = make_factory(RandomOrderStream, graph=build_workload(
            "four-cycle-free", n_triangles=5
        ).graph)
        assert factory(3).seed == 3

    def test_seedless_target(self):
        factory = make_factory(
            CormodeJowhariTriangles, seed_param=None, t_guess=10.0, epsilon=0.3
        )
        algorithm = factory(123)
        assert algorithm.t_guess == 10.0


class _PassesBySeed:
    """Pathological algorithm whose pass count depends on its seed."""

    def __init__(self, seed):
        self.seed = seed

    def run(self, stream):
        list(stream.edges())
        if self.seed % 2:
            list(stream.edges())
        return EstimateResult(1.0, stream.passes_taken, SpaceMeter(), "bad-passes")


class _TwoPassAlways:
    def __init__(self, seed):
        self.seed = seed

    def run(self, stream):
        list(stream.edges())
        list(stream.edges())
        return EstimateResult(1.0, stream.passes_taken, SpaceMeter(), "two-pass")


def _tiny_stream(seed):
    return ArbitraryOrderStream([(0, 1), (1, 2)])


class TestPassesAccounting:
    def test_mismatched_pass_counts_fail_loudly(self):
        # Consecutive algorithm seeds alternate parity, so _PassesBySeed
        # reports a mix of 1- and 2-pass trials.
        with pytest.raises(RuntimeError, match="disagree on the number of stream passes"):
            run_trials(_PassesBySeed, _tiny_stream, truth=1.0, trials=4, base_seed=0)

    def test_consistent_passes_recorded(self):
        stats = run_trials(
            _TwoPassAlways, _tiny_stream, truth=1.0, trials=3, base_seed=1
        )
        assert stats.passes == 2


class TestSerialParallelEquivalence:
    """Property: n_jobs=1 and n_jobs=2 give bit-identical TrialStats."""

    @pytest.mark.parametrize("base_seed", [0, 3, 11])
    def test_triangle_random_order(self, base_seed):
        workload = build_workload(
            "light-triangles", n=240, num_triangles=40, noise_edges=200
        )
        algorithm = make_factory(
            TriangleRandomOrder, t_guess=workload.triangles, epsilon=0.4
        )
        stream = make_factory(RandomOrderStream, graph=workload.graph)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a fallback would hide the point
            serial = run_trials(
                algorithm, stream, truth=workload.triangles,
                trials=4, base_seed=base_seed, n_jobs=1,
            )
            parallel = run_trials(
                algorithm, stream, truth=workload.triangles,
                trials=4, base_seed=base_seed, n_jobs=2,
            )
        assert serial.estimates == parallel.estimates
        assert serial.space_items == parallel.space_items
        assert serial.passes == parallel.passes
        assert [r.algorithm for r in serial.results] == [
            r.algorithm for r in parallel.results
        ]

    def test_cormode_jowhari(self):
        workload = build_workload(
            "light-triangles", n=240, num_triangles=40, noise_edges=200
        )
        algorithm = make_factory(
            CormodeJowhariTriangles,
            seed_param=None,
            t_guess=float(workload.triangles),
            epsilon=0.4,
        )
        stream = make_factory(RandomOrderStream, graph=workload.graph)
        serial = run_trials(
            algorithm, stream, truth=workload.triangles, trials=3, base_seed=2, n_jobs=1
        )
        parallel = run_trials(
            algorithm, stream, truth=workload.triangles, trials=3, base_seed=2, n_jobs=2
        )
        assert serial.estimates == parallel.estimates
        assert serial.space_items == parallel.space_items

    def test_three_pass_four_cycles(self):
        workload = build_workload(
            "sparse-four-cycles", n=400, num_cycles=40, noise_edges=80
        )
        algorithm = make_factory(
            FourCycleArbitraryThreePass,
            t_guess=workload.four_cycles,
            epsilon=0.4,
            eta=2.0,
            c=0.6,
            use_log_factor=False,
        )
        stream = make_factory(RandomOrderStream, graph=workload.graph)
        serial = run_trials(
            algorithm, stream, truth=workload.four_cycles,
            trials=3, base_seed=5, n_jobs=1,
        )
        parallel = run_trials(
            algorithm, stream, truth=workload.four_cycles,
            trials=3, base_seed=5, n_jobs=2,
        )
        assert serial.estimates == parallel.estimates
        assert serial.space_items == parallel.space_items
        assert serial.passes == parallel.passes == 3


class TestParallelTrialRunner:
    def test_runner_matches_direct_execution(self):
        workload = build_workload("four-cycle-free", n_triangles=30)
        algorithm = make_factory(
            TriangleRandomOrder, t_guess=workload.triangles, epsilon=0.5
        )
        stream = make_factory(RandomOrderStream, graph=workload.graph)
        runner = ParallelTrialRunner(n_jobs=2)
        results = runner.run(algorithm, stream, trials=3, base_seed=9)
        for i, (algo_seed, stream_seed) in enumerate(seed_schedule(9, 3)):
            spec = TrialSpec(
                index=i,
                algorithm_seed=algo_seed,
                stream_seed=stream_seed,
                algorithm_factory=algorithm,
                stream_factory=stream,
            )
            direct = execute_trial(spec)
            assert direct.estimate == results[i].estimate
            assert direct.space_items == results[i].space_items

    def test_validates_chunksize(self):
        with pytest.raises(ValueError):
            ParallelTrialRunner(n_jobs=1, chunksize=0)


class TestSuiteWiring:
    def test_run_experiment_n_jobs_identical(self):
        from repro.experiments import run_experiment

        assert run_experiment("E5", seed=2) == run_experiment("E5", seed=2, n_jobs=2)
