"""Trial runner statistics."""

import pytest

from repro.core import EstimateResult
from repro.experiments import TrialStats, decision_rate, run_trials
from repro.streams import ArbitraryOrderStream, SpaceMeter


class _FakeAlgorithm:
    """Deterministic-from-seed stub algorithm for runner tests."""

    def __init__(self, seed):
        self.seed = seed

    def run(self, stream):
        list(stream.edges())
        meter = SpaceMeter()
        meter.add("x", 10 + self.seed % 3)
        return EstimateResult(100.0 + self.seed % 5, stream.passes_taken, meter, "fake")


def _stream_factory(seed):
    return ArbitraryOrderStream([(0, 1), (1, 2)])


class TestRunTrials:
    def test_collects_per_trial_data(self):
        stats = run_trials(_FakeAlgorithm, _stream_factory, truth=100.0, trials=5)
        assert stats.trials == 5
        assert len(stats.estimates) == 5
        assert len(stats.space_items) == 5
        assert stats.passes == 1

    def test_validates_trials(self):
        with pytest.raises(ValueError):
            run_trials(_FakeAlgorithm, _stream_factory, truth=1.0, trials=0)

    def test_seeds_differ_across_trials(self):
        stats = run_trials(_FakeAlgorithm, _stream_factory, truth=100.0, trials=5)
        assert len(set(stats.estimates)) > 1


class TestTrialStats:
    def _stats(self, estimates, truth=100.0):
        return TrialStats(
            truth=truth,
            estimates=estimates,
            space_items=[10] * len(estimates),
            passes=1,
        )

    def test_median_estimate(self):
        assert self._stats([90, 100, 130]).median_estimate == 100

    def test_median_relative_error(self):
        assert self._stats([90, 110, 120]).median_relative_error == pytest.approx(0.1)

    def test_mean_relative_error(self):
        stats = self._stats([90, 110])
        assert stats.mean_relative_error == pytest.approx(0.1)

    def test_success_rate(self):
        stats = self._stats([90, 150, 101])
        assert stats.success_rate(0.15) == pytest.approx(2 / 3)

    def test_zero_truth(self):
        stats = self._stats([0, 0], truth=0.0)
        assert stats.median_relative_error == 0.0
        bad = self._stats([1, 0], truth=0.0)
        assert bad.mean_relative_error == float("inf")

    def test_summary_row_keys(self):
        row = self._stats([100]).summary_row()
        for key in ("truth", "median_estimate", "median_rel_error", "median_space"):
            assert key in row


class TestWallClock:
    def test_per_trial_wall_seconds_recorded(self):
        stats = run_trials(_FakeAlgorithm, _stream_factory, truth=100.0, trials=4)
        assert len(stats.wall_seconds) == 4
        assert all(seconds >= 0 for seconds in stats.wall_seconds)
        assert stats.total_wall_seconds == pytest.approx(sum(stats.wall_seconds))
        assert stats.median_wall_seconds >= 0

    def test_empty_wall_seconds_defaults(self):
        stats = TrialStats(
            truth=1.0, estimates=[1.0], space_items=[1], passes=1
        )
        assert stats.total_wall_seconds == 0.0
        assert stats.median_wall_seconds == 0.0


class _PassesBySeedParity:
    """Pathological: consecutive seeds alternate between 1 and 2 passes."""

    def __init__(self, seed):
        self.seed = seed

    def run(self, stream):
        list(stream.edges())
        if self.seed % 2:
            list(stream.edges())
        return EstimateResult(1.0, stream.passes_taken, SpaceMeter(), "bad")


class TestPassMismatchDiagnostics:
    def test_error_names_offending_trials(self):
        # seeds 0..4 -> parities 0,1,0,1,0 -> trials 1 and 3 take 2
        # passes; the majority (3 of 5) is 1 pass, so the error must
        # name trials [1, 3].
        with pytest.raises(RuntimeError) as excinfo:
            run_trials(
                _PassesBySeedParity, _stream_factory, truth=1.0, trials=5, base_seed=0
            )
        message = str(excinfo.value)
        assert "disagree on the number of stream passes" in message
        assert "[1, 3]" in message
        assert "majority pass count 1" in message


class TestDecisionRate:
    def test_rate(self):
        assert decision_rate(lambda seed: seed % 2 == 0, trials=10) == 0.5

    def test_validates(self):
        with pytest.raises(ValueError):
            decision_rate(lambda s: True, trials=0)
