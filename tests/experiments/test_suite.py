"""The light experiment suite."""

import pytest

from repro.experiments.suite import SUITE, run_experiment


class TestSuiteRegistry:
    def test_every_entry_has_unique_id_and_title(self):
        assert len(SUITE) >= 5
        for exp_id, experiment in SUITE.items():
            assert experiment.id == exp_id
            assert experiment.title

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_lowercase_id_accepted(self):
        records = run_experiment("e12", seed=1)
        assert records


class TestLightRuns:
    def test_e12_records(self):
        records = run_experiment("E12", seed=0)
        assert all(record["holds"] for record in records)
        assert {record["eta"] for record in records} == {2.0, 8.0, 90.0}

    def test_e11_records(self):
        records = run_experiment("E11", seed=2)
        by_answer = {record["DISJ_answer"]: record for record in records}
        assert by_answer[0]["four_cycles"] == 0
        assert by_answer[0]["protocol_decided"] == 0
        assert by_answer[1]["four_cycles"] > 0

    def test_e9_records(self):
        records = run_experiment("E9", seed=1)
        rates = {record["instance"]: record["detection_rate"] for record in records}
        assert rates["cycle-free"] == 0.0
        assert rates["T cycles"] >= 0.5

    def test_e4_records(self):
        records = run_experiment("E4", seed=3)
        assert len(records) == 5
        assert all(record["error_over_M"] < 1.0 for record in records)

    def test_e1_records(self):
        records = run_experiment("E1", seed=1)
        assert len(records) == 2
        mv = next(r for r in records if "Thm 2.1" in r["algorithm"])
        assert mv["median_rel_err"] < 0.5

    def test_e5_and_e8_run(self):
        for exp_id in ("E5", "E8"):
            records = run_experiment(exp_id, seed=1)
            assert records[0]["median_rel_err"] < 0.5


class TestPaperTable:
    def test_rows_cover_all_results(self):
        from repro.experiments import paper_table

        rows = paper_table(seed=1, trials=1)
        results = {row["result"] for row in rows}
        assert results == {"Thm 2.1", "Thm 4.2", "Thm 4.3a", "Thm 5.3", "Thm 5.6", "Thm 5.7"}
        for row in rows:
            assert row["passes"] in (1, 2, 3)
            assert isinstance(row["measured_rel_err"], float)
