"""Sweeps and scaling-law fits."""

import math

import pytest

from repro.experiments import geometric_range, guess_schedule, loglog_slope, run_sweep


class TestLogLogSlope:
    def test_exact_power_law(self):
        xs = [1, 2, 4, 8, 16]
        ys = [x**-0.5 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(-0.5)

    def test_with_constant_factor(self):
        xs = [10, 100, 1000]
        ys = [42 * x**2 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [1])
        with pytest.raises(ValueError):
            loglog_slope([0, 1], [1, 1])
        with pytest.raises(ValueError):
            loglog_slope([1, 1], [1, 2])


class TestGeometricRange:
    def test_endpoints(self):
        values = geometric_range(10, 1000, 3)
        assert values[0] == pytest.approx(10)
        assert values[-1] == pytest.approx(1000)
        assert values[1] == pytest.approx(100)

    def test_validates(self):
        with pytest.raises(ValueError):
            geometric_range(1, 10, 1)
        with pytest.raises(ValueError):
            geometric_range(0, 10, 3)


class TestRunSweep:
    def test_collects_points(self):
        result = run_sweep("t", [1, 4, 16], lambda t: {"space": 100 / math.sqrt(t)})
        assert [p.parameter for p in result.points] == [1, 4, 16]
        assert result.slope("space") == pytest.approx(-0.5)

    def test_series(self):
        result = run_sweep("t", [1, 2], lambda t: {"y": 2 * t})
        xs, ys = result.series("y")
        assert xs == [1, 2]
        assert ys == [2, 4]


class TestGuessSchedule:
    def test_geometric_and_capped(self):
        schedule = guess_schedule(m=100, levels=20)
        assert schedule[0] == 1.0
        assert all(b / a == 4.0 for a, b in zip(schedule, schedule[1:]))
        assert schedule[-1] <= 2 * 100 * 100

    def test_levels_cap(self):
        assert len(guess_schedule(m=10**6, levels=5)) == 5
