"""Workload registry, reporting and guess calibration."""

import pytest

from repro.experiments import (
    ALL_WORKLOADS,
    build_workload,
    estimate_with_guesses,
    format_records,
    format_table,
)
from repro.graphs import four_cycle_count, triangle_count


class TestWorkloads:
    def test_registry_builds_everything(self):
        for name in ALL_WORKLOADS:
            workload = build_workload(name)
            assert workload.name == name
            assert workload.m > 0
            assert workload.triangles == triangle_count(workload.graph)
            assert workload.four_cycles == four_cycle_count(workload.graph)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_workload("no-such-workload")

    def test_describe(self):
        workload = build_workload("four-cycle-free")
        assert "four-cycle-free" in workload.describe()
        assert workload.four_cycles == 0

    def test_heavy_workload_has_heavy_edge(self):
        from repro.graphs import max_edge_triangle_count

        workload = build_workload("heavy-and-light-triangles")
        assert max_edge_triangle_count(workload.graph) == workload.params["heavy"]

    def test_dense_workload_regime(self):
        workload = build_workload("dense-gnp")
        assert workload.four_cycles > workload.n**2

    def test_overrides(self):
        workload = build_workload("light-triangles", n=300, num_triangles=50, noise_edges=0)
        assert workload.triangles == 50


class TestReporting:
    def test_format_table(self):
        table = format_table(["a", "bee"], [[1, 2.5], ["x", 0.00001]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "bee" in lines[0]
        assert len(lines) == 4

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_records(self):
        text = format_records([{"k": 1, "v": 2}, {"k": 3, "v": 4}])
        assert "k" in text and "v" in text
        assert format_records([]) == "(no rows)"

    def test_format_cell_bool(self):
        from repro.experiments.reporting import format_cell

        assert format_cell(True) == "yes"
        assert format_cell(0.0) == "0"


class TestCalibration:
    class _Algo:
        """Estimates well when guess <= truth, collapses when guess is
        far above the truth — mimicking undersampling."""

        def __init__(self, guess, seed, truth=500.0):
            self.guess = guess
            self.truth = truth

        def run(self, stream):
            from repro.core import EstimateResult
            from repro.streams import SpaceMeter

            list(stream.edges())
            estimate = self.truth if self.guess <= 4 * self.truth else 0.0
            return EstimateResult(estimate, 1, SpaceMeter(), "stub")

    def test_selects_self_consistent_guess(self):
        from repro.streams import ArbitraryOrderStream

        outcome = estimate_with_guesses(
            lambda guess, seed: self._Algo(guess, seed),
            lambda seed: ArbitraryOrderStream([(0, 1)]),
            guesses=[1, 16, 256, 4096, 65536],
        )
        assert outcome.estimate == 500.0
        assert outcome.selected_guess == 256
        table = outcome.table()
        assert any(row["selected"] for row in table)

    def test_requires_guesses(self):
        with pytest.raises(ValueError):
            estimate_with_guesses(lambda g, s: None, lambda s: None, guesses=[])
