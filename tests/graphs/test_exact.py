"""Exact counters: closed-form families plus networkx cross-checks."""

import networkx as nx
import pytest

from repro.graphs import (
    complete_bipartite,
    complete_graph,
    count_four_cycles_through_pair,
    cycle_graph,
    diamond_k2h,
    diamond_sizes,
    erdos_renyi,
    four_cycle_count,
    four_cycles,
    friendship_graph,
    global_clustering_coefficient,
    graph_summary,
    grid_graph,
    max_edge_four_cycle_count,
    max_edge_triangle_count,
    path_graph,
    per_edge_four_cycle_counts,
    per_edge_triangle_counts,
    star_graph,
    total_wedges,
    triangle_count,
    triangles,
    wedge_counts,
)
from repro.graphs.graph import Graph


def _choose(n, k):
    from math import comb

    return comb(n, k)


class TestTriangleCount:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 8])
    def test_complete_graph(self, n):
        assert triangle_count(complete_graph(n)) == _choose(n, 3)

    def test_bipartite_is_triangle_free(self):
        assert triangle_count(complete_bipartite(4, 5)) == 0

    def test_path_and_star(self):
        assert triangle_count(path_graph(10)) == 0
        assert triangle_count(star_graph(10)) == 0

    def test_friendship(self):
        assert triangle_count(friendship_graph(7)) == 7

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = erdos_renyi(40, 0.2, seed=seed)
        expected = sum(nx.triangles(g.to_networkx()).values()) // 3
        assert triangle_count(g) == expected

    def test_enumeration_agrees_with_count(self, k5):
        assert len(list(triangles(k5))) == triangle_count(k5)

    def test_enumeration_unique(self, small_random):
        listed = list(triangles(small_random))
        assert len(listed) == len(set(listed)) == triangle_count(small_random)


class TestPerEdgeTriangles:
    def test_sums_to_three_t(self, k5):
        counts = per_edge_triangle_counts(k5)
        assert sum(counts.values()) == 3 * triangle_count(k5)

    def test_book_graph_heavy_edge(self):
        from repro.graphs import book_graph

        g = book_graph(6)
        counts = per_edge_triangle_counts(g)
        assert counts[(0, 1)] == 6
        assert max_edge_triangle_count(g) == 6
        # every page edge is in exactly one triangle
        others = [c for e, c in counts.items() if e != (0, 1)]
        assert all(c == 1 for c in others)


class TestWedges:
    def test_star_wedges(self):
        g = star_graph(5)
        assert total_wedges(g) == _choose(5, 2)
        counts = wedge_counts(g)
        assert all(v == 1 for v in counts.values())
        assert len(counts) == _choose(5, 2)

    def test_wedge_identity_vs_four_cycles(self, small_random):
        """sum C(x_uv, 2) == 2 * C4 — the paper's diagonal identity."""
        doubled = sum(v * (v - 1) // 2 for v in wedge_counts(small_random).values())
        assert doubled == 2 * four_cycle_count(small_random)

    def test_diamond_sizes_filters_small(self):
        g = diamond_k2h(4)
        sizes = diamond_sizes(g)
        assert sizes[(0, 1)] == 4
        # middle-vertex pairs share exactly the two endpoints
        assert all(h >= 2 for h in sizes.values())


class TestFourCycleCount:
    @pytest.mark.parametrize(
        "a,b", [(2, 2), (2, 5), (3, 3), (4, 4), (3, 6)]
    )
    def test_complete_bipartite(self, a, b):
        assert four_cycle_count(complete_bipartite(a, b)) == _choose(a, 2) * _choose(b, 2)

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_complete_graph(self, n):
        assert four_cycle_count(complete_graph(n)) == 3 * _choose(n, 4)

    def test_single_cycle(self):
        assert four_cycle_count(cycle_graph(4)) == 1
        assert four_cycle_count(cycle_graph(5)) == 0
        assert four_cycle_count(cycle_graph(6)) == 0

    def test_grid(self):
        assert four_cycle_count(grid_graph(4, 5)) == 3 * 4

    def test_diamond(self):
        assert four_cycle_count(diamond_k2h(6)) == _choose(6, 2)

    def test_friendship_has_none(self):
        assert four_cycle_count(friendship_graph(9)) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_cycle_enumeration(self, seed):
        g = erdos_renyi(18, 0.3, seed=seed)
        nxg = g.to_networkx()
        expected = sum(1 for c in nx.simple_cycles(nxg, length_bound=4) if len(c) == 4)
        assert four_cycle_count(g) == expected

    def test_enumeration_agrees(self, small_random):
        listed = list(four_cycles(small_random))
        assert len(listed) == len(set(listed)) == four_cycle_count(small_random)

    def test_enumerated_cycles_are_cycles(self, small_random):
        for a, b, c, d in four_cycles(small_random):
            assert small_random.has_edge(a, b)
            assert small_random.has_edge(b, c)
            assert small_random.has_edge(c, d)
            assert small_random.has_edge(d, a)
            assert len({a, b, c, d}) == 4


class TestPerEdgeFourCycles:
    def test_sums_to_four_t(self, small_random):
        counts = per_edge_four_cycle_counts(small_random)
        assert sum(counts.values()) == 4 * four_cycle_count(small_random)

    def test_diamond_edges(self):
        g = diamond_k2h(5)
        counts = per_edge_four_cycle_counts(g)
        # every edge (u, w_i) is in one cycle per other middle vertex
        assert all(c == 4 for c in counts.values())
        assert max_edge_four_cycle_count(g) == 4

    def test_pair_counting(self):
        g = cycle_graph(4)  # 0-1-2-3
        assert count_four_cycles_through_pair(g, (0, 1), (2, 3)) == 1
        assert count_four_cycles_through_pair(g, (0, 1), (1, 2)) == 0  # shares a vertex

    def test_pair_counting_two_cycles(self):
        # K4 minus nothing: opposite edges (0,1),(2,3) sit in 2 cycles
        g = complete_graph(4)
        assert count_four_cycles_through_pair(g, (0, 1), (2, 3)) == 2


class TestSummaries:
    def test_clustering_of_complete_graph(self):
        assert global_clustering_coefficient(complete_graph(6)) == pytest.approx(1.0)

    def test_clustering_of_star(self):
        assert global_clustering_coefficient(star_graph(6)) == 0.0

    def test_clustering_empty(self):
        assert global_clustering_coefficient(Graph()) == 0.0

    def test_graph_summary_keys(self, small_random):
        summary = graph_summary(small_random)
        assert summary["n"] == small_random.num_vertices
        assert summary["m"] == small_random.num_edges
        assert summary["triangles"] == triangle_count(small_random)
        assert summary["four_cycles"] == four_cycle_count(small_random)

    def test_clustering_matches_networkx(self, small_random):
        expected = nx.transitivity(small_random.to_networkx())
        assert global_clustering_coefficient(small_random) == pytest.approx(expected)
