"""Hypothesis property tests for the exact counters.

These pin down the combinatorial identities every estimator in the
library relies on, over arbitrary small graphs.
"""

from math import comb

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    four_cycle_count,
    four_cycles,
    per_edge_four_cycle_counts,
    per_edge_triangle_counts,
    total_wedges,
    triangle_count,
    triangles,
    wedge_counts,
)

# arbitrary simple graphs on up to 12 vertices
edge_strategy = st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
    lambda e: e[0] != e[1]
)
graph_strategy = st.lists(edge_strategy, max_size=40).map(Graph.from_edges)


@given(graph_strategy)
@settings(max_examples=60, deadline=None)
def test_triangle_count_matches_networkx(g):
    expected = sum(nx.triangles(g.to_networkx()).values()) // 3 if g.num_vertices else 0
    assert triangle_count(g) == expected


@given(graph_strategy)
@settings(max_examples=60, deadline=None)
def test_per_edge_triangles_sum_to_3t(g):
    assert sum(per_edge_triangle_counts(g).values()) == 3 * triangle_count(g)


@given(graph_strategy)
@settings(max_examples=60, deadline=None)
def test_wedge_diagonal_identity(g):
    """sum_{u<v} C(x_uv, 2) == 2 * C4 for every graph."""
    doubled = sum(comb(v, 2) for v in wedge_counts(g).values())
    assert doubled == 2 * four_cycle_count(g)


@given(graph_strategy)
@settings(max_examples=60, deadline=None)
def test_wedge_totals_consistent(g):
    assert sum(wedge_counts(g).values()) == total_wedges(g)


@given(graph_strategy)
@settings(max_examples=40, deadline=None)
def test_four_cycle_enumeration_matches_count(g):
    listed = list(four_cycles(g))
    assert len(listed) == len(set(listed)) == four_cycle_count(g)


@given(graph_strategy)
@settings(max_examples=40, deadline=None)
def test_per_edge_four_cycles_sum_to_4t(g):
    assert sum(per_edge_four_cycle_counts(g).values()) == 4 * four_cycle_count(g)


@given(graph_strategy)
@settings(max_examples=40, deadline=None)
def test_triangle_enumeration_matches_count(g):
    listed = list(triangles(g))
    assert len(listed) == len(set(listed)) == triangle_count(g)


@given(graph_strategy)
@settings(max_examples=40, deadline=None)
def test_handshake(g):
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges
