"""Matrix counters vs reference counters: exact equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    complete_bipartite,
    complete_graph,
    erdos_renyi,
    four_cycle_count,
    triangle_count,
    wedge_counts,
)
from repro.graphs.fast import (
    adjacency_matrix,
    fast_counts,
    fast_four_cycle_count,
    fast_triangle_count,
    fast_wedge_f2,
)

edge_strategy = st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
    lambda e: e[0] != e[1]
)
graph_strategy = st.lists(edge_strategy, max_size=45).map(Graph.from_edges)


class TestAdjacencyMatrix:
    def test_symmetric_zero_diagonal(self):
        g = erdos_renyi(20, 0.3, seed=1)
        a = adjacency_matrix(g)
        assert (a == a.T).all()
        assert (a.diagonal() == 0).all()
        assert a.sum() == 2 * g.num_edges


class TestEquivalence:
    @given(graph_strategy)
    @settings(max_examples=60, deadline=None)
    def test_triangles(self, g):
        assert fast_triangle_count(g) == triangle_count(g)

    @given(graph_strategy)
    @settings(max_examples=60, deadline=None)
    def test_four_cycles(self, g):
        assert fast_four_cycle_count(g) == four_cycle_count(g)

    @given(graph_strategy)
    @settings(max_examples=60, deadline=None)
    def test_wedge_f2(self, g):
        expected = sum(v * v for v in wedge_counts(g).values())
        assert fast_wedge_f2(g) == expected

    @given(graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_combined(self, g):
        counts = fast_counts(g)
        assert counts["triangles"] == triangle_count(g)
        assert counts["four_cycles"] == four_cycle_count(g)


class TestClosedForms:
    def test_complete_graph(self):
        from math import comb

        g = complete_graph(12)
        assert fast_triangle_count(g) == comb(12, 3)
        assert fast_four_cycle_count(g) == 3 * comb(12, 4)

    def test_bipartite(self):
        from math import comb

        g = complete_bipartite(5, 7)
        assert fast_triangle_count(g) == 0
        assert fast_four_cycle_count(g) == comb(5, 2) * comb(7, 2)

    def test_empty(self):
        assert fast_counts(Graph()) == {
            "triangles": 0,
            "four_cycles": 0,
            "wedge_f2": 0,
        }

    def test_medium_random_graph(self):
        g = erdos_renyi(120, 0.15, seed=9)
        assert fast_triangle_count(g) == triangle_count(g)
        assert fast_four_cycle_count(g) == four_cycle_count(g)
