"""Per-edge matrix counters vs the reference implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    book_graph,
    complete_bipartite,
    erdos_renyi,
    per_edge_four_cycle_counts,
    per_edge_triangle_counts,
)
from repro.graphs.fast import (
    fast_per_edge_four_cycle_counts,
    fast_per_edge_triangle_counts,
)

edge_strategy = st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(
    lambda e: e[0] != e[1]
)
graph_strategy = st.lists(edge_strategy, max_size=40).map(Graph.from_edges)


@given(graph_strategy)
@settings(max_examples=60, deadline=None)
def test_per_edge_triangles_match(g):
    assert fast_per_edge_triangle_counts(g) == per_edge_triangle_counts(g)


@given(graph_strategy)
@settings(max_examples=60, deadline=None)
def test_per_edge_four_cycles_match(g):
    assert fast_per_edge_four_cycle_counts(g) == per_edge_four_cycle_counts(g)


def test_book_graph_heavy_edge():
    counts = fast_per_edge_triangle_counts(book_graph(9))
    assert counts[(0, 1)] == 9


def test_diamond_edges():
    counts = fast_per_edge_four_cycle_counts(complete_bipartite(2, 6))
    assert all(value == 5 for value in counts.values())


def test_medium_graph():
    g = erdos_renyi(80, 0.2, seed=3)
    assert fast_per_edge_four_cycle_counts(g) == per_edge_four_cycle_counts(g)
