"""Generator guarantees: counts, sizes and structural properties."""

from math import comb

import pytest

from repro.graphs import (
    barabasi_albert,
    book_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    diamond_k2h,
    disjoint_union,
    erdos_renyi,
    four_cycle_count,
    friendship_graph,
    gnm_random_graph,
    grid_graph,
    heavy_edge_graph,
    max_edge_triangle_count,
    path_graph,
    planted_diamonds,
    planted_four_cycles,
    planted_triangles,
    random_bipartite,
    star_graph,
    triangle_count,
)


class TestClassicalGenerators:
    def test_erdos_renyi_determinism(self):
        a = erdos_renyi(50, 0.1, seed=3)
        b = erdos_renyi(50, 0.1, seed=3)
        assert a == b

    def test_erdos_renyi_seed_changes_graph(self):
        a = erdos_renyi(50, 0.1, seed=3)
        b = erdos_renyi(50, 0.1, seed=4)
        assert a != b

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=0).num_edges == comb(10, 2)

    def test_erdos_renyi_validates_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_gnm_exact_edges(self):
        g = gnm_random_graph(30, 70, seed=1)
        assert g.num_edges == 70
        assert g.num_vertices == 30

    def test_gnm_rejects_impossible(self):
        with pytest.raises(ValueError):
            gnm_random_graph(5, 100)

    def test_barabasi_albert(self):
        g = barabasi_albert(60, 3, seed=2)
        assert g.num_vertices == 60
        # seed clique C(4,2)=6 plus 3 per newcomer
        assert g.num_edges == 6 + 3 * (60 - 4)

    def test_barabasi_albert_validates(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_random_bipartite_triangle_free(self):
        g = random_bipartite(15, 15, 0.4, seed=3)
        assert triangle_count(g) == 0


class TestStructuredGenerators:
    def test_complete_counts(self):
        assert complete_graph(6).num_edges == 15
        assert complete_bipartite(3, 4).num_edges == 12

    def test_cycle_path_star(self):
        assert cycle_graph(7).num_edges == 7
        assert path_graph(7).num_edges == 6
        assert star_graph(7).num_edges == 7

    def test_cycle_validates(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert four_cycle_count(g) == 2 * 3

    def test_diamond(self):
        g = diamond_k2h(5)
        assert g.num_edges == 10
        assert four_cycle_count(g) == comb(5, 2)

    def test_diamond_validates(self):
        with pytest.raises(ValueError):
            diamond_k2h(0)

    def test_book(self):
        g = book_graph(8)
        assert triangle_count(g) == 8
        assert max_edge_triangle_count(g) == 8

    def test_friendship(self):
        g = friendship_graph(5)
        assert triangle_count(g) == 5
        assert four_cycle_count(g) == 0


class TestPlantedWorkloads:
    def test_planted_triangles_exact_before_noise(self):
        g = planted_triangles(100, 20, extra_edges=0, seed=5)
        assert triangle_count(g) == 20

    def test_planted_triangles_validates_capacity(self):
        with pytest.raises(ValueError):
            planted_triangles(10, 20)

    def test_planted_triangles_nondisjoint(self):
        g = planted_triangles(30, 15, extra_edges=0, seed=5, disjoint=False)
        assert triangle_count(g) >= 1  # overlaps may merge/crete triangles

    def test_planted_four_cycles_exact(self):
        g = planted_four_cycles(200, 30, extra_edges=0, seed=6)
        assert four_cycle_count(g) == 30
        assert triangle_count(g) == 0

    def test_planted_four_cycles_validates(self):
        with pytest.raises(ValueError):
            planted_four_cycles(10, 20)

    def test_planted_diamonds_exact(self):
        sizes = [5, 3, 8]
        g = planted_diamonds(60, sizes, extra_edges=0, seed=7)
        assert four_cycle_count(g) == sum(comb(h, 2) for h in sizes)

    def test_planted_diamonds_validates(self):
        with pytest.raises(ValueError):
            planted_diamonds(5, [10])
        with pytest.raises(ValueError):
            planted_diamonds(50, [0])

    def test_noise_edges_added(self):
        bare = planted_triangles(200, 10, extra_edges=0, seed=8)
        noisy = planted_triangles(200, 10, extra_edges=50, seed=8)
        assert noisy.num_edges == bare.num_edges + 50

    def test_heavy_edge_graph(self):
        g = heavy_edge_graph(200, heavy_triangles=40, light_triangles=10, seed=9)
        assert triangle_count(g) == 50
        assert max_edge_triangle_count(g) == 40

    def test_heavy_edge_graph_validates(self):
        with pytest.raises(ValueError):
            heavy_edge_graph(10, 40, 10)


class TestDisjointUnion:
    def test_counts_add(self):
        g = disjoint_union([complete_graph(4), complete_graph(5), cycle_graph(4)])
        assert g.num_vertices == 13
        assert triangle_count(g) == comb(4, 3) + comb(5, 3)
        assert four_cycle_count(g) == 3 * comb(4, 4) + 3 * comb(5, 4) + 1

    def test_empty_union(self):
        g = disjoint_union([])
        assert g.num_vertices == 0


class TestChungLuAndPowerLaw:
    def test_chung_lu_validates(self):
        from repro.graphs import chung_lu

        import pytest as _pytest

        with _pytest.raises(ValueError):
            chung_lu([])
        with _pytest.raises(ValueError):
            chung_lu([-1.0, 2.0])
        with _pytest.raises(ValueError):
            chung_lu([0.0, 0.0])

    def test_chung_lu_expected_degrees_roughly_track_weights(self):
        from repro.graphs import chung_lu

        weights = [20.0] * 5 + [2.0] * 95
        g = chung_lu(weights, seed=3)
        hub_degree = sum(g.degree(v) for v in range(5)) / 5
        leaf_degree = sum(g.degree(v) for v in range(5, 100)) / 95
        assert hub_degree > 3 * leaf_degree

    def test_power_law_determinism_and_tail(self):
        from repro.graphs import power_law_graph

        a = power_law_graph(150, exponent=2.3, seed=4)
        b = power_law_graph(150, exponent=2.3, seed=4)
        assert a == b
        degrees = sorted((a.degree(v) for v in a.vertices()), reverse=True)
        assert degrees[0] >= 3 * max(1, degrees[len(degrees) // 2])

    def test_power_law_validates(self):
        from repro.graphs import power_law_graph

        import pytest as _pytest

        with _pytest.raises(ValueError):
            power_law_graph(10, exponent=1.0)


class TestUserItemBipartite:
    def test_triangle_free_and_sized(self):
        from repro.graphs import triangle_count as tcount, user_item_bipartite

        g = user_item_bipartite(80, 40, 4, popular_items=5, seed=2)
        assert tcount(g) == 0
        assert g.num_edges == 80 * 4

    def test_popular_items_attract_more_users(self):
        from repro.graphs import user_item_bipartite

        g = user_item_bipartite(200, 60, 5, popular_items=6, popularity_boost=6, seed=3)
        popular = sum(g.degree(200 + i) for i in range(6)) / 6
        rest = sum(g.degree(200 + i) for i in range(6, 60)) / 54
        assert popular > 2 * rest

    def test_validates(self):
        from repro.graphs import user_item_bipartite

        import pytest as _pytest

        with _pytest.raises(ValueError):
            user_item_bipartite(5, 3, 4)

    def test_diamond_rich(self):
        from repro.graphs import four_cycle_count as ccount, user_item_bipartite

        g = user_item_bipartite(200, 60, 5, popular_items=6, popularity_boost=6, seed=3)
        assert ccount(g) > 200  # hot item pairs create many diamonds
