"""Unit tests for the Graph type and edge canonicalization."""

import pytest

from repro.graphs import Graph, normalize_edge


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(3, 1) == (1, 3)
        assert normalize_edge(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            normalize_edge(4, 4)

    def test_mixed_types_are_stable(self):
        first = normalize_edge("a", 1)
        second = normalize_edge(1, "a")
        assert first == second

    def test_string_vertices(self):
        assert normalize_edge("v2", "v10") == ("v10", "v2")  # lexicographic


class TestGraphConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_add_edge_creates_vertices(self):
        g = Graph()
        assert g.add_edge(1, 2)
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_duplicate_edge_ignored(self):
        g = Graph()
        assert g.add_edge(1, 2)
        assert not g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(5, 5)

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (1, 0)])
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_add_vertex_isolated(self):
        g = Graph()
        g.add_vertex(9)
        assert g.num_vertices == 1
        assert g.degree(9) == 0


class TestGraphQueries:
    def test_has_edge_symmetric(self):
        g = Graph.from_edges([(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_degree(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.degree(99) == 0

    def test_max_degree(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        assert g.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_neighbors(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        assert g.neighbors(0) == {1, 2}
        assert g.neighbors(42) == set()

    def test_edges_canonical_once(self):
        g = Graph.from_edges([(2, 1), (3, 2)])
        edges = list(g.edges())
        assert sorted(edges) == [(1, 2), (2, 3)]
        assert len(edges) == len(set(edges))

    def test_contains(self):
        g = Graph.from_edges([(0, 1)])
        assert 0 in g
        assert 5 not in g


class TestGraphMutation:
    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.remove_edge(0, 1)
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)
        assert not g.remove_edge(0, 1)

    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1)])
        clone = g.copy()
        clone.add_edge(1, 2)
        assert g.num_edges == 1
        assert clone.num_edges == 2
        assert g == Graph.from_edges([(0, 1)])

    def test_relabeled(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        relabeled = g.relabeled({0: 10, 1: 11, 2: 12})
        assert relabeled.has_edge(10, 11)
        assert relabeled.has_edge(11, 12)
        assert relabeled.num_edges == 2

    def test_relabeled_rejects_collisions(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            g.relabeled({0: 5, 2: 5})

    def test_equality(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        assert a == b
        b.add_edge(0, 2)
        assert a != b
