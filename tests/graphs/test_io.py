"""Edge-list I/O: parsing, reporting, round-tripping."""

import pytest

from repro.graphs import (
    Graph,
    erdos_renyi,
    iter_edge_list,
    read_edge_list,
    write_edge_list,
)


class TestReadEdgeList:
    def test_basic(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        graph, report = read_edge_list(path)
        assert graph.num_edges == 3
        assert report.edges_kept == 3
        assert report.duplicates_dropped == 0

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n% other header\n\n0 1\n")
        graph, report = read_edge_list(path)
        assert graph.num_edges == 1
        assert report.lines_skipped == 3

    def test_separators(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0,1\n1;2\n2\t3\n3   4\n")
        graph, _ = read_edge_list(path)
        assert graph.num_edges == 4

    def test_duplicates_and_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n2 2\n0 1\n")
        graph, report = read_edge_list(path)
        assert graph.num_edges == 1
        assert report.duplicates_dropped == 2
        assert report.self_loops_dropped == 1

    def test_string_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alice bob\nbob carol\n")
        graph, _ = read_edge_list(path)
        assert graph.has_edge("alice", "bob")

    def test_integer_vertices_parsed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("007 10\n")
        graph, _ = read_edge_list(path)
        assert graph.has_edge(7, 10)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\njustone\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestWriteEdgeList:
    def test_round_trip(self, tmp_path):
        graph = erdos_renyi(40, 0.2, seed=1)
        path = tmp_path / "g.txt"
        written = write_edge_list(graph, path, header="generated\nby test")
        assert written == graph.num_edges
        loaded, report = read_edge_list(path)
        assert loaded == graph
        assert report.lines_skipped == 2  # the two header lines

    def test_deterministic_order(self, tmp_path):
        graph = Graph.from_edges([(3, 1), (0, 2), (1, 0)])
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        assert path.read_text().splitlines() == ["0 1", "0 2", "1 3"]


class TestIterEdgeList:
    def test_streams_raw_edges(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n1 2\n")
        edges = list(iter_edge_list(path))
        assert edges == [(0, 1), (0, 1), (1, 2)]  # duplicates preserved

    def test_malformed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("oops\n")
        with pytest.raises(ValueError):
            list(iter_edge_list(path))
