"""Structural analysis helpers (heavy edges, Lemma 5.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    book_graph,
    complete_bipartite,
    complete_graph,
    friendship_graph,
    planted_diamonds,
)
from repro.graphs.structural import (
    bad_four_cycle_edges,
    check_lemma51,
    cycles_by_bad_edge_count,
    heaviness_summary,
    heavy_triangle_edges,
    wedge_histogram,
)


class TestHeavyTriangleEdges:
    def test_book_graph(self):
        g = book_graph(6)
        assert heavy_triangle_edges(g, threshold=6) == {(0, 1)}
        assert heavy_triangle_edges(g, threshold=7) == set()
        assert len(heavy_triangle_edges(g, threshold=1)) == g.num_edges

    def test_validates(self):
        with pytest.raises(ValueError):
            heavy_triangle_edges(Graph(), threshold=-1)


class TestBadFourCycleEdges:
    def test_cycle_free_graph_has_none(self):
        assert bad_four_cycle_edges(friendship_graph(20), eta=1.0) == set()

    def test_single_diamond_all_edges_bad_at_small_eta(self):
        g = complete_bipartite(2, 10)  # T = 45, every edge in 9 cycles
        bad = bad_four_cycle_edges(g, eta=1.0)  # threshold sqrt(45) ~ 6.7
        assert bad == set(g.edges())

    def test_large_eta_no_bad_edges(self):
        g = complete_bipartite(2, 10)
        assert bad_four_cycle_edges(g, eta=100.0) == set()

    def test_validates(self):
        with pytest.raises(ValueError):
            bad_four_cycle_edges(Graph(), eta=0)


class TestCyclesByBadEdgeCount:
    def test_histogram_sums_to_t(self):
        g = planted_diamonds(200, [8, 5, 3], seed=1)
        from repro.graphs import four_cycle_count

        histogram = cycles_by_bad_edge_count(g, eta=2.0)
        assert sum(histogram.values()) == four_cycle_count(g)

    def test_all_bad_case(self):
        g = complete_bipartite(2, 10)
        histogram = cycles_by_bad_edge_count(g, eta=1.0)
        assert histogram[4] == 45  # every cycle has 4 bad edges
        assert histogram[0] == histogram[1] == 0


class TestLemma51Report:
    def test_report_fields(self):
        g = complete_graph(10)
        report = check_lemma51(g, eta=90.0)
        assert report.total_cycles == 3 * math.comb(10, 4)
        assert report.holds
        assert report.slack >= 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=25,
        ),
        st.sampled_from([2.0, 8.0, 90.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lemma_holds_on_arbitrary_graphs(self, edges, eta):
        """Lemma 5.1 is a theorem: it must hold for every graph."""
        g = Graph.from_edges(edges)
        report = check_lemma51(g, eta)
        assert report.holds


class TestSummaries:
    def test_wedge_histogram(self):
        g = complete_bipartite(2, 5)  # the (u,v) pair has x=5; mid pairs x=2
        histogram = wedge_histogram(g)
        assert histogram[5] == 1
        assert histogram[2] == math.comb(5, 2)

    def test_heaviness_summary_book(self):
        summary = heaviness_summary(book_graph(8))
        assert summary["triangles"] == 8
        assert summary["max_edge_triangles"] == 8
        assert summary["triangle_concentration"] == 1.0

    def test_heaviness_summary_empty(self):
        summary = heaviness_summary(Graph())
        assert summary["triangles"] == 0
        assert summary["triangle_concentration"] == 0.0
