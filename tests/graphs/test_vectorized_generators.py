"""Vectorized generators vs the legacy scalar loops.

The numpy generators draw from the *same distributions* as the
``*_loop`` legacy implementations but use a different RNG, so a fixed
seed yields a different (equally distributed) instance.  The tests
therefore check (a) structural invariants and determinism per
generator, (b) distribution agreement between old and new paths on
matched parameters — edge counts and subgraph-count statistics
averaged over seeds, and (c) exact agreement with
``repro.graphs.exact`` counters on small instances.
"""

import statistics

import pytest

from repro.graphs import (
    chung_lu,
    chung_lu_loop,
    erdos_renyi,
    erdos_renyi_loop,
    fast_counts,
    four_cycle_count,
    gnm_random_graph,
    gnm_random_graph_loop,
    random_bipartite,
    random_bipartite_loop,
    triangle_count,
)
from repro.graphs.exact import wedge_counts


def _wedge_f2(graph):
    return sum(c * c for c in wedge_counts(graph).values())


class TestDeterminism:
    @pytest.mark.parametrize(
        "make",
        [
            lambda s: erdos_renyi(60, 0.1, seed=s),
            lambda s: gnm_random_graph(60, 120, seed=s),
            lambda s: chung_lu([3.0] * 40, seed=s),
            lambda s: random_bipartite(20, 25, 0.2, seed=s),
        ],
        ids=["gnp", "gnm", "chung-lu", "bipartite"],
    )
    def test_same_seed_same_graph(self, make):
        assert sorted(make(7).edges()) == sorted(make(7).edges())
        assert sorted(make(7).edges()) != sorted(make(8).edges())


class TestStructuralInvariants:
    def test_gnp_extremes(self):
        assert erdos_renyi(30, 0.0, seed=1).num_edges == 0
        full = erdos_renyi(30, 1.0, seed=1)
        assert full.num_edges == 30 * 29 // 2

    def test_gnm_exact_edge_count(self):
        for seed in range(5):
            graph = gnm_random_graph(50, 200, seed=seed)
            assert graph.num_edges == 200
            for u, v in graph.edges():
                assert u != v and 0 <= u < 50 and 0 <= v < 50

    def test_bipartite_no_within_side_edges(self):
        graph = random_bipartite(15, 20, 0.3, seed=3)
        for u, v in graph.edges():
            assert u < 15 <= v < 35

    def test_chung_lu_respects_zero_weights(self):
        graph = chung_lu([0.0, 0.0, 5.0, 5.0, 5.0], seed=2)
        for u, v in graph.edges():
            assert u >= 2 and v >= 2


class TestDistributionMatchesLegacyLoop:
    """Old-loop and numpy generators agree in distribution.

    With the G(n,p) edge count ~ Binomial(C(n,2), p), a 5-sigma band
    around the exact mean keeps false failures negligible while still
    catching an off-by-one in the probability handling.
    """

    def test_gnp_edge_count_mean(self):
        n, p, seeds = 80, 0.08, range(30)
        pairs = n * (n - 1) // 2
        expected = pairs * p
        sigma = (pairs * p * (1 - p)) ** 0.5
        for gen in (erdos_renyi, erdos_renyi_loop):
            mean = statistics.mean(gen(n, p, seed=s).num_edges for s in seeds)
            assert abs(mean - expected) < 5 * sigma / (len(seeds) ** 0.5)

    def test_gnp_triangle_mean(self):
        n, p, seeds = 40, 0.15, range(30)
        expected = (n * (n - 1) * (n - 2) / 6) * p**3
        means = {}
        for gen in (erdos_renyi, erdos_renyi_loop):
            means[gen.__name__] = statistics.mean(
                triangle_count(gen(n, p, seed=s)) for s in seeds
            )
        # both near the analytic mean, and near each other
        for mean in means.values():
            assert abs(mean - expected) < 0.5 * expected + 2.0
        assert abs(means["erdos_renyi"] - means["erdos_renyi_loop"]) < 0.5 * expected + 2.0

    def test_gnm_four_cycle_and_wedge_stats(self):
        n, m, seeds = 40, 120, range(20)
        stats = {}
        for gen in (gnm_random_graph, gnm_random_graph_loop):
            graphs = [gen(n, m, seed=s) for s in seeds]
            stats[gen.__name__] = (
                statistics.mean(four_cycle_count(g) for g in graphs),
                statistics.mean(_wedge_f2(g) for g in graphs),
            )
        new_c4, new_f2 = stats["gnm_random_graph"]
        old_c4, old_f2 = stats["gnm_random_graph_loop"]
        assert abs(new_c4 - old_c4) <= 0.35 * max(old_c4, 1.0)
        assert abs(new_f2 - old_f2) <= 0.25 * max(old_f2, 1.0)

    def test_chung_lu_degree_mass(self):
        weights = [6.0] * 30 + [2.0] * 60
        seeds = range(20)
        for gen in (chung_lu, chung_lu_loop):
            mean_edges = statistics.mean(gen(weights, seed=s).num_edges for s in seeds)
            # expected edges ~ sum_{u<v} w_u w_v / W
            total = sum(weights)
            expected = sum(
                min(1.0, weights[u] * weights[v] / total)
                for u in range(len(weights))
                for v in range(u + 1, len(weights))
            )
            assert abs(mean_edges - expected) < 0.2 * expected

    def test_bipartite_edge_count_mean(self):
        a, b, p, seeds = 20, 30, 0.15, range(25)
        expected = a * b * p
        for gen in (random_bipartite, random_bipartite_loop):
            mean = statistics.mean(gen(a, b, p, seed=s).num_edges for s in seeds)
            assert abs(mean - expected) < 0.25 * expected


class TestExactCountsPinned:
    """Vectorized output agrees with repro.graphs.exact on small n."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counts_cross_check_fast_vs_exact(self, seed):
        graph = erdos_renyi(25, 0.3, seed=seed)
        counts = fast_counts(graph)
        assert counts["triangles"] == triangle_count(graph)
        assert counts["four_cycles"] == four_cycle_count(graph)
        assert counts["wedge_f2"] == _wedge_f2(graph)

    def test_pinned_small_instances(self):
        # Frozen regression pins: exact values computed with
        # repro.graphs.exact under the repro-seed-v1 namespaced seeding
        # scheme; a drift means the seeded sampling changed.
        graph = erdos_renyi(12, 0.5, seed=42)
        assert graph.num_edges == 34
        assert triangle_count(graph) == 31
        assert four_cycle_count(graph) == 99
        assert _wedge_f2(graph) == 571
        assert fast_counts(graph) == {
            "triangles": 31,
            "four_cycles": 99,
            "wedge_f2": 571,
        }
        gnm = gnm_random_graph(10, 20, seed=7)
        assert gnm.num_edges == 20
        assert triangle_count(gnm) == 11
        assert four_cycle_count(gnm) == 31
        assert fast_counts(gnm)["triangles"] == 11
