"""Degenerate-input robustness: every algorithm on trivial streams.

Production code meets empty files, single edges and disconnected
dust long before it meets interesting graphs.  Every algorithm must
return a finite, non-negative estimate (zero where the true count is
zero) without crashing.
"""

import pytest

from repro.baselines import (
    BeraChakrabartiFourCycles,
    CormodeJowhariTriangles,
    EdgeSamplingFourCycles,
    EdgeSamplingTriangles,
    ExactFourCycleStream,
    ExactTriangleStream,
    TriestBase,
    TriestImpr,
    TwoPassTriangles,
    WedgePairSamplingFourCycles,
)
from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryOnePass,
    FourCycleArbitraryThreePass,
    FourCycleDistinguisher,
    FourCycleL2Sampling,
    FourCycleMoment,
    TriangleRandomOrder,
)
from repro.graphs import Graph, path_graph, star_graph
from repro.streams import AdjacencyListStream, ArbitraryOrderStream, RandomOrderStream


def _tiny_graphs():
    single = Graph.from_edges([(0, 1)])
    two_disjoint = Graph.from_edges([(0, 1), (2, 3)])
    return {
        "single-edge": single,
        "two-disjoint-edges": two_disjoint,
        "path-4": path_graph(4),
        "star-5": star_graph(5),
    }


# exact-on-cycle-free algorithms: these must answer exactly 0 on the
# tiny cycle-free graphs (their estimators only fire on real wedges /
# cycles).  The moment-sketch algorithms are excluded — their output is
# a difference of randomized sketches and is only *approximately* 0.
EDGE_ALGORITHMS = [
    lambda: TriangleRandomOrder(t_guess=1, epsilon=0.3, seed=1),
    lambda: FourCycleArbitraryThreePass(t_guess=1, epsilon=0.3, seed=1),
    lambda: FourCycleDistinguisher(t_guess=1, seed=1),
    lambda: CormodeJowhariTriangles(t_guess=1, epsilon=0.3),
    lambda: BeraChakrabartiFourCycles(t_guess=1, epsilon=0.3, seed=1),
    lambda: TwoPassTriangles(t_guess=1, epsilon=0.3, seed=1),
    lambda: TriestBase(memory=10, seed=1),
    lambda: TriestImpr(memory=10, seed=1),
    lambda: EdgeSamplingTriangles(p=0.5, seed=1),
    lambda: EdgeSamplingFourCycles(p=0.5, seed=1),
    lambda: ExactTriangleStream(),
    lambda: ExactFourCycleStream(),
]

ADJACENCY_ALGORITHMS = [
    lambda: FourCycleAdjacencyDiamond(t_guess=1, epsilon=0.3, seed=1),
    lambda: FourCycleMoment(t_guess=1, epsilon=0.3, groups=2, group_size=2, seed=1),
    lambda: FourCycleL2Sampling(
        t_guess=1, epsilon=0.3, num_samplers=2, groups=2, group_size=2, seed=1
    ),
    lambda: WedgePairSamplingFourCycles(wedge_probability=0.5, seed=1),
]

# randomized-sketch algorithms: approximately zero on cycle-free dust
SKETCH_EDGE_ALGORITHMS = [
    lambda: FourCycleArbitraryOnePass(
        t_guess=1, epsilon=0.3, groups=2, group_size=2, seed=1
    ),
]


@pytest.mark.parametrize("graph_name", sorted(_tiny_graphs()))
def test_sketch_algorithms_bounded_on_tiny_graphs(graph_name):
    graph = _tiny_graphs()[graph_name]
    for factory in SKETCH_EDGE_ALGORITHMS:
        result = factory().run(RandomOrderStream(graph, seed=3))
        assert 0.0 <= result.estimate <= 25.0  # noise-scale, not runaway


@pytest.mark.parametrize("factory_index", range(len(EDGE_ALGORITHMS)))
@pytest.mark.parametrize("graph_name", sorted(_tiny_graphs()))
def test_edge_stream_algorithms_on_tiny_graphs(factory_index, graph_name):
    graph = _tiny_graphs()[graph_name]
    algorithm = EDGE_ALGORITHMS[factory_index]()
    result = algorithm.run(RandomOrderStream(graph, seed=3))
    assert result.estimate == 0.0  # none of these graphs has any cycle
    assert result.space_items >= 0


@pytest.mark.parametrize("factory_index", range(len(ADJACENCY_ALGORITHMS)))
@pytest.mark.parametrize("graph_name", sorted(_tiny_graphs()))
def test_adjacency_algorithms_on_tiny_graphs(factory_index, graph_name):
    graph = _tiny_graphs()[graph_name]
    algorithm = ADJACENCY_ALGORITHMS[factory_index]()
    result = algorithm.run(AdjacencyListStream(graph, seed=3))
    assert result.estimate >= 0.0
    assert result.estimate == result.estimate  # not NaN
    assert result.estimate < 1e12  # no runaway scaling on tiny inputs


@pytest.mark.parametrize("factory_index", range(len(EDGE_ALGORITHMS)))
def test_edge_stream_algorithms_on_empty_stream(factory_index):
    algorithm = EDGE_ALGORITHMS[factory_index]()
    result = algorithm.run(ArbitraryOrderStream([]))
    assert result.estimate == 0.0


@pytest.mark.parametrize("factory_index", range(len(ADJACENCY_ALGORITHMS)))
def test_adjacency_algorithms_on_edgeless_graph(factory_index):
    graph = Graph()
    graph.add_vertex(0)
    graph.add_vertex(1)
    algorithm = ADJACENCY_ALGORITHMS[factory_index]()
    result = algorithm.run(AdjacencyListStream(graph, seed=1))
    assert result.estimate == 0.0
