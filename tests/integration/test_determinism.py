"""Seed determinism: same (algorithm seed, stream seed) => identical
results, for every algorithm.

Reproducibility is a design promise of the library (README,
"Determinism"); this matrix enforces it.  Any hidden use of global
randomness, unordered-set iteration feeding into sampling decisions,
or time-based seeding breaks these tests.
"""

import pytest

from repro.baselines import (
    BeraChakrabartiFourCycles,
    CormodeJowhariTriangles,
    TriestImpr,
    TwoPassTriangles,
    WedgePairSamplingFourCycles,
)
from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryOnePass,
    FourCycleArbitraryThreePass,
    FourCycleDistinguisher,
    FourCycleL2Sampling,
    FourCycleMoment,
    TriangleRandomOrder,
)
from repro.graphs import erdos_renyi, planted_diamonds
from repro.streams import AdjacencyListStream, RandomOrderStream


@pytest.fixture(scope="module")
def graph():
    return planted_diamonds(600, sizes=[8] * 6 + [3] * 10, extra_edges=300, seed=2)


@pytest.fixture(scope="module")
def dense_graph():
    return erdos_renyi(30, 0.5, seed=3)


EDGE_FACTORIES = {
    "triangle-ro": lambda: TriangleRandomOrder(t_guess=50, epsilon=0.3, seed=7),
    "threepass": lambda: FourCycleArbitraryThreePass(t_guess=100, epsilon=0.3, seed=7),
    "onepass": lambda: FourCycleArbitraryOnePass(
        t_guess=100, epsilon=0.3, groups=2, group_size=3, seed=7
    ),
    "distinguisher": lambda: FourCycleDistinguisher(t_guess=100, seed=7),
    "cj": lambda: CormodeJowhariTriangles(t_guess=50, epsilon=0.3),
    "bc": lambda: BeraChakrabartiFourCycles(t_guess=100, epsilon=0.3, seed=7),
    "twopass": lambda: TwoPassTriangles(t_guess=50, epsilon=0.3, seed=7),
    "triest": lambda: TriestImpr(memory=100, seed=7),
}

ADJ_FACTORIES = {
    "diamond": lambda: FourCycleAdjacencyDiamond(t_guess=100, epsilon=0.3, seed=7),
    "moment": lambda: FourCycleMoment(
        t_guess=100, epsilon=0.3, groups=2, group_size=3, seed=7
    ),
    "l2": lambda: FourCycleL2Sampling(
        t_guess=100, epsilon=0.3, num_samplers=4, groups=2, group_size=3, seed=7
    ),
    "wedge-pair": lambda: WedgePairSamplingFourCycles(wedge_probability=0.4, seed=7),
}


@pytest.mark.parametrize("name", sorted(EDGE_FACTORIES))
def test_edge_algorithms_deterministic(name, graph):
    factory = EDGE_FACTORIES[name]
    first = factory().run(RandomOrderStream(graph, seed=11))
    second = factory().run(RandomOrderStream(graph, seed=11))
    assert first.estimate == second.estimate
    assert first.space_items == second.space_items


@pytest.mark.parametrize("name", sorted(ADJ_FACTORIES))
def test_adjacency_algorithms_deterministic(name, dense_graph):
    factory = ADJ_FACTORIES[name]
    first = factory().run(AdjacencyListStream(dense_graph, seed=11))
    second = factory().run(AdjacencyListStream(dense_graph, seed=11))
    assert first.estimate == second.estimate
    assert first.space_items == second.space_items


@pytest.mark.parametrize("name", sorted(EDGE_FACTORIES))
def test_stream_seed_matters_or_algorithm_is_order_free(name, graph):
    """Changing the stream order changes *something* observable for
    order-sensitive algorithms, or provably nothing for order-free
    ones — either way the run must complete and stay finite."""
    factory = EDGE_FACTORIES[name]
    a = factory().run(RandomOrderStream(graph, seed=11))
    b = factory().run(RandomOrderStream(graph, seed=12))
    assert a.estimate == a.estimate and b.estimate == b.estimate
    assert a.estimate >= 0 and b.estimate >= 0


def test_generators_deterministic_across_calls():
    from repro.experiments import build_workload

    first = build_workload("diamond-mixture")
    second = build_workload("diamond-mixture")
    assert first.graph == second.graph
    assert first.four_cycles == second.four_cycles
