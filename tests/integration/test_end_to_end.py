"""Integration tests: full pipelines across modules.

These exercise the public API exactly the way the examples and the
benchmark harness do: build a workload, run several algorithms and
baselines through the trial runner, and check the combined picture.
"""

import pytest

from repro.baselines import (
    CormodeJowhariTriangles,
    ExactFourCycleStream,
    ExactTriangleStream,
)
from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryThreePass,
    TriangleRandomOrder,
)
from repro.experiments import build_workload, estimate_with_guesses, run_trials
from repro.streams import AdjacencyListStream, ArbitraryOrderStream, RandomOrderStream


class TestTrianglePipeline:
    def test_runner_with_real_algorithm(self):
        workload = build_workload(
            "light-triangles", n=500, num_triangles=100, noise_edges=600
        )
        stats = run_trials(
            algorithm_factory=lambda seed: TriangleRandomOrder(
                t_guess=workload.triangles, epsilon=0.3, seed=seed
            ),
            stream_factory=lambda seed: RandomOrderStream(workload.graph, seed=seed),
            truth=workload.triangles,
            trials=7,
        )
        assert stats.median_relative_error < 0.35
        assert stats.passes == 1
        assert stats.median_space > 0

    def test_exact_baseline_agrees_with_workload(self):
        workload = build_workload("social-like-triangles", n=200)
        result = ExactTriangleStream().run(
            ArbitraryOrderStream.from_graph(workload.graph)
        )
        assert result.estimate == workload.triangles

    def test_unknown_t_calibration_on_real_algorithm(self):
        """The estimate_with_guesses wrapper around Theorem 2.1."""
        workload = build_workload(
            "light-triangles", n=500, num_triangles=120, noise_edges=500
        )
        outcome = estimate_with_guesses(
            algorithm_factory=lambda guess, seed: TriangleRandomOrder(
                t_guess=guess, epsilon=0.3, seed=seed
            ),
            stream_factory=lambda seed: RandomOrderStream(workload.graph, seed=seed),
            guesses=[1, 16, 256, 4096],
            seed=3,
        )
        assert abs(outcome.estimate - workload.triangles) / workload.triangles < 0.5


class TestFourCyclePipeline:
    def test_adjacency_and_arbitrary_agree(self):
        """Two different models, two different algorithms, one truth."""
        workload = build_workload(
            "diamond-mixture",
            n=900,
            large=(20,) * 4,
            medium=(8,) * 8,
            small=(3,) * 10,
            noise_edges=200,
        )
        truth = workload.four_cycles
        diamond = FourCycleAdjacencyDiamond(t_guess=truth, epsilon=0.3, seed=1).run(
            AdjacencyListStream(workload.graph, seed=2)
        )
        threepass = FourCycleArbitraryThreePass(t_guess=truth, epsilon=0.3, seed=1).run(
            RandomOrderStream(workload.graph, seed=2)
        )
        assert abs(diamond.estimate - truth) / truth < 0.25
        assert abs(threepass.estimate - truth) / truth < 0.25

    def test_exact_c4_baseline(self):
        workload = build_workload("noisy-gnp", n=150, p=0.05)
        result = ExactFourCycleStream().run(
            AdjacencyListStream(workload.graph, seed=1)
        )
        assert result.estimate == workload.four_cycles


class TestCrossAlgorithmComparison:
    def test_mv_beats_cj_on_heavy_workload(self):
        """The headline E1 shape: Theorem 2.1 dominates the CJ-style
        baseline on heavy-edge inputs at comparable space."""
        workload = build_workload(
            "heavy-and-light-triangles",
            n=1200,
            heavy_triangles=300,
            light_triangles_count=100,
        )
        truth = workload.triangles
        mv = run_trials(
            lambda seed: TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=seed),
            lambda seed: RandomOrderStream(workload.graph, seed=seed),
            truth=truth,
            trials=9,
        )
        cj = run_trials(
            lambda seed: CormodeJowhariTriangles(t_guess=truth, epsilon=0.3),
            lambda seed: RandomOrderStream(workload.graph, seed=seed),
            truth=truth,
            trials=9,
        )
        assert mv.mean_relative_error < cj.mean_relative_error
