"""Hypothesis properties: in exact-sampling mode the algorithms are
*deterministically* correct on arbitrary graphs.

Driving every sampling probability to 1 (huge ``c``, tiny ``t_guess``)
turns each randomized algorithm into an exact procedure whose output
is fully determined by its combination logic — estimator scalings,
over-count coefficients, class bookkeeping.  These properties pin that
logic down over arbitrary small graphs, which catches exactly the
class of bugs unit tests on structured examples miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FourCycleArbitraryThreePass,
    FourCycleDistinguisher,
    TriangleRandomOrder,
)
from repro.baselines import TwoPassTriangles
from repro.graphs import Graph, four_cycle_count, max_edge_triangle_count, triangle_count
from repro.streams import ArbitraryOrderStream, RandomOrderStream

edge_strategy = st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
    lambda e: e[0] != e[1]
)
graph_strategy = st.lists(edge_strategy, min_size=1, max_size=30).map(Graph.from_edges)


@given(graph_strategy, st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_triangle_exact_mode_counts_light_graphs_exactly(g, seed):
    """With all probabilities 1 and every edge light, Theorem 2.1's
    estimator returns the exact triangle count."""
    truth = triangle_count(g)
    # pick t_guess so the heavy threshold sqrt(T) exceeds every t_e
    t_guess = max(1, (max_edge_triangle_count(g) + 1) ** 2 * 4)
    algorithm = TriangleRandomOrder(
        t_guess=t_guess, epsilon=0.3, c=10**6, seed=seed
    )
    result = algorithm.run(RandomOrderStream(g, seed=seed))
    assert result.estimate == truth


@given(graph_strategy, st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_threepass_exact_mode_counts_exactly(g, seed):
    """p = 1 and eta huge: every cycle stored, everything light, and
    the A0/4p^3 identity must be exact."""
    truth = four_cycle_count(g)
    algorithm = FourCycleArbitraryThreePass(
        t_guess=1, epsilon=0.3, eta=10**9, c=10**6, seed=seed
    )
    result = algorithm.run(ArbitraryOrderStream.from_graph(g))
    assert result.estimate == truth


@given(graph_strategy, st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_distinguisher_exact_mode_is_deterministic(g, seed):
    """p = 1: the distinguisher finds a cycle iff one exists."""
    algorithm = FourCycleDistinguisher(t_guess=1, c=10**6, seed=seed)
    found = algorithm.decide(ArbitraryOrderStream.from_graph(g))
    assert found == (four_cycle_count(g) > 0)


@given(graph_strategy, st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_twopass_baseline_exact_mode(g, seed):
    truth = triangle_count(g)
    algorithm = TwoPassTriangles(t_guess=1, epsilon=0.9, c=10**6, seed=seed)
    result = algorithm.run(ArbitraryOrderStream.from_graph(g))
    assert result.estimate == truth


@given(graph_strategy)
@settings(max_examples=30, deadline=None)
def test_estimates_are_finite_and_nonnegative(g):
    """Sanity across randomized regimes: no NaNs, no negatives."""
    truth = max(1, four_cycle_count(g))
    result = FourCycleArbitraryThreePass(t_guess=truth, epsilon=0.3, seed=1).run(
        ArbitraryOrderStream.from_graph(g)
    )
    assert result.estimate >= 0
    assert result.estimate == result.estimate  # not NaN
