"""Every example script must run clean — examples are API contracts.

Each script is executed in a subprocess (as a user would run it) and
must exit 0 with its headline table present in stdout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": "Triangles in one pass",
    "social_network_triangles.py": "Social-graph triangle analysis",
    "motif_fourcycles.py": "Co-engagement graph",
    "lower_bound_demo.py": "DISJ solved through",
    "file_streaming.py": "Counting straight from an edge-list file",
    "adversarial_orders.py": "under different orders",
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS), (
        "examples/ and the test expectations drifted apart"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_MARKERS[script] in completed.stdout
