"""Failure injection: what happens when t_guess is wrong.

The paper parameterizes every algorithm by the unknown count T.  These
tests document the promise-problem semantics under misspecification:

* **under-guessing** (t_guess << T) makes sampling denser — space goes
  UP, accuracy is preserved;
* **over-guessing** (t_guess >> T) starves the samplers — space goes
  DOWN and the estimate may degrade (which is why the guess schedule
  walks guesses downward until self-consistency).
"""

import statistics

import pytest

from repro.core import FourCycleDistinguisher, TriangleRandomOrder
from repro.experiments import estimate_with_guesses, guess_schedule
from repro.graphs import (
    four_cycle_count,
    planted_four_cycles,
    planted_triangles,
    triangle_count,
)
from repro.streams import RandomOrderStream


@pytest.fixture(scope="module")
def triangle_graph():
    return planted_triangles(700, 160, extra_edges=900, seed=3)


class TestUnderGuessing:
    def test_accuracy_preserved(self, triangle_graph):
        truth = triangle_count(triangle_graph)
        estimates = [
            TriangleRandomOrder(t_guess=truth / 8, epsilon=0.3, seed=seed)
            .run(RandomOrderStream(triangle_graph, seed=100 + seed))
            .estimate
            for seed in range(7)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.3

    def test_space_increases(self, triangle_graph):
        truth = triangle_count(triangle_graph)
        kwargs = dict(epsilon=0.3, c=0.05, use_log_factor=False, seed=1)
        under = TriangleRandomOrder(t_guess=truth / 8, **kwargs).run(
            RandomOrderStream(triangle_graph, seed=5)
        )
        right = TriangleRandomOrder(t_guess=truth, **kwargs).run(
            RandomOrderStream(triangle_graph, seed=5)
        )
        assert under.space_items > right.space_items


class TestOverGuessing:
    def test_space_decreases(self, triangle_graph):
        truth = triangle_count(triangle_graph)
        kwargs = dict(epsilon=0.3, c=0.05, use_log_factor=False, seed=1)
        over = TriangleRandomOrder(t_guess=truth * 16, **kwargs).run(
            RandomOrderStream(triangle_graph, seed=5)
        )
        right = TriangleRandomOrder(t_guess=truth, **kwargs).run(
            RandomOrderStream(triangle_graph, seed=5)
        )
        assert over.space_items < right.space_items

    def test_distinguisher_overguess_misses(self):
        """A vastly over-promised T starves the sample so the
        distinguisher can no longer find cycles — documented behavior,
        not a bug (the promise was violated)."""
        graph = planted_four_cycles(1500, 60, extra_edges=300, seed=7)
        truth = four_cycle_count(graph)
        hits = sum(
            FourCycleDistinguisher(t_guess=truth * 10**4, c=1.0, seed=seed).decide(
                RandomOrderStream(graph, seed=300 + seed)
            )
            for seed in range(6)
        )
        correct_hits = sum(
            FourCycleDistinguisher(t_guess=truth, c=3.0, seed=seed).decide(
                RandomOrderStream(graph, seed=300 + seed)
            )
            for seed in range(6)
        )
        assert correct_hits > hits


class TestGuessScheduleRecovers:
    def test_calibration_beats_blind_overguess(self, triangle_graph):
        truth = triangle_count(triangle_graph)
        outcome = estimate_with_guesses(
            algorithm_factory=lambda guess, seed: TriangleRandomOrder(
                t_guess=guess, epsilon=0.3, seed=seed
            ),
            stream_factory=lambda seed: RandomOrderStream(triangle_graph, seed=seed),
            guesses=guess_schedule(triangle_graph.num_edges),
            seed=4,
        )
        assert abs(outcome.estimate - truth) / truth < 0.5
        # the selected guess is within two schedule steps of the truth
        assert outcome.selected_guess <= 16 * truth
