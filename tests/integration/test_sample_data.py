"""The shipped sample dataset: integrity and end-to-end usability."""

from pathlib import Path

import pytest

from repro.core import FourCycleAdjacencyDiamond, TriangleRandomOrder
from repro.graphs import four_cycle_count, read_edge_list, triangle_count
from repro.streams import AdjacencyListStream, FileEdgeStream, RandomOrderStream

DATA = Path(__file__).resolve().parents[2] / "data" / "sample_collaboration.txt"


@pytest.fixture(scope="module")
def sample_graph():
    graph, report = read_edge_list(DATA)
    assert report.duplicates_dropped == 0
    return graph


class TestIntegrity:
    def test_counts_match_header(self, sample_graph):
        """The header records the exact counts; the file must match."""
        header = DATA.read_text().splitlines()[2]
        assert f"m={sample_graph.num_edges}" in header
        assert f"triangles={triangle_count(sample_graph)}" in header
        assert f"four_cycles={four_cycle_count(sample_graph)}" in header

    def test_expected_scale(self, sample_graph):
        assert sample_graph.num_edges == 2166
        assert triangle_count(sample_graph) == 441
        assert four_cycle_count(sample_graph) == 4544


class TestEndToEnd:
    def test_triangles_from_file_stream(self, sample_graph):
        truth = triangle_count(sample_graph)
        stream = FileEdgeStream(DATA)
        assert stream.num_edges == sample_graph.num_edges
        result = TriangleRandomOrder(t_guess=truth, epsilon=0.4, seed=2).run(stream)
        # file order is adversarial for the random-order algorithm, so
        # only a sanity band is asserted here; the shuffled run below
        # carries the accuracy claim
        assert result.estimate >= 0

    def test_triangles_random_order(self, sample_graph):
        import statistics

        truth = triangle_count(sample_graph)
        estimates = [
            TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=seed)
            .run(RandomOrderStream(sample_graph, seed=seed))
            .estimate
            for seed in range(5)
        ]
        median = statistics.median(estimates)
        assert abs(median - truth) / truth < 0.4

    def test_four_cycles_adjacency(self, sample_graph):
        truth = four_cycle_count(sample_graph)
        result = FourCycleAdjacencyDiamond(t_guess=truth, epsilon=0.3, seed=1).run(
            AdjacencyListStream(sample_graph, seed=3)
        )
        assert result.relative_error(truth) < 0.3
