"""Moderate-scale smoke runs: the algorithms at 10x the unit-test sizes.

Not a performance suite — a guard that nothing in the pipeline is
accidentally quadratic in the wrong place and that accuracy holds as
the workloads grow.
"""

import statistics

import pytest

from repro.core import FourCycleArbitraryThreePass, TriangleRandomOrder
from repro.graphs import (
    fast_four_cycle_count,
    fast_triangle_count,
    planted_diamonds,
    planted_triangles,
)
from repro.streams import RandomOrderStream


@pytest.mark.parametrize("n,planted,noise", [(8000, 1200, 4000)])
def test_triangle_at_scale(n, planted, noise):
    graph = planted_triangles(n, planted, extra_edges=noise, seed=5)
    truth = fast_triangle_count(graph)
    # c = 1 (no log factor): dense enough for accuracy at this T
    # (c = 0.05 is the space-sweep setting, far too thin to estimate)
    estimates = [
        TriangleRandomOrder(
            t_guess=truth, epsilon=0.3, c=1.0, use_log_factor=False, seed=seed
        )
        .run(RandomOrderStream(graph, seed=700 + seed))
        .estimate
        for seed in range(3)
    ]
    median = statistics.median(estimates)
    assert abs(median - truth) / truth < 0.35


def test_threepass_at_scale():
    graph = planted_diamonds(9000, [12] * 180, extra_edges=1500, seed=6)
    truth = fast_four_cycle_count(graph)
    result = FourCycleArbitraryThreePass(
        t_guess=truth, epsilon=0.3, eta=2.0, c=0.5, use_log_factor=False, seed=2
    ).run(RandomOrderStream(graph, seed=9))
    assert result.relative_error(truth) < 0.3
    # genuinely sub-sampled, and sub-linear in m on the sampling side
    assert result.details["p"] < 1.0
