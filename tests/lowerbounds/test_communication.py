"""Communication problem instances."""

import pytest

from repro.lowerbounds import DisjointnessInstance, IndexInstance


class TestIndexInstance:
    def test_random_shape(self):
        instance = IndexInstance.random(50, seed=1)
        assert len(instance.bits) == 50
        assert 0 <= instance.index < 50
        assert instance.answer == instance.bits[instance.index]

    def test_deterministic(self):
        assert IndexInstance.random(50, seed=1) == IndexInstance.random(50, seed=1)

    def test_seed_varies(self):
        a = IndexInstance.random(50, seed=1)
        b = IndexInstance.random(50, seed=2)
        assert a != b


class TestDisjointnessInstance:
    def test_answer(self):
        assert DisjointnessInstance(s1=[1, 0, 1], s2=[0, 0, 1]).answer == 1
        assert DisjointnessInstance(s1=[1, 0, 1], s2=[0, 1, 0]).answer == 0

    def test_length_validation(self):
        with pytest.raises(ValueError):
            DisjointnessInstance(s1=[1], s2=[1, 0])

    def test_intersection_indices(self):
        instance = DisjointnessInstance(s1=[1, 1, 0, 1], s2=[1, 0, 0, 1])
        assert instance.intersection_indices == [0, 3]

    @pytest.mark.parametrize("answer", [0, 1])
    def test_random_with_answer(self, answer):
        for seed in range(10):
            instance = DisjointnessInstance.random_with_answer(40, answer, seed=seed)
            assert instance.answer == answer

    def test_planted_intersection_is_single_when_lucky(self):
        instance = DisjointnessInstance.random_with_answer(40, 1, seed=3)
        assert len(instance.intersection_indices) >= 1
