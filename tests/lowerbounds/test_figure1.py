"""The Figure 1 construction and the Theorem 2.7 protocol simulation."""

import math

import pytest

from repro.core import TriangleRandomOrder
from repro.graphs import triangle_count
from repro.lowerbounds import (
    build_figure1,
    prefix_reveals_special_pair,
    run_random_partition_protocol,
)


class TestConstruction:
    @pytest.mark.parametrize("seed", range(8))
    def test_triangle_count_tracks_planted_bit(self, seed):
        construction = build_figure1(n=6, t=5, seed=seed)
        assert triangle_count(construction.graph) == construction.expected_triangles

    def test_forced_bit_one(self):
        x = [[1] * 4 for _ in range(4)]
        construction = build_figure1(n=4, t=7, seed=1, x=x, i_star=2, j_star=3)
        assert construction.planted_bit == 1
        assert triangle_count(construction.graph) == 7

    def test_forced_bit_zero(self):
        x = [[0] * 4 for _ in range(4)]
        construction = build_figure1(n=4, t=7, seed=1, x=x, i_star=2, j_star=3)
        assert triangle_count(construction.graph) == 0

    def test_w_degrees_at_most_two(self):
        construction = build_figure1(n=5, t=6, seed=2)
        graph = construction.graph
        for v in graph.vertices():
            if isinstance(v, str) and v.startswith("w"):
                assert graph.degree(v) <= 2

    def test_edge_budget(self):
        """m = |E_x| + 2nT - T(shared block counted once per endpoint)."""
        n, t = 5, 6
        construction = build_figure1(n=n, t=t, seed=3)
        ones = sum(sum(row) for row in construction.x)
        assert construction.graph.num_edges == ones + 2 * n * t

    def test_validates(self):
        with pytest.raises(ValueError):
            build_figure1(n=0, t=5)


class TestPrefixSecrecy:
    def test_short_prefix_rarely_reveals(self):
        """A prefix of ~ m/sqrt(T) edges almost never contains both
        edges at a shared W vertex — the engine of Theorem 2.6."""
        construction = build_figure1(n=10, t=25, seed=1, x=[[1] * 10] * 10)
        fraction = 1.0 / (2.0 * math.sqrt(construction.t))
        reveals = sum(
            prefix_reveals_special_pair(construction, fraction, seed=seed)
            for seed in range(30)
        )
        assert reveals <= 10

    def test_full_stream_always_reveals(self):
        construction = build_figure1(n=10, t=25, seed=1, x=[[1] * 10] * 10)
        assert prefix_reveals_special_pair(construction, 1.0, seed=0)


class TestProtocol:
    def test_protocol_decides_correctly_with_enough_space(self):
        """Majority over 3 protocol repetitions per instance (the
        construction plants all T triangles on one edge, so individual
        runs carry the Lemma 2.3 heavy-miss probability)."""
        correct = 0
        trials = 8
        for seed in range(trials):
            construction = build_figure1(n=8, t=16, seed=seed)
            votes = 0
            for rep in range(3):
                outcome = run_random_partition_protocol(
                    construction,
                    lambda: TriangleRandomOrder(t_guess=16, epsilon=0.3, seed=7 + rep),
                    alice_probability=0.25,
                    seed=seed * 31 + rep,
                )
                votes += outcome.decided_positive
            decided = votes >= 2
            correct += decided == bool(construction.planted_bit)
        assert correct >= trials - 1

    def test_outcome_fields(self):
        construction = build_figure1(n=5, t=4, seed=1)
        outcome = run_random_partition_protocol(
            construction,
            lambda: TriangleRandomOrder(t_guess=4, epsilon=0.3, seed=3),
            alice_probability=0.3,
            seed=2,
        )
        assert outcome.alice_tokens + outcome.bob_tokens == len(
            construction.all_edges()
        )
        assert outcome.communication_items > 0
