"""The faithful Theorem 2.7 INDEX reduction."""

import pytest

from repro.core import TriangleRandomOrder
from repro.graphs import triangle_count
from repro.lowerbounds import IndexInstance
from repro.lowerbounds.index_reduction import (
    ReductionFailure,
    build_index_reduction,
    run_index_protocol,
)


def _build(seed, n=6, t=12, length=12, p=0.1):
    instance = IndexInstance.random(length, seed=seed)
    return build_index_reduction(instance, n=n, t=t, p=p, seed=seed), instance


class TestConstruction:
    @pytest.mark.parametrize("seed", range(8))
    def test_triangles_encode_hidden_bit(self, seed):
        reduction, instance = _build(seed)
        graph = reduction.graph()
        assert triangle_count(graph) == reduction.expected_triangles
        assert reduction.hidden_bit == instance.answer

    def test_special_pair_is_alices_kth_position(self, ):
        reduction, instance = _build(3)
        # the hidden bit is literally z[k]
        assert reduction.hidden_bit == instance.bits[instance.index]

    def test_every_hub_reaches_degree_t_in_w(self):
        reduction, _ = _build(5)
        graph = reduction.graph()
        for i in range(reduction.n):
            for name in (f"u{i}", f"v{i}"):
                w_degree = sum(
                    1 for nb in graph.neighbors(name) if str(nb).startswith("w")
                )
                assert w_degree == reduction.t

    def test_alice_side_w_degrees_at_most_one(self):
        reduction, _ = _build(7)
        from repro.graphs import Graph

        alice_graph = Graph.from_edges(reduction.alice_edges) if reduction.alice_edges else Graph()
        for v in alice_graph.vertices():
            if str(v).startswith("w"):
                assert alice_graph.degree(v) <= 1

    def test_validates_parameters(self):
        instance = IndexInstance.random(100, seed=1)
        with pytest.raises(ValueError):
            build_index_reduction(instance, n=5, t=4, p=0.1)  # 100 > 25
        with pytest.raises(ValueError):
            build_index_reduction(IndexInstance.random(4, seed=1), n=4, t=4, p=0.0)

    def test_failure_event_raised_when_budget_negative(self):
        # p close to 1 makes b_u* + b_v* > T almost surely
        instance = IndexInstance.random(4, seed=2)
        with pytest.raises(ReductionFailure):
            for seed in range(50):
                build_index_reduction(instance, n=4, t=3, p=0.95, seed=seed)


class TestProtocol:
    """The protocol demonstrates the lower bound's *tradeoff*, not a
    win for the sub-linear algorithm: the reduction conditions on the
    special matrix token being Alice's, so it always arrives in the
    short Alice segment — the exact adversarial placement the
    Omega(m/sqrt(T)) bound says low-space algorithms cannot survive.
    A high-communication (store-everything) protocol decides INDEX
    perfectly; the sub-linear algorithm systematically misses the
    planted bit."""

    def test_high_communication_protocol_solves_index(self):
        from repro.baselines import ExactTriangleStream

        correct = 0
        trials = 8
        for seed in range(trials):
            reduction, instance = _build(seed, n=8, t=16, length=16, p=0.1)
            outcome = run_index_protocol(
                reduction, ExactTriangleStream, seed=seed
            )
            correct += outcome.answered == instance.answer
            # store-everything communication ~ m = Theta(n T)
            assert outcome.communication_items >= reduction.t * reduction.n
        assert correct == trials

    def test_sublinear_algorithm_misses_planted_bit(self):
        """Every bit=1 instance defeats the one-pass algorithm: the
        heavy edge hides at the stream's start, inside every level
        prefix — the event Lemma 2.3 charges for, made certain by the
        reduction's conditioning."""
        missed = 0
        ones = 0
        for seed in range(12):
            reduction, instance = _build(seed, n=8, t=16, length=16, p=0.1)
            if instance.answer != 1:
                continue
            ones += 1
            outcome = run_index_protocol(
                reduction,
                lambda: TriangleRandomOrder(t_guess=16, epsilon=0.3, seed=3),
                seed=seed,
            )
            missed += outcome.answered == 0
        assert ones >= 2
        assert missed >= ones - 1

    def test_outcome_reports_communication(self):
        reduction, _ = _build(1, n=8, t=16, length=16)
        outcome = run_index_protocol(
            reduction,
            lambda: TriangleRandomOrder(t_guess=16, epsilon=0.3, seed=1),
            seed=4,
        )
        assert outcome.communication_items > 0
        assert outcome.answered in (0, 1)
