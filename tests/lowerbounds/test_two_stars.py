"""The Section 5.4 two-star construction and DISJ reduction."""

import pytest

from repro.core import FourCycleDistinguisher
from repro.graphs import four_cycle_count, triangle_count
from repro.lowerbounds import (
    DisjointnessInstance,
    build_two_stars,
    solve_disjointness_with_distinguisher,
)


class TestConstruction:
    def test_validates_k(self):
        with pytest.raises(ValueError):
            build_two_stars(DisjointnessInstance(s1=[1], s2=[1]), k=1)

    @pytest.mark.parametrize("seed", range(6))
    def test_cycle_count_formula(self, seed):
        instance = DisjointnessInstance.random(20, seed=seed)
        construction = build_two_stars(instance, k=6)
        assert four_cycle_count(construction.graph) == construction.expected_four_cycles

    def test_disjoint_strings_give_cycle_free_graph(self):
        instance = DisjointnessInstance.random_with_answer(25, 0, seed=3)
        construction = build_two_stars(instance, k=8)
        assert four_cycle_count(construction.graph) == 0

    def test_intersecting_strings_give_many_cycles(self):
        instance = DisjointnessInstance.random_with_answer(25, 1, seed=3)
        construction = build_two_stars(instance, k=8)
        assert four_cycle_count(construction.graph) >= 8 * 7 // 2

    def test_graph_is_triangle_free(self):
        instance = DisjointnessInstance.random(20, seed=2)
        construction = build_two_stars(instance, k=5)
        assert triangle_count(construction.graph) == 0

    def test_stream_edges_cover_graph(self):
        instance = DisjointnessInstance.random(15, seed=4)
        construction = build_two_stars(instance, k=4)
        assert len(construction.stream_edges()) == construction.graph.num_edges


class TestReduction:
    def test_protocol_solves_disjointness(self):
        correct = 0
        trials = 10
        for seed in range(trials):
            answer = seed % 2
            instance = DisjointnessInstance.random_with_answer(30, answer, seed=seed)
            decided, _space = solve_disjointness_with_distinguisher(
                instance,
                k=12,
                distinguisher_factory=lambda t: FourCycleDistinguisher(
                    t_guess=t, c=3.0, seed=99
                ),
                seed=seed,
            )
            correct += decided == answer
        assert correct >= trials - 2

    def test_no_instances_never_fooled(self):
        """One-sided: disjoint strings can never produce a YES."""
        for seed in range(6):
            instance = DisjointnessInstance.random_with_answer(30, 0, seed=seed)
            decided, _ = solve_disjointness_with_distinguisher(
                instance,
                k=10,
                distinguisher_factory=lambda t: FourCycleDistinguisher(
                    t_guess=t, c=3.0, seed=seed
                ),
                seed=seed,
            )
            assert decided == 0
