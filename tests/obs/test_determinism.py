"""Serial vs parallel telemetry equivalence.

The tentpole guarantee: running the same seed schedule with ``n_jobs=1``
and ``n_jobs>1`` inside a telemetry session produces an *identical*
aggregated MetricsRegistry and an identical span forest (same count,
same multiset of normalized paths).  Wall/CPU durations are inherently
nondeterministic and live only in span records, so they are excluded —
everything else must match bit-for-bit.
"""

from collections import Counter as TallyCounter

from repro import obs
from repro.core import TriangleRandomOrder
from repro.experiments import build_workload, make_factory, run_trials
from repro.obs.report import normalize_path
from repro.streams import RandomOrderStream


def _traced_run(n_jobs):
    workload = build_workload(
        "light-triangles", n=240, num_triangles=40, noise_edges=200
    )
    algorithm = make_factory(
        TriangleRandomOrder, t_guess=workload.triangles, epsilon=0.4
    )
    stream = make_factory(RandomOrderStream, graph=workload.graph)
    with obs.session(collect_env=False) as telemetry:
        stats = run_trials(
            algorithm,
            stream,
            truth=workload.triangles,
            trials=4,
            base_seed=7,
            n_jobs=n_jobs,
        )
        snapshot = telemetry.metrics.snapshot()
        spans = list(telemetry.tracer.records)
        runs = list(telemetry.runs)
    return stats, snapshot, spans, runs


class TestSerialParallelTelemetry:
    def test_identical_metrics_and_span_forest(self):
        serial_stats, serial_metrics, serial_spans, serial_runs = _traced_run(1)
        parallel_stats, parallel_metrics, parallel_spans, parallel_runs = _traced_run(2)

        # the underlying trial results are bit-identical ...
        assert serial_stats.estimates == parallel_stats.estimates
        assert serial_stats.space_items == parallel_stats.space_items

        # ... the aggregated registry is bit-identical ...
        assert serial_metrics == parallel_metrics
        assert serial_metrics["counters"]["stream.passes"] == 4
        assert serial_metrics["counters"]["stream.edges_consumed"] > 0

        # ... and the span forest matches: same count, same paths.
        assert len(serial_spans) == len(parallel_spans)
        assert [s["path"] for s in serial_spans] == [
            s["path"] for s in parallel_spans
        ]
        assert TallyCounter(
            (s["kind"], normalize_path(s["path"])) for s in serial_spans
        ) == TallyCounter(
            (s["kind"], normalize_path(s["path"])) for s in parallel_spans
        )

        # run records differ only in their timing column and n_jobs
        def scrub(record):
            return {
                key: value
                for key, value in record.items()
                if key not in ("wall_seconds", "n_jobs")
            }

        assert [scrub(r) for r in serial_runs] == [scrub(r) for r in parallel_runs]

    def test_trial_spans_nest_under_runner(self):
        _stats, _metrics, spans, _runs = _traced_run(2)
        paths = {normalize_path(s["path"]) for s in spans}
        assert "run_trials" in paths
        assert "run_trials/trial[*]" in paths
        assert "run_trials/trial[*]/pass1:stream" in paths

    def test_no_capture_without_session(self):
        workload = build_workload(
            "light-triangles", n=120, num_triangles=10, noise_edges=40
        )
        stats = run_trials(
            make_factory(
                TriangleRandomOrder, t_guess=workload.triangles, epsilon=0.5
            ),
            make_factory(RandomOrderStream, graph=workload.graph),
            truth=workload.triangles,
            trials=2,
            base_seed=1,
        )
        assert all(result.telemetry is None for result in stats.results)
        assert not obs.current().enabled


class TestSweepTelemetry:
    def test_sweep_points_captured_identically(self):
        from repro.experiments.sweeps import run_sweep

        def measure(value):
            return {"y": value * 2}

        def run(n_jobs):
            with obs.session(collect_env=False) as telemetry:
                result = run_sweep("T", [1.0, 2.0, 3.0], measure, n_jobs=n_jobs)
                return result, telemetry.metrics.snapshot(), [
                    s["path"] for s in telemetry.tracer.records
                ]

        serial_result, serial_metrics, serial_paths = run(1)
        # measure is a local closure -> parallel falls back to serial
        # in-process execution, which must still capture identically.
        assert serial_metrics == {"counters": {}, "gauges": {}, "histograms": {}}
        assert "sweep:T/point[0]" in serial_paths
        assert "sweep:T" in serial_paths
        assert [p.outputs["y"] for p in serial_result.points] == [2.0, 4.0, 6.0]
