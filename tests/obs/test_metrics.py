"""MetricsRegistry: counters, gauges, histograms, snapshot/merge."""

import pickle

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("edges", 3)
        registry.inc("edges")
        assert registry.counter("edges").value == 4

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("edges", -1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("saturation", 0.25)
        registry.set_gauge("saturation", 0.75)
        assert registry.gauge("saturation").value == 0.75

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1, 5, 3):
            registry.observe("space", value)
        histogram = registry.histogram("space")
        assert histogram.count == 3
        assert histogram.mean == 3
        assert histogram.as_dict() == {"count": 3, "sum": 9, "min": 1, "max": 5}


class TestSnapshotMerge:
    def test_snapshot_is_plain_and_picklable(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 4)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}

    def test_merge_combines(self):
        left = MetricsRegistry()
        left.inc("c", 2)
        left.observe("h", 1)
        right = MetricsRegistry()
        right.inc("c", 3)
        right.observe("h", 9)
        right.set_gauge("g", 0.5)
        left.merge(right.snapshot())
        assert left.counter("c").value == 5
        assert left.gauge("g").value == 0.5
        assert left.histogram("h").as_dict() == {
            "count": 2,
            "sum": 10,
            "min": 1,
            "max": 9,
        }

    def test_merge_order_invariance(self):
        # The serial/parallel determinism guarantee rests on merges of
        # the same captures producing the same registry.
        captures = []
        for i in range(3):
            registry = MetricsRegistry()
            registry.inc("c", i + 1)
            registry.observe("h", 10 * (i + 1))
            captures.append(registry.snapshot())
        forward = MetricsRegistry()
        for capture in captures:
            forward.merge(capture)
        backward = MetricsRegistry()
        for capture in reversed(captures):
            backward.merge(capture)
        assert forward.snapshot() == backward.snapshot()

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha")
        assert list(registry.snapshot()["counters"]) == ["alpha", "zeta"]


class TestNullMetrics:
    def test_noop_interface(self):
        NULL_METRICS.inc("x", 5)
        NULL_METRICS.set_gauge("y", 1.0)
        NULL_METRICS.observe("z", 2.0)
        assert len(NULL_METRICS) == 0
