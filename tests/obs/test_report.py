"""The trace report: phase grouping, budget flags, end-to-end render."""

from repro.obs.report import (
    budget_rows,
    load_records,
    normalize_path,
    phase_rows,
    render_report,
    report_file,
)


def _span(path, kind="pass", wall=0.5, cpu=0.4, attrs=None, error=None):
    record = {
        "type": "span",
        "kind": kind,
        "name": path.rsplit("/", 1)[-1],
        "path": path,
        "wall_s": wall,
        "cpu_s": cpu,
    }
    if attrs:
        record["attrs"] = attrs
    if error:
        record["error"] = error
    return record


class TestNormalizePath:
    def test_collapses_every_index(self):
        assert (
            normalize_path("run_trials/trial[3]/copy[12]/pass1")
            == "run_trials/trial[*]/copy[*]/pass1"
        )

    def test_plain_path_unchanged(self):
        assert normalize_path("experiment:E1/run_trials") == "experiment:E1/run_trials"


class TestPhaseRows:
    def test_groups_trials_and_aggregates(self):
        records = [
            _span("run/trial[0]/pass1", wall=1.0, attrs={"space_peak": 10}),
            _span("run/trial[1]/pass1", wall=3.0, attrs={"space_peak": 30}),
            _span("run/trial[1]/pass1", wall=2.0, error="ValueError"),
        ]
        (row,) = phase_rows(records)
        path, kind, count, wall, mean_wall, _cpu, space, errors = row
        assert path == "run/trial[*]/pass1"
        assert count == 3
        assert wall == 6.0
        assert mean_wall == 2.0
        assert space == 30  # max across the group
        assert errors == 1

    def test_ignores_non_span_records(self):
        assert phase_rows([{"type": "metrics"}, {"type": "run"}]) == []


class TestBudgetRows:
    RUN = {
        "type": "run",
        "invocation": "run_trials",
        "algorithm": "algo",
        "truth": 100.0,
        "epsilon": 0.3,
        "estimates": [105.0, 160.0],
        "space_items": [50, 80],
        "wall_seconds": [0.01, 0.02],
    }

    def test_defaults_to_run_epsilon(self):
        rows, flagged = budget_rows(self.RUN)
        assert flagged == 1
        assert rows[0][-1] == ""
        assert rows[1][-1] == "ERROR>budget"

    def test_explicit_budgets_override(self):
        rows, flagged = budget_rows(self.RUN, error_budget=1.0, space_budget=60)
        assert flagged == 1
        assert rows[1][-1] == "SPACE>budget"

    def test_both_flags_combine(self):
        rows, flagged = budget_rows(self.RUN, error_budget=0.01, space_budget=10)
        assert flagged == 2
        assert rows[0][-1] == "ERROR>budget SPACE>budget"

    def test_no_truth_no_flags(self):
        rows, flagged = budget_rows({"estimates": [1.0], "epsilon": 0.1})
        assert flagged == 0
        assert rows[0][2] == "-"


class TestEndToEnd:
    def test_report_on_real_session(self, tmp_path, capsys):
        from repro import obs

        path = tmp_path / "trace.jsonl"
        with obs.session(path=str(path), config={"seed": 0}) as telemetry:
            with telemetry.tracer.span("experiment:T", kind="experiment"):
                with telemetry.tracer.span("trial[0]", kind="trial") as span:
                    span.set("space_peak", 7)
                telemetry.metrics.inc("stream.passes", 2)
            telemetry.record_run(
                "run_trials",
                {
                    "algorithm": "demo",
                    "truth": 10.0,
                    "epsilon": 0.5,
                    "estimates": [11.0, 99.0],
                    "space_items": [7, 7],
                    "wall_seconds": [0.001, 0.001],
                },
            )
        flagged = report_file(str(path))
        out = capsys.readouterr().out
        assert flagged == 1
        assert "Run manifest" in out
        assert "Per-phase timing / space" in out
        assert "experiment:T/trial[*]" in out
        assert "Trial budget check: demo" in out
        assert "ERROR>budget" in out
        assert "stream.passes" in out

    def test_load_records_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "span"}\n\n{"type": "metrics"}\n')
        assert len(load_records(str(path))) == 2

    def test_render_empty_trace(self, capsys):
        assert render_report([]) == 0
        out = capsys.readouterr().out
        assert "no manifest" in out
        assert "no span records" in out
