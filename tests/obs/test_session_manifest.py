"""Sessions (active-telemetry scoping, jsonl output) and manifests."""

import json
import pickle

from repro import obs


class TestCurrentAndSession:
    def test_default_is_null(self):
        telemetry = obs.current()
        assert not telemetry.enabled
        assert telemetry.records() == []

    def test_session_activates_and_restores(self):
        assert not obs.current().enabled
        with obs.session(collect_env=False) as telemetry:
            assert obs.current() is telemetry
            assert telemetry.enabled
        assert not obs.current().enabled

    def test_sessions_nest(self):
        with obs.session(collect_env=False) as outer:
            with obs.session(collect_env=False) as inner:
                assert obs.current() is inner
            assert obs.current() is outer

    def test_writes_jsonl_on_exit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.session(path=str(path), config={"seed": 1}) as telemetry:
            with telemetry.tracer.span("work", kind="phase"):
                telemetry.metrics.inc("stream.edges_consumed", 10)
        records = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        kinds = [record["type"] for record in records]
        assert kinds[0] == "manifest"
        assert kinds[-1] == "metrics"
        assert any(record["type"] == "span" for record in records)
        metrics = records[-1]["metrics"]
        assert metrics["counters"]["stream.edges_consumed"] == 10

    def test_trace_written_even_on_error(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        try:
            with obs.session(path=str(path), collect_env=False) as telemetry:
                with telemetry.tracer.span("doomed"):
                    raise RuntimeError("mid-run crash")
        except RuntimeError:
            pass
        assert path.exists()
        lines = path.read_text().splitlines()
        assert any('"error": "RuntimeError"' in line for line in lines)


class TestCaptureAbsorb:
    def test_capture_exports_picklable(self):
        with obs.capture(index=3) as telemetry:
            with telemetry.tracer.span("trial[3]", kind="trial"):
                telemetry.metrics.inc("c", 2)
        export = telemetry.export(3)
        restored = pickle.loads(pickle.dumps(export))
        assert restored.index == 3
        assert restored.metrics["counters"]["c"] == 2
        assert restored.spans[0]["path"] == "trial[3]"

    def test_absorb_none_is_noop(self):
        with obs.session(collect_env=False) as telemetry:
            telemetry.absorb(None)
            assert telemetry.tracer.span_count() == 0

    def test_absorb_merges_metrics_and_spans(self):
        with obs.capture(index=0) as worker:
            with worker.tracer.span("trial[0]", kind="trial"):
                worker.metrics.inc("c", 5)
        export = worker.export(0)
        with obs.session(collect_env=False) as parent:
            with parent.tracer.span("run_trials", kind="runner"):
                parent.absorb(export)
            assert parent.metrics.counter("c").value == 5
            paths = [record["path"] for record in parent.tracer.records]
            assert "run_trials/trial[0]" in paths


class TestManifest:
    def test_collect_manifest_fields(self):
        manifest = obs.collect_manifest(config={"seed": 0})
        record = manifest.as_record()
        assert record["type"] == "manifest"
        for key in ("created_utc", "git_sha", "python", "platform", "argv"):
            assert key in record
        assert record["config"] == {"seed": 0}

    def test_record_run_lands_in_manifest_and_records(self):
        with obs.session(config={"x": 1}) as telemetry:
            telemetry.record_run(
                "run_trials",
                {"trials": 3, "estimates": [1.0, 2.0], "truth": 2.0},
            )
            records = telemetry.records()
        runs = [record for record in records if record["type"] == "run"]
        assert runs[0]["trials"] == 3
        manifest = records[0]
        (invocation,) = manifest["invocations"]
        # list-valued payload entries are summarized away in the manifest
        assert "estimates" not in invocation
        assert invocation["trials"] == 3

    def test_git_sha_resolves_in_this_repo(self):
        sha = obs.git_sha()
        assert sha == "unknown" or len(sha) >= 7
