"""Tracer: span nesting, paths, error capture, absorb grafting."""

import pytest

from repro.obs import NULL_TRACER, Tracer


class TestSpans:
    def test_nested_paths(self):
        tracer = Tracer()
        with tracer.span("outer", kind="experiment"):
            with tracer.span("inner", kind="pass"):
                pass
        # spans are recorded in completion order: inner closes first
        inner, outer = tracer.records
        assert inner["path"] == "outer/inner"
        assert inner["kind"] == "pass"
        assert outer["path"] == "outer"
        assert outer["kind"] == "experiment"

    def test_timings_recorded(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(1000))
        record = tracer.records[0]
        assert record["wall_s"] >= 0
        assert record["cpu_s"] >= 0

    def test_attrs_at_entry_and_set(self):
        tracer = Tracer()
        with tracer.span("p", kind="pass", seed=7) as span:
            span.set("space_peak", 42)
        attrs = tracer.records[0]["attrs"]
        assert attrs == {"seed": 7, "space_peak": 42}

    def test_error_recorded_and_stack_unwound(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.records[0]["error"] == "ValueError"
        assert tracer.current_path == ""

    def test_absorb_grafts_under_current_path(self):
        worker = Tracer()
        with worker.span("trial[2]", kind="trial"):
            with worker.span("pass1:stream", kind="pass"):
                pass
        parent = Tracer()
        with parent.span("run_trials", kind="runner"):
            parent.absorb(worker.records)
        paths = [record["path"] for record in parent.records]
        assert "run_trials/trial[2]/pass1:stream" in paths
        assert "run_trials/trial[2]" in paths
        assert parent.span_count() == 3

    def test_absorb_at_root_keeps_paths(self):
        worker = Tracer()
        with worker.span("a"):
            pass
        parent = Tracer()
        parent.absorb(worker.records)
        assert parent.records[0]["path"] == "a"


class TestNullTracer:
    def test_noop_span(self):
        with NULL_TRACER.span("x", kind="pass") as span:
            span.set("anything", 1)
        assert NULL_TRACER.span_count() == 0
        assert NULL_TRACER.current_path == ""

    def test_shared_handle_no_allocation(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
