"""atomic_write: all-or-nothing artifact writes."""

from __future__ import annotations

import os

import pytest

from repro.resilience import atomic_write


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as handle:
            handle.write("hello\n")
        assert target.read_text() == "hello\n"

    def test_failure_leaves_no_file(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert not target.exists()

    def test_failure_preserves_previous_artifact(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("previous complete artifact\n")
        with pytest.raises(ValueError):
            with atomic_write(target) as handle:
                handle.write("half a new ")
                raise ValueError("interrupted")
        assert target.read_text() == "previous complete artifact\n"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as handle:
            handle.write("ok")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_write(target) as handle:
            handle.write("new")
        assert target.read_text() == "new"


class TestExportsAreAtomic:
    def test_export_json_interrupted_keeps_previous(self, tmp_path, monkeypatch):
        import json

        from repro.experiments import export_json, load_json

        target = tmp_path / "records.json"
        export_json([{"a": 1}], target)
        assert load_json(target) == [{"a": 1}]

        class Unserializable:
            pass

        with pytest.raises(TypeError):
            export_json([{"a": Unserializable()}], target)
        # The torn write never reached the target.
        assert load_json(target) == [{"a": 1}]
        assert json.loads(target.read_text())

    def test_export_csv_atomic(self, tmp_path):
        from repro.experiments import export_csv

        target = tmp_path / "records.csv"
        assert export_csv([{"a": 1, "b": 2}], target) == 1
        assert target.read_text().splitlines()[0] == "a,b"
        assert os.listdir(tmp_path) == ["records.csv"]

    def test_trace_file_written_atomically(self, tmp_path):
        from repro import obs as _obs

        path = tmp_path / "trace.jsonl"
        with _obs.session(path=str(path)) as telemetry:
            telemetry.metrics.inc("x")
        lines = path.read_text().splitlines()
        assert lines  # manifest + metrics records
        assert os.listdir(tmp_path) == ["trace.jsonl"]
