"""Checkpoint/resume: config hashing, unit memoization, interrupted runs."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    experiment_checkpoint_key,
    geometric_range,
    run_experiment,
    run_sweep,
)
from repro.resilience import (
    NULL_CHECKPOINT,
    Checkpoint,
    CheckpointContext,
    CheckpointMismatchError,
    config_hash,
    is_missing,
)


class TestConfigHash:
    def test_stable_and_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert len(config_hash({"a": 1})) == 16

    def test_distinguishes_configs(self):
        assert config_hash({"seed": 0}) != config_hash({"seed": 1})


class TestCheckpoint:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = Checkpoint(path, key="abc")
        store.record("unit-1", {"x": 1})
        store.record("unit-2", [1, 2, 3])
        assert store.completed == ["unit-1", "unit-2"]

        resumed = Checkpoint(path, key="abc", resume=True)
        assert resumed.resumed
        assert "unit-1" in resumed
        assert resumed.get("unit-1") == {"x": 1}
        assert resumed.get("unit-2") == [1, 2, 3]
        assert resumed.completed == ["unit-1", "unit-2"]

    def test_fresh_run_discards_existing(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        Checkpoint(path, key="abc").record("unit-1", 1)
        fresh = Checkpoint(path, key="abc")  # resume=False
        assert not fresh.resumed
        assert "unit-1" not in fresh

    def test_key_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        Checkpoint(path, key="oldkey").record("unit-1", 1)
        with pytest.raises(CheckpointMismatchError, match="oldkey"):
            Checkpoint(path, key="newkey", resume=True)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text('{"not": "a checkpoint"}\n')
        with pytest.raises(CheckpointMismatchError, match="bad header"):
            Checkpoint(path, key="abc", resume=True)

    def test_file_is_json_lines_with_header(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        Checkpoint(path, key="abc").record("u", {"v": 2})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "checkpoint"
        assert lines[0]["key"] == "abc"
        assert lines[1] == {"type": "unit", "name": "u", "payload": {"v": 2}}

    def test_lineage(self, tmp_path):
        store = Checkpoint(tmp_path / "ck.jsonl", key="abc")
        store.record("u", 1)
        lineage = store.lineage()
        assert lineage["key"] == "abc"
        assert lineage["cached_units"] == 1
        assert lineage["resumed"] is False


class TestCheckpointContext:
    def test_null_context_runs_everything(self):
        calls = []
        assert NULL_CHECKPOINT.unit("a", lambda: calls.append(1) or 7) == 7
        assert NULL_CHECKPOINT.unit("a", lambda: calls.append(1) or 8) == 8
        assert len(calls) == 2
        assert not NULL_CHECKPOINT.active
        assert NULL_CHECKPOINT.lineage() is None

    def test_lookup_sentinel(self, tmp_path):
        ctx = CheckpointContext(Checkpoint(tmp_path / "ck.jsonl", key="k"))
        assert is_missing(ctx.lookup("nope"))
        ctx.store("yes", 5)
        assert ctx.lookup("yes") == 5

    def test_unit_memoizes_across_contexts(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        calls = []

        def thunk():
            calls.append(1)
            return {"value": 42}

        ctx = CheckpointContext(Checkpoint(path, key="k"))
        assert ctx.unit("work", thunk) == {"value": 42}
        assert ctx.unit("work", thunk) == {"value": 42}
        assert len(calls) == 1
        assert (ctx.hits, ctx.misses) == (1, 1)

        resumed = CheckpointContext(Checkpoint(path, key="k", resume=True))
        assert resumed.unit("work", thunk) == {"value": 42}
        assert len(calls) == 1
        assert resumed.hits == 1


class TestInterruptedExperimentResumes:
    def test_resume_is_byte_identical(self, tmp_path):
        path = tmp_path / "e11.jsonl"
        key = experiment_checkpoint_key("E11", seed=3)
        reference = run_experiment("E11", seed=3)

        class SimulatedKill(Exception):
            pass

        # Die after the first completed unit, mid-run.
        ctx = CheckpointContext(Checkpoint(path, key=key))
        real_unit = ctx.unit
        completed = {"n": 0}

        def dying_unit(name, thunk):
            if completed["n"] >= 1:
                raise SimulatedKill(name)
            completed["n"] += 1
            return real_unit(name, thunk)

        ctx.unit = dying_unit
        with pytest.raises(SimulatedKill):
            run_experiment("E11", seed=3, checkpoint=ctx)

        resumed_ctx = CheckpointContext(Checkpoint(path, key=key, resume=True))
        resumed = run_experiment("E11", seed=3, checkpoint=resumed_ctx)
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert resumed_ctx.hits == 1
        assert resumed_ctx.misses >= 1

    def test_wrong_seed_cannot_reuse_checkpoint(self, tmp_path):
        path = tmp_path / "e11.jsonl"
        Checkpoint(path, key=experiment_checkpoint_key("E11", seed=3)).record("x", 1)
        with pytest.raises(CheckpointMismatchError):
            Checkpoint(path, key=experiment_checkpoint_key("E11", seed=4), resume=True)


class TestSweepCheckpoint:
    def _run(self, checkpoint, calls):
        def measure(value):
            calls.append(value)
            return {"error": 1.0 / value, "space": float(value)}

        return run_sweep(
            parameter_name="knob",
            values=geometric_range(2, 16, 4),
            measure=measure,
            checkpoint=checkpoint,
        )

    def test_sweep_resumes_from_cache(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        calls = []
        first = self._run(CheckpointContext(Checkpoint(path, key="sweepkey")), calls)
        assert len(calls) == len(first.points)

        ctx = CheckpointContext(Checkpoint(path, key="sweepkey", resume=True))
        second = self._run(ctx, calls)
        assert len(calls) == len(first.points)  # nothing re-measured
        assert ctx.hits == len(first.points)
        assert [p.parameter for p in second.points] == [
            p.parameter for p in first.points
        ]
        assert [p.outputs for p in second.points] == [p.outputs for p in first.points]
