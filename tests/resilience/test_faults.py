"""FaultPlan / FaultyStream: seeded, replayable stream corruption."""

from __future__ import annotations

import pytest

from repro import obs as _obs
from repro.graphs import Graph
from repro.resilience import FaultPlan, FaultyStream
from repro.streams import (
    POLICY_REPAIR,
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
    ValidatedStream,
)

EDGES = [(i, i + 1) for i in range(40)] + [(0, j) for j in range(2, 20)]


def _edge_stream():
    return ArbitraryOrderStream(EDGES)


def _graph():
    return Graph.from_edges(EDGES)


class TestFaultPlan:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="duplicate_rate"):
            FaultPlan(duplicate_rate=1.5)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=-0.1)

    def test_mixed_splits_rate_evenly(self):
        plan = FaultPlan.mixed(0.2)
        assert plan.duplicate_rate == pytest.approx(0.05)
        assert plan.self_loop_rate == pytest.approx(0.05)
        assert plan.reverse_rate == pytest.approx(0.05)
        assert plan.drop_rate == pytest.approx(0.05)
        assert plan.truncate_fraction == 0.0

    def test_mixed_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="fault rate"):
            FaultPlan.mixed(1.2)

    def test_is_zero(self):
        assert FaultPlan().is_zero
        assert FaultPlan.mixed(0.0).is_zero
        assert not FaultPlan(duplicate_rate=0.1).is_zero
        assert not FaultPlan(shuffle_blocks=True).is_zero


class TestFaultyEdgeStream:
    def test_zero_plan_is_passthrough(self):
        faulty = FaultyStream(_edge_stream(), FaultPlan(), seed=3)
        assert list(faulty.edges()) == EDGES
        assert faulty.injected == {}

    def test_same_seed_replays_identically(self):
        plan = FaultPlan.mixed(0.3)
        first = FaultyStream(_edge_stream(), plan, seed=11)
        second = FaultyStream(_edge_stream(), plan, seed=11)
        assert list(first.edges()) == list(second.edges())
        assert first.injected == second.injected

    def test_identical_across_passes(self):
        faulty = FaultyStream(_edge_stream(), FaultPlan.mixed(0.3), seed=11)
        assert list(faulty.edges()) == list(faulty.edges())
        assert faulty.passes_taken == 2

    def test_different_seeds_differ(self):
        plan = FaultPlan.mixed(0.4)
        a = FaultyStream(_edge_stream(), plan, seed=1)
        b = FaultyStream(_edge_stream(), plan, seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_injected_counts_populated(self):
        faulty = FaultyStream(_edge_stream(), FaultPlan.mixed(0.8), seed=5)
        assert set(faulty.injected) & {"duplicate", "self_loop", "reverse", "drop"}
        assert all(count > 0 for count in faulty.injected.values())

    def test_truncate_cuts_suffix(self):
        faulty = FaultyStream(
            _edge_stream(), FaultPlan(truncate_fraction=0.5), seed=0
        )
        assert faulty.stream_length == len(EDGES) - len(EDGES) // 2
        assert list(faulty.edges()) == EDGES[: faulty.stream_length]
        assert faulty.injected["truncated_tokens"] == len(EDGES) // 2

    def test_declared_shape_stays_clean(self):
        # Algorithms are told the m the pipeline believes, while the
        # actual token count disagrees — that is the failure under study.
        faulty = FaultyStream(_edge_stream(), FaultPlan(drop_rate=0.9), seed=2)
        assert faulty.num_edges == len(EDGES)
        assert faulty.stream_length < len(EDGES)
        assert not faulty.provides_adjacency

    def test_reverse_swaps_endpoints(self):
        faulty = FaultyStream(
            ArbitraryOrderStream([(0, 1)]), FaultPlan(reverse_rate=1.0), seed=0
        )
        assert list(faulty.edges()) == [(1, 0)]
        assert faulty.injected["reverse"] == 1

    def test_emits_injected_metrics(self):
        with _obs.session() as telemetry:
            FaultyStream(_edge_stream(), FaultPlan.mixed(0.8), seed=5)
            counters = telemetry.metrics.snapshot()["counters"]
        assert any(name.startswith("faults.injected.") for name in counters)

    def test_random_order_base_composes(self):
        faulty = FaultyStream(
            RandomOrderStream(_graph(), seed=4), FaultPlan.mixed(0.2), seed=9
        )
        repaired = ValidatedStream(faulty, POLICY_REPAIR)
        clean = {tuple(sorted(edge)) for edge in repaired.edges()}
        assert clean <= {tuple(sorted(edge)) for edge in EDGES}


class TestFaultyAdjacencyStream:
    def test_provides_adjacency(self):
        faulty = FaultyStream(
            AdjacencyListStream(_graph(), seed=0), FaultPlan(), seed=0
        )
        assert faulty.provides_adjacency
        blocks = list(faulty.adjacency_lists())
        assert sum(len(ns) for _, ns in blocks) == 2 * len(EDGES)

    def test_split_block(self):
        faulty = FaultyStream(
            AdjacencyListStream(_graph(), seed=0),
            FaultPlan(split_block_rate=1.0),
            seed=0,
        )
        blocks = list(faulty.adjacency_lists())
        vertices = [v for v, _ in blocks]
        assert len(vertices) > len(set(vertices))
        assert faulty.injected["split_block"] > 0

    def test_shuffle_blocks(self):
        base = lambda: AdjacencyListStream(_graph(), seed=0)  # noqa: E731
        clean = [v for v, _ in base().adjacency_lists()]
        faulty = FaultyStream(base(), FaultPlan(shuffle_blocks=True), seed=3)
        shuffled = [v for v, _ in faulty.adjacency_lists()]
        assert sorted(shuffled) == sorted(clean)
        assert shuffled != clean
        assert faulty.injected["shuffled_blocks"] == len(clean)

    def test_truncate_can_die_mid_block(self):
        faulty = FaultyStream(
            AdjacencyListStream(_graph(), seed=0),
            FaultPlan(truncate_fraction=0.5),
            seed=0,
        )
        total = sum(len(ns) for _, ns in faulty.adjacency_lists())
        assert total == faulty.stream_length
        assert total == 2 * len(EDGES) - len(EDGES)

    def test_edge_source_has_no_blocks(self):
        faulty = FaultyStream(_edge_stream(), FaultPlan(), seed=0)
        with pytest.raises(TypeError, match="not an adjacency-list source"):
            list(faulty.adjacency_lists())
