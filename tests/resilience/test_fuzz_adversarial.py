"""Seeded adversarial fuzz: corrupted streams through every algorithm.

Satellite guarantee: under ``repair``/``skip`` every core algorithm and
baseline survives duplicated, self-looped, reversed, dropped and
truncated tokens (and split/shuffled adjacency blocks) without
crashing — estimates may be wrong, the process may not die.  Under
``strict`` the corruption is reported as a clean ``ValueError``
(:class:`StreamFaultError`), never an internal crash.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    BeraChakrabartiFourCycles,
    CormodeJowhariTriangles,
    EdgeSamplingFourCycles,
    EdgeSamplingTriangles,
    ExactFourCycleStream,
    ExactTriangleStream,
    TriestBase,
    TriestImpr,
    TwoPassTriangles,
    WedgePairSamplingFourCycles,
)
from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryOnePass,
    FourCycleArbitraryThreePass,
    FourCycleDistinguisher,
    FourCycleL2Sampling,
    FourCycleMoment,
    TriangleRandomOrder,
)
from repro.experiments import build_workload
from repro.resilience import FaultPlan, FaultyStream
from repro.streams import (
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    AdjacencyListStream,
    RandomOrderStream,
    ValidatedStream,
)

TRI = build_workload("light-triangles", n=120, num_triangles=25, noise_edges=80)
C4 = build_workload("sparse-four-cycles", n=150, num_cycles=20, noise_edges=60)

# Aggressive but not degenerate: every fault kind fires on these graphs.
EDGE_PLAN = FaultPlan(
    duplicate_rate=0.1,
    self_loop_rate=0.1,
    reverse_rate=0.1,
    drop_rate=0.1,
    truncate_fraction=0.05,
)
BLOCK_PLAN = FaultPlan(
    duplicate_rate=0.1,
    self_loop_rate=0.1,
    drop_rate=0.1,
    split_block_rate=0.3,
    shuffle_blocks=True,
    truncate_fraction=0.05,
)

# (id, stream model, seed -> algorithm); covers every core algorithm
# and every baseline with a streaming run().
ALGORITHMS = [
    ("mv-triangle-ro", "edge-tri", lambda s: TriangleRandomOrder(
        t_guess=TRI.triangles, epsilon=0.3, seed=s)),
    ("three-pass-c4", "edge-c4", lambda s: FourCycleArbitraryThreePass(
        t_guess=C4.four_cycles, epsilon=0.3, seed=s)),
    ("one-pass-c4", "edge-c4", lambda s: FourCycleArbitraryOnePass(
        t_guess=C4.four_cycles, epsilon=0.3, seed=s)),
    ("distinguisher-c4", "edge-c4", lambda s: FourCycleDistinguisher(
        t_guess=C4.four_cycles, c=2.0, seed=s)),
    ("diamond-c4", "adjacency", lambda s: FourCycleAdjacencyDiamond(
        t_guess=C4.four_cycles, epsilon=0.3, seed=s)),
    ("moment-c4", "adjacency", lambda s: FourCycleMoment(
        t_guess=C4.four_cycles, epsilon=0.3, seed=s)),
    ("l2sampling-c4", "adjacency", lambda s: FourCycleL2Sampling(
        t_guess=C4.four_cycles, epsilon=0.3, seed=s)),
    ("wedge-pair-c4", "adjacency", lambda s: WedgePairSamplingFourCycles(
        wedge_probability=0.5, seed=s)),
    ("cormode-jowhari", "edge-tri", lambda s: CormodeJowhariTriangles(
        t_guess=TRI.triangles)),
    ("two-pass-tri", "edge-tri", lambda s: TwoPassTriangles(
        t_guess=TRI.triangles, epsilon=0.3, seed=s)),
    ("edge-sampling-tri", "edge-tri", lambda s: EdgeSamplingTriangles(
        p=0.5, seed=s)),
    ("edge-sampling-c4", "edge-c4", lambda s: EdgeSamplingFourCycles(
        p=0.5, seed=s)),
    ("triest-base", "edge-tri", lambda s: TriestBase(memory=60, seed=s)),
    ("triest-impr", "edge-tri", lambda s: TriestImpr(memory=60, seed=s)),
    ("bera-chakrabarti-c4", "edge-c4", lambda s: BeraChakrabartiFourCycles(
        t_guess=C4.four_cycles, epsilon=0.3, seed=s)),
    ("exact-tri", "edge-tri", lambda s: ExactTriangleStream()),
    ("exact-c4", "edge-c4", lambda s: ExactFourCycleStream()),
]
IDS = [name for name, _, _ in ALGORITHMS]


def _corrupted_stream(model, policy, seed):
    if model == "adjacency":
        base = AdjacencyListStream(C4.graph, seed=seed)
        plan = BLOCK_PLAN
    else:
        graph = TRI.graph if model == "edge-tri" else C4.graph
        base = RandomOrderStream(graph, seed=seed)
        plan = EDGE_PLAN
    return ValidatedStream(FaultyStream(base, plan, seed=seed + 1000), policy)


@pytest.mark.parametrize("name,model,factory", ALGORITHMS, ids=IDS)
@pytest.mark.parametrize("policy", [POLICY_REPAIR, POLICY_SKIP])
@pytest.mark.parametrize("fuzz_seed", [0, 1])
def test_no_crash_under_lenient_policies(name, model, factory, policy, fuzz_seed):
    stream = _corrupted_stream(model, policy, fuzz_seed)
    result = factory(fuzz_seed).run(stream)
    assert math.isfinite(result.estimate)
    assert result.estimate >= 0.0
    assert result.passes >= 1
    assert result.space_items >= 0


@pytest.mark.parametrize("name,model,factory", ALGORITHMS, ids=IDS)
def test_strict_policy_raises_clean_valueerror(name, model, factory):
    stream = _corrupted_stream(model, POLICY_STRICT, 0)
    with pytest.raises(ValueError):
        factory(0).run(stream)


@pytest.mark.parametrize(
    "name,model,factory",
    [spec for spec in ALGORITHMS if spec[0] in
     ("mv-triangle-ro", "three-pass-c4", "diamond-c4", "triest-impr")],
    ids=["mv-triangle-ro", "three-pass-c4", "diamond-c4", "triest-impr"],
)
def test_fuzzed_runs_are_deterministic(name, model, factory):
    first = factory(5).run(_corrupted_stream(model, POLICY_REPAIR, 5))
    second = factory(5).run(_corrupted_stream(model, POLICY_REPAIR, 5))
    assert first.estimate == second.estimate
    assert first.space_items == second.space_items
