"""The hardened parallel engine: retries, timeouts, crash recovery."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro import obs as _obs
from repro.core import EstimateResult
from repro.experiments import (
    ParallelTrialRunner,
    RetryPolicy,
    derive_retry_seed,
    resolve_n_jobs,
    run_trials,
    seed_schedule,
)
from repro.resilience import (
    SpaceBudgetExceeded,
    TrialRetryError,
    TrialTimeoutError,
)
from repro.streams.meter import SpaceMeter

# seed_schedule hands out base*1000 + small offsets; derived retry seeds
# are 48-bit hashes, so this threshold separates attempt 0 from retries.
DERIVED_MIN = 10**6


def _ok_result(seed, space=3):
    meter = SpaceMeter()
    meter.set("items", space)
    return EstimateResult(
        estimate=float(seed % 97), passes=1, space=meter, algorithm="stub"
    )


class _OkAlgorithm:
    def __init__(self, seed):
        self.seed = seed

    def run(self, stream):
        return _ok_result(self.seed)


class _FlakyAlgorithm(_OkAlgorithm):
    """Fails on the scheduled seed, succeeds on any derived retry seed."""

    def run(self, stream):
        if self.seed < DERIVED_MIN:
            raise RuntimeError(f"flaky failure at seed {self.seed}")
        return _ok_result(self.seed)


class _AlwaysFail(_OkAlgorithm):
    def run(self, stream):
        raise RuntimeError("unconditional failure")


class _BigAlgorithm(_OkAlgorithm):
    def run(self, stream):
        return _ok_result(self.seed, space=1000)


class _BudgetRaiser(_OkAlgorithm):
    def run(self, stream):
        raise SpaceBudgetExceeded("sampler overflowed the reservoir")


class _CrashInWorker(_OkAlgorithm):
    """Kills its process when running inside a pool worker."""

    def run(self, stream):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        return _ok_result(self.seed)


class _SleepFirstAttempt(_OkAlgorithm):
    """Hangs on the scheduled seed; retries (derived seeds) are instant."""

    def run(self, stream):
        if self.seed < DERIVED_MIN:
            time.sleep(2.0)
        return _ok_result(self.seed)


class _AlwaysSleep(_OkAlgorithm):
    def run(self, stream):
        time.sleep(2.0)
        return _ok_result(self.seed)


def _no_stream(seed):
    return None


def _make(cls):
    return cls  # classes are their own seed->instance factories


class TestResolveNJobs:
    """Satellite: non-integer and boolean n_jobs are rejected loudly."""

    def test_all_cores_spellings(self):
        cores = os.cpu_count() or 1
        assert resolve_n_jobs(None) == cores
        assert resolve_n_jobs(0) == cores
        assert resolve_n_jobs(-1) == cores

    def test_positive_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(7) == 7

    @pytest.mark.parametrize("bad", [True, False, 1.5, 2.0, "4", [2]])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(TypeError, match="n_jobs must be a positive int"):
            resolve_n_jobs(bad)

    def test_rejects_negative_below_minus_one(self):
        with pytest.raises(ValueError, match="n_jobs must be a positive int"):
            resolve_n_jobs(-5)


class TestDeriveRetrySeed:
    def test_attempt_zero_is_identity(self):
        assert derive_retry_seed(1234, 0) == 1234

    def test_deterministic_and_distinct(self):
        assert derive_retry_seed(7, 1) == derive_retry_seed(7, 1)
        assert derive_retry_seed(7, 1) != derive_retry_seed(7, 2)
        assert derive_retry_seed(7, 1) != derive_retry_seed(8, 1)

    def test_never_collides_with_schedule(self):
        scheduled = {s for pair in seed_schedule(0, 50) for s in pair}
        scheduled |= {s for pair in seed_schedule(9, 50) for s in pair}
        for seed in (0, 1, 9001):
            for attempt in (1, 2, 3):
                assert derive_retry_seed(seed, attempt) not in scheduled
                assert derive_retry_seed(seed, attempt) >= DERIVED_MIN

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            derive_retry_seed(1, -1)


class TestRetryPolicy:
    def test_default_is_inactive(self):
        assert not RetryPolicy().active

    def test_any_knob_activates(self):
        assert RetryPolicy(max_retries=1).active
        assert RetryPolicy(timeout_seconds=1.0).active
        assert RetryPolicy(space_budget_items=100).active

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="timeout_seconds"):
            RetryPolicy(timeout_seconds=0)
        with pytest.raises(ValueError, match="space_budget_items"):
            RetryPolicy(space_budget_items=0)


class TestRetriesInProcess:
    def test_flaky_trial_retried_with_derived_seed(self):
        runner = ParallelTrialRunner(n_jobs=1, retry=RetryPolicy(max_retries=2))
        results = runner.run(_FlakyAlgorithm, _no_stream, trials=3, base_seed=0)
        assert len(results) == 3
        for i, result in enumerate(results):
            retry = result.details["retry"]
            assert retry["attempt"] == 1
            expected = seed_schedule(0, 3)[i]
            assert retry["algorithm_seed"] == derive_retry_seed(expected[0], 1)
            assert retry["stream_seed"] == derive_retry_seed(expected[1], 1)
            assert any("retried" in note for note in result.details["anomalies"])
        assert [e["kind"] for e in runner.last_events] == ["retry"] * 3

    def test_retries_exhausted_raises_with_seeds(self):
        runner = ParallelTrialRunner(n_jobs=1, retry=RetryPolicy(max_retries=1))
        with pytest.raises(TrialRetryError, match="no retries left"):
            runner.run(_AlwaysFail, _no_stream, trials=1, base_seed=0)

    def test_retry_metrics_emitted(self):
        with _obs.session() as telemetry:
            runner = ParallelTrialRunner(n_jobs=1, retry=RetryPolicy(max_retries=2))
            runner.run(_FlakyAlgorithm, _no_stream, trials=2, base_seed=0)
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["runner.retries"] == 2

    def test_untriggered_policy_matches_fast_path(self):
        hardened = ParallelTrialRunner(n_jobs=1, retry=RetryPolicy(max_retries=3))
        plain = ParallelTrialRunner(n_jobs=1)
        a = hardened.run(_OkAlgorithm, _no_stream, trials=4, base_seed=2)
        b = plain.run(_OkAlgorithm, _no_stream, trials=4, base_seed=2)
        assert [r.estimate for r in a] == [r.estimate for r in b]
        assert all("anomalies" not in r.details for r in a)
        assert runner_details_equal(a, b)


def runner_details_equal(a, b):
    return [r.details for r in a] == [r.details for r in b]


class TestSpaceBudget:
    def test_over_budget_flagged_not_aborted(self):
        runner = ParallelTrialRunner(
            n_jobs=1, retry=RetryPolicy(space_budget_items=10)
        )
        results = runner.run(_BigAlgorithm, _no_stream, trials=2, base_seed=0)
        for result in results:
            assert result.details["space_budget_exceeded"] is True
            assert result.estimate >= 0  # real estimate, not aborted
            assert any(
                "space budget exceeded" in note
                for note in result.details["anomalies"]
            )

    def test_budget_raise_degrades_to_partial(self):
        runner = ParallelTrialRunner(
            n_jobs=1, retry=RetryPolicy(space_budget_items=10)
        )
        results = runner.run(_BudgetRaiser, _no_stream, trials=2, base_seed=0)
        for result in results:
            assert result.details["partial"] is True
            assert result.details["space_budget_exceeded"] is True

    def test_under_budget_untouched(self):
        runner = ParallelTrialRunner(
            n_jobs=1, retry=RetryPolicy(space_budget_items=10)
        )
        results = runner.run(_OkAlgorithm, _no_stream, trials=2, base_seed=0)
        assert all("space_budget_exceeded" not in r.details for r in results)

    def test_budget_flag_metric(self):
        with _obs.session() as telemetry:
            runner = ParallelTrialRunner(
                n_jobs=1, retry=RetryPolicy(space_budget_items=10)
            )
            runner.run(_BigAlgorithm, _no_stream, trials=3, base_seed=0)
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["runner.space_budget_flags"] == 3


class TestRunTrialsIntegration:
    def test_anomalies_surface_in_trial_stats(self):
        stats = run_trials(
            _FlakyAlgorithm,
            _no_stream,
            truth=1.0,
            trials=3,
            base_seed=0,
            retry=RetryPolicy(max_retries=2),
        )
        assert set(stats.anomalies) == {0, 1, 2}
        assert all(
            any("retried" in note for note in notes)
            for notes in stats.anomalies.values()
        )

    def test_partial_results_do_not_break_pass_consistency(self):
        stats = run_trials(
            _BudgetRaiser,
            _no_stream,
            truth=1.0,
            trials=3,
            base_seed=0,
            retry=RetryPolicy(space_budget_items=10),
        )
        assert stats.trials == 3  # the sweep survived
        assert all(
            r.details.get("partial") for r in stats.results
        )

    def test_fault_free_run_has_no_anomalies(self):
        stats = run_trials(
            _OkAlgorithm,
            _no_stream,
            truth=1.0,
            trials=3,
            base_seed=0,
            retry=RetryPolicy(max_retries=2, space_budget_items=10**6),
        )
        assert stats.anomalies == {}


class TestPoolRecovery:
    def test_worker_crash_recovered_in_process(self):
        runner = ParallelTrialRunner(n_jobs=2, retry=RetryPolicy(max_retries=1))
        results = runner.run(_CrashInWorker, _no_stream, trials=2, base_seed=0)
        assert len(results) == 2
        for result in results:
            assert any(
                "worker crash" in note for note in result.details["anomalies"]
            )
        assert any(e["kind"] == "worker_crash" for e in runner.last_events)

    def test_worker_crash_metric(self):
        with _obs.session() as telemetry:
            runner = ParallelTrialRunner(n_jobs=2, retry=RetryPolicy(max_retries=1))
            runner.run(_CrashInWorker, _no_stream, trials=2, base_seed=0)
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["runner.worker_crashes"] >= 1

    def test_timeout_abandons_and_retries(self):
        runner = ParallelTrialRunner(
            n_jobs=2,
            retry=RetryPolicy(max_retries=1, timeout_seconds=0.5),
        )
        results = runner.run(_SleepFirstAttempt, _no_stream, trials=2, base_seed=0)
        assert len(results) == 2
        assert all(r.details["retry"]["attempt"] == 1 for r in results)
        assert any(e["kind"] == "timeout" for e in runner.last_events)

    def test_timeout_with_no_retries_raises(self):
        runner = ParallelTrialRunner(
            n_jobs=2, retry=RetryPolicy(timeout_seconds=0.3)
        )
        with pytest.raises(TrialTimeoutError, match="timeout"):
            runner.run(_AlwaysSleep, _no_stream, trials=2, base_seed=0)

    def test_pool_results_match_serial_under_active_policy(self):
        policy = RetryPolicy(max_retries=1)
        serial = ParallelTrialRunner(n_jobs=1, retry=policy).run(
            _OkAlgorithm, _no_stream, trials=4, base_seed=3
        )
        pooled = ParallelTrialRunner(n_jobs=2, retry=policy).run(
            _OkAlgorithm, _no_stream, trials=4, base_seed=3
        )
        assert [r.estimate for r in serial] == [r.estimate for r in pooled]
        assert runner_details_equal(serial, pooled)
