"""Validation policies: strict / repair / skip, and construction guards."""

from __future__ import annotations

import pytest

from repro.graphs import Graph
from repro.streams import (
    POLICY_REPAIR,
    POLICY_SKIP,
    POLICY_STRICT,
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
    StreamFaultError,
    ValidatedStream,
    check_policy,
)


def _path_graph():
    return Graph.from_edges([(0, 1), (1, 2), (2, 3)])


class TestCheckPolicy:
    def test_accepts_known(self):
        for policy in (POLICY_STRICT, POLICY_REPAIR, POLICY_SKIP):
            assert check_policy(policy) == policy

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown validation policy"):
            check_policy("lenient")


class TestConstructionGuards:
    """Satellite: all three models reject self loops at construction
    under strict, and drop+count them under repair/skip."""

    def test_arbitrary_order_rejects_self_loop(self):
        with pytest.raises(StreamFaultError, match="self loop"):
            ArbitraryOrderStream([(0, 1), (2, 2)])

    def test_arbitrary_order_rejects_duplicate(self):
        with pytest.raises(StreamFaultError, match="duplicate"):
            ArbitraryOrderStream([(0, 1), (1, 0)])

    def test_arbitrary_order_repair_drops(self):
        stream = ArbitraryOrderStream(
            [(0, 1), (2, 2), (1, 0), (1, 2)], policy=POLICY_REPAIR
        )
        assert stream.num_edges == 2
        assert list(stream.edges()) == [(0, 1), (1, 2)]

    def _looped_graph(self):
        # Build adjacency with a self loop by hand: Graph.add_edge
        # refuses loops, so poke the internal structure the way a
        # malformed ingest would.
        graph = _path_graph()
        graph._adj[1].add(1)  # noqa: SLF001 — deliberate corruption
        return graph

    def test_random_order_rejects_self_loop(self):
        with pytest.raises(StreamFaultError, match="self loop"):
            RandomOrderStream(self._looped_graph(), seed=0)

    def test_random_order_repair_drops(self):
        stream = RandomOrderStream(self._looped_graph(), seed=0, policy=POLICY_REPAIR)
        assert sorted(stream.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_adjacency_rejects_self_loop(self):
        with pytest.raises(StreamFaultError, match="self loop"):
            AdjacencyListStream(self._looped_graph(), seed=0)

    def test_adjacency_repair_drops(self):
        stream = AdjacencyListStream(
            self._looped_graph(), seed=0, policy=POLICY_REPAIR
        )
        tokens = list(stream.edges())
        assert (1, 1) not in tokens
        assert stream.stream_length == 6  # 2m for the 3 clean edges

    def test_clean_streams_unaffected_by_policy(self):
        graph = _path_graph()
        strict = RandomOrderStream(graph, seed=5)
        repair = RandomOrderStream(graph, seed=5, policy=POLICY_REPAIR)
        assert list(strict.edges()) == list(repair.edges())


class TestValidatedStreamEdgeTokens:
    def test_passthrough_on_clean_stream(self):
        base = ArbitraryOrderStream([(0, 1), (1, 2)])
        validated = ValidatedStream(base, POLICY_REPAIR)
        assert list(validated.edges()) == [(0, 1), (1, 2)]
        assert validated.fault_counts == {}

    def test_strict_raises_on_duplicate(self):
        base = _RawTokens([(0, 1), (1, 2), (0, 1)])
        validated = ValidatedStream(base, POLICY_STRICT)
        with pytest.raises(StreamFaultError, match="duplicate"):
            list(validated.edges())

    def test_strict_raises_on_self_loop(self):
        base = _RawTokens([(0, 1), (2, 2)])
        validated = ValidatedStream(base, POLICY_STRICT)
        with pytest.raises(StreamFaultError, match="self loop"):
            list(validated.edges())

    def test_repair_canonicalizes_and_dedupes(self):
        base = _RawTokens([(1, 0), (0, 1), (2, 2), (1, 2)])
        validated = ValidatedStream(base, POLICY_REPAIR)
        assert list(validated.edges()) == [(0, 1), (1, 2)]
        assert validated.fault_counts["duplicate"] == 1
        assert validated.fault_counts["self_loop"] == 1
        assert validated.fault_counts["reversed"] == 1

    def test_skip_preserves_arrival_orientation(self):
        base = _RawTokens([(1, 0), (2, 1)])
        validated = ValidatedStream(base, POLICY_SKIP)
        assert list(validated.edges()) == [(1, 0), (2, 1)]

    def test_counts_accumulate_across_passes(self):
        base = _RawTokens([(0, 1), (0, 1)])
        validated = ValidatedStream(base, POLICY_REPAIR)
        list(validated.edges())
        list(validated.edges())
        assert validated.fault_counts["duplicate"] == 2

    def test_strict_tolerates_reversed_orientation(self):
        # Arrival orientation is not an error — (1, 0) is just edge
        # {0, 1} arriving endpoint-swapped.
        base = _RawTokens([(1, 0), (2, 1)])
        validated = ValidatedStream(base, POLICY_STRICT)
        assert list(validated.edges()) == [(0, 1), (1, 2)]
        assert validated.fault_counts["reversed"] == 2


class TestValidatedAdjacency:
    def test_each_edge_twice_is_legitimate(self):
        graph = _path_graph()
        validated = ValidatedStream(AdjacencyListStream(graph, seed=0), POLICY_STRICT)
        blocks = list(validated.adjacency_lists())
        assert sum(len(neighbors) for _, neighbors in blocks) == 2 * graph.num_edges
        assert validated.fault_counts == {}

    def test_split_block_merged_under_repair(self):
        base = _RawBlocks([(0, [1, 2]), (0, [3]), (1, [0]), (2, [0]), (3, [0])])
        validated = ValidatedStream(base, POLICY_REPAIR)
        blocks = list(validated.adjacency_lists())
        assert blocks[0] == (0, [1, 2, 3])
        assert validated.fault_counts["split_block"] == 1

    def test_split_block_strict_raises(self):
        base = _RawBlocks([(0, [1]), (0, [2])])
        validated = ValidatedStream(base, POLICY_STRICT)
        with pytest.raises(StreamFaultError, match="split"):
            list(validated.adjacency_lists())

    def test_duplicate_entry_dropped(self):
        base = _RawBlocks([(0, [1, 1]), (1, [0])])
        validated = ValidatedStream(base, POLICY_REPAIR)
        blocks = list(validated.adjacency_lists())
        assert blocks[0] == (0, [1])
        assert validated.fault_counts["duplicate"] == 1

    def test_self_loop_entry_dropped(self):
        base = _RawBlocks([(0, [0, 1]), (1, [0])])
        validated = ValidatedStream(base, POLICY_REPAIR)
        blocks = list(validated.adjacency_lists())
        assert blocks[0] == (0, [1])
        assert validated.fault_counts["self_loop"] == 1

    def test_provides_adjacency_delegates(self):
        graph = _path_graph()
        assert ValidatedStream(AdjacencyListStream(graph)).provides_adjacency
        assert not ValidatedStream(
            ArbitraryOrderStream([(0, 1)])
        ).provides_adjacency


from repro.streams.models import StreamSource  # noqa: E402


class _RawTokens(StreamSource):
    """A stream source that emits tokens verbatim — no validation."""

    def __init__(self, tokens):
        super().__init__()
        self._raw = list(tokens)

    @property
    def num_vertices(self):
        return len({v for token in self._raw for v in token})

    @property
    def num_edges(self):
        return len(self._raw)

    def _tokens(self):
        return iter(self._raw)


class _RawBlocks(_RawTokens):
    """An adjacency-shaped source emitting handwritten blocks."""

    def __init__(self, blocks):
        super().__init__([(v, u) for v, us in blocks for u in us])
        self._raw_blocks = [(v, list(us)) for v, us in blocks]

    @property
    def provides_adjacency(self):
        return True

    def _blocks(self):
        for v, us in self._raw_blocks:
            yield v, list(us)
