"""AMS F2 sketch: unbiasedness, accuracy, merging."""

import pytest

from repro.sketches import AmsF2Sketch


def _feed(sketch, vector):
    for key, value in vector.items():
        sketch.update(key, value)


class TestAmsF2Sketch:
    def test_validates_layout(self):
        with pytest.raises(ValueError):
            AmsF2Sketch(groups=0)

    def test_exact_on_single_coordinate(self):
        sketch = AmsF2Sketch(groups=3, group_size=4, seed=1)
        sketch.update("only", 7)
        # single coordinate: Y_j = +-7 for every copy, so estimate is 49
        assert sketch.estimate() == pytest.approx(49.0)

    def test_mean_near_f2(self):
        vector = {i: (i % 5) + 1 for i in range(40)}
        f2 = sum(v * v for v in vector.values())
        estimates = []
        for seed in range(30):
            sketch = AmsF2Sketch(groups=1, group_size=20, seed=seed)
            _feed(sketch, vector)
            estimates.append(sketch.estimate())
        average = sum(estimates) / len(estimates)
        assert abs(average - f2) / f2 < 0.25

    def test_median_of_means_accuracy(self):
        vector = {i: 3 for i in range(50)}
        f2 = 9 * 50
        sketch = AmsF2Sketch(groups=5, group_size=30, seed=3)
        _feed(sketch, vector)
        assert abs(sketch.estimate() - f2) / f2 < 0.4

    def test_deletions_cancel(self):
        sketch = AmsF2Sketch(groups=3, group_size=4, seed=5)
        sketch.update("a", 5)
        sketch.update("a", -5)
        assert sketch.estimate() == pytest.approx(0.0)

    def test_merge_equals_combined_stream(self):
        left = AmsF2Sketch(groups=3, group_size=4, seed=7)
        right = AmsF2Sketch(groups=3, group_size=4, seed=7)
        combined = AmsF2Sketch(groups=3, group_size=4, seed=7)
        for i in range(20):
            left.update(i, 1)
            combined.update(i, 1)
        for i in range(10, 30):
            right.update(i, 2)
            combined.update(i, 2)
        left.merge(right)
        assert left.estimate() == pytest.approx(combined.estimate())

    def test_merge_rejects_mismatched(self):
        a = AmsF2Sketch(groups=2, group_size=2, seed=1)
        b = AmsF2Sketch(groups=2, group_size=2, seed=2)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_space_items(self):
        sketch = AmsF2Sketch(groups=4, group_size=6, seed=0)
        assert sketch.space_items == 24
        assert sketch.num_copies == 24
