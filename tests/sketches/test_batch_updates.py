"""Batched sketch kernels agree exactly with the scalar API.

``update_batch`` on :class:`CountSketch` / :class:`AmsF2Sketch` and the
``*_array`` methods on :class:`KWiseHash` are pure vectorizations: for
integer deltas every code path is exact integer arithmetic (Mersenne
2^61-1 hashing in uint64, float64 accumulation of integers well below
2^53), so equality here is bitwise, not approximate.
"""

import random

import numpy as np
import pytest

from repro.sketches import (
    MERSENNE_PRIME,
    AmsF2Sketch,
    CountSketch,
    KWiseHash,
    stable_key,
    stable_key_array,
)


class TestStableKeyArray:
    def test_matches_scalar_on_ints(self):
        rng = random.Random(0)
        keys = [rng.randrange(-(2**40), 2**40) for _ in range(500)]
        keys += [0, -1, 1, MERSENNE_PRIME, -MERSENNE_PRIME, 2**61 - 2]
        batch = stable_key_array(keys)
        assert batch.dtype == np.uint64
        assert batch.tolist() == [stable_key(k) for k in keys]

    def test_matches_scalar_on_numpy_array(self):
        arr = np.array([5, -7, 123456789, 0], dtype=np.int64)
        assert stable_key_array(arr).tolist() == [stable_key(int(k)) for k in arr]

    def test_matches_scalar_on_tuples(self):
        keys = [(1, 2), (2, 1), (0, 0), (10**6, 10**6 + 1)]
        assert stable_key_array(keys).tolist() == [stable_key(k) for k in keys]


class TestKWiseHashArrays:
    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("seed", [0, 17])
    def test_values_array_matches_scalar(self, k, seed):
        h = KWiseHash(k, seed=seed)
        rng = random.Random(k * 100 + seed)
        keys = [rng.randrange(0, MERSENNE_PRIME) for _ in range(300)]
        keys += [0, 1, MERSENNE_PRIME - 1]
        arr = np.array(keys, dtype=np.uint64)
        assert h.values_array(arr).tolist() == [h.value(key) for key in keys]

    def test_buckets_signs_uniforms_bernoulli(self):
        h = KWiseHash(4, seed=3)
        keys = [stable_key(k) for k in range(200)]
        arr = np.array(keys, dtype=np.uint64)
        assert h.buckets_array(arr, 37).tolist() == [h.bucket(k, 37) for k in keys]
        assert h.signs_array(arr).tolist() == [h.sign(k) for k in keys]
        assert np.allclose(h.uniforms_array(arr), [h.uniform(k) for k in keys])
        for p in (0.0, 0.25, 0.5, 1.0, 1e-9):
            assert h.bernoulli_array(arr, p).tolist() == [
                h.bernoulli(k, p) for k in keys
            ]


class TestCountSketchBatch:
    def test_batch_equals_scalar_sequence(self):
        scalar = CountSketch(rows=5, width=64, seed=11)
        batched = CountSketch(rows=5, width=64, seed=11)
        rng = random.Random(42)
        keys = [rng.randrange(0, 500) for _ in range(1000)]
        deltas = [rng.choice([-2, -1, 1, 1, 3]) for _ in range(1000)]
        for key, delta in zip(keys, deltas):
            scalar.update(key, delta)
        batched.update_batch(keys, deltas)
        for key in set(keys):
            assert scalar.query(key) == batched.query(key)

    def test_batch_default_delta_is_one(self):
        a = CountSketch(rows=3, width=32, seed=1)
        b = CountSketch(rows=3, width=32, seed=1)
        keys = list(range(50)) * 3
        for key in keys:
            a.update(key)
        b.update_batch(keys)
        assert all(a.query(k) == b.query(k) for k in range(50))

    def test_batch_accepts_tuple_keys(self):
        a = CountSketch(rows=3, width=32, seed=5)
        b = CountSketch(rows=3, width=32, seed=5)
        keys = [(u, u + 1) for u in range(40)]
        for key in keys:
            a.update(key, 2.0)
        b.update_batch(keys, [2.0] * len(keys))
        assert all(a.query(k) == b.query(k) for k in keys)

    def test_merge_after_batch(self):
        a = CountSketch(rows=3, width=32, seed=9)
        b = CountSketch(rows=3, width=32, seed=9)
        a.update_batch(range(20))
        b.update_batch(range(10, 30))
        a.merge(b)
        reference = CountSketch(rows=3, width=32, seed=9)
        reference.update_batch(list(range(20)) + list(range(10, 30)))
        assert all(a.query(k) == reference.query(k) for k in range(30))


class TestCountSketchCacheBound:
    def test_cache_never_exceeds_cap(self):
        sketch = CountSketch(rows=2, width=16, seed=0, max_cache_entries=10)
        for key in range(100):
            sketch.update(key)
        assert sketch.cache_entries <= 10

    def test_default_cap_applies(self):
        sketch = CountSketch(rows=2, width=16, seed=0)
        assert sketch.max_cache_entries == CountSketch.DEFAULT_MAX_CACHE_ENTRIES
        for key in range(CountSketch.DEFAULT_MAX_CACHE_ENTRIES + 64):
            sketch.update(key)
        assert sketch.cache_entries <= CountSketch.DEFAULT_MAX_CACHE_ENTRIES

    def test_space_items_reports_cache(self):
        sketch = CountSketch(rows=2, width=16, seed=0, max_cache_entries=8)
        base = sketch.space_items
        assert base == 2 * 16
        for key in range(4):
            sketch.update(key)
        assert sketch.space_items == base + sketch.cache_entries

    def test_capped_cache_still_correct(self):
        capped = CountSketch(rows=4, width=64, seed=2, max_cache_entries=5)
        uncapped = CountSketch(rows=4, width=64, seed=2)
        for key in range(200):
            capped.update(key, 1.5)
            uncapped.update(key, 1.5)
        assert all(capped.query(k) == uncapped.query(k) for k in range(200))


class TestAmsBatch:
    def test_batch_equals_scalar_sequence(self):
        scalar = AmsF2Sketch(groups=4, group_size=6, seed=7)
        batched = AmsF2Sketch(groups=4, group_size=6, seed=7)
        rng = random.Random(3)
        keys = [rng.randrange(0, 300) for _ in range(800)]
        deltas = [rng.choice([-1, 1, 2]) for _ in range(800)]
        for key, delta in zip(keys, deltas):
            scalar.update(key, delta)
        batched.update_batch(keys, deltas)
        assert scalar.estimate() == batched.estimate()

    def test_batch_then_merge(self):
        a = AmsF2Sketch(groups=3, group_size=4, seed=1)
        b = AmsF2Sketch(groups=3, group_size=4, seed=1)
        a.update_batch(range(30))
        b.update_batch(range(15, 45))
        a.merge(b)
        reference = AmsF2Sketch(groups=3, group_size=4, seed=1)
        reference.update_batch(list(range(30)) + list(range(15, 45)))
        assert a.estimate() == reference.estimate()

    def test_estimate_reasonable_on_uniform_frequencies(self):
        sketch = AmsF2Sketch(groups=6, group_size=12, seed=0)
        keys = [k for k in range(100) for _ in range(3)]  # each frequency 3
        sketch.update_batch(keys)
        truth = 100 * 9
        assert 0.4 * truth <= sketch.estimate() <= 2.5 * truth
