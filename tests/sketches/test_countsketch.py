"""CountSketch recovery accuracy and linearity."""

import pytest

from repro.sketches import CountSketch


class TestCountSketch:
    def test_validates_layout(self):
        with pytest.raises(ValueError):
            CountSketch(rows=0)

    def test_recovers_isolated_heavy_coordinate(self):
        sketch = CountSketch(rows=5, width=256, seed=1)
        sketch.update("heavy", 100)
        for i in range(50):
            sketch.update(i, 1)
        assert sketch.query("heavy") == pytest.approx(100, abs=10)

    def test_absent_coordinate_near_zero(self):
        sketch = CountSketch(rows=5, width=512, seed=2)
        for i in range(100):
            sketch.update(i, 1)
        assert abs(sketch.query("missing")) <= 3

    def test_exact_when_sparse(self):
        sketch = CountSketch(rows=7, width=1024, seed=3)
        values = {f"k{i}": i + 1 for i in range(10)}
        for key, value in values.items():
            sketch.update(key, value)
        for key, value in values.items():
            assert sketch.query(key) == pytest.approx(value, abs=1e-9)

    def test_deletions(self):
        sketch = CountSketch(rows=5, width=128, seed=4)
        sketch.update("x", 10)
        sketch.update("x", -4)
        assert sketch.query("x") == pytest.approx(6, abs=3)

    def test_incremental_updates_accumulate(self):
        sketch = CountSketch(rows=5, width=512, seed=5)
        for _ in range(20):
            sketch.update("acc", 1)
        assert sketch.query("acc") == pytest.approx(20, abs=3)

    def test_merge(self):
        a = CountSketch(rows=5, width=256, seed=6)
        b = CountSketch(rows=5, width=256, seed=6)
        a.update("x", 3)
        b.update("x", 4)
        a.merge(b)
        assert a.query("x") == pytest.approx(7, abs=2)

    def test_merge_rejects_mismatch(self):
        a = CountSketch(rows=5, width=256, seed=6)
        b = CountSketch(rows=5, width=256, seed=7)
        with pytest.raises(ValueError):
            a.merge(b)
        c = CountSketch(rows=4, width=256, seed=6)
        with pytest.raises(ValueError):
            a.merge(c)

    def test_space_items(self):
        assert CountSketch(rows=3, width=64, seed=0).space_items == 192
