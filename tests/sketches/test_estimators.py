"""Estimator combination utilities."""

import pytest

from repro.sketches import mean, median, median_of_means, relative_error, within_factor


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestMedian:
    def test_odd(self):
        assert median([5, 1, 3]) == 3

    def test_even_averages_middle(self):
        assert median([1, 2, 3, 10]) == 2.5

    def test_single(self):
        assert median([7]) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_does_not_mutate(self):
        values = [3, 1, 2]
        median(values)
        assert values == [3, 1, 2]


class TestMedianOfMeans:
    def test_one_group_is_mean(self):
        assert median_of_means([1, 2, 3, 4], groups=1) == 2.5

    def test_groups_equal_len_is_median(self):
        assert median_of_means([1, 100, 3], groups=3) == 3

    def test_outlier_resistance(self):
        # one wild group out of five cannot drag the median
        values = [10.0] * 8 + [10e6, 10e6] + [10.0] * 10
        assert median_of_means(values, groups=5) == 10.0

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            median_of_means([1, 2, 3], groups=2)

    def test_validates_groups(self):
        with pytest.raises(ValueError):
            median_of_means([1], groups=0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_of_means([], groups=1)


class TestErrorHelpers:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_relative_error_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == float("inf")

    def test_within_factor(self):
        assert within_factor(50, 100, 2)
        assert within_factor(200, 100, 2)
        assert not within_factor(201, 100, 2)
        assert not within_factor(49, 100, 2)

    def test_within_factor_validates(self):
        with pytest.raises(ValueError):
            within_factor(1, 1, 0.5)

    def test_within_factor_zeroes(self):
        assert within_factor(0, 0, 3)
        assert not within_factor(0, 5, 3)
