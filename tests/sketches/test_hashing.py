"""Hash family: determinism, distribution and independence checks."""

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import KWiseHash, MERSENNE_PRIME, hash_family, stable_key


class TestStableKey:
    def test_deterministic(self):
        assert stable_key(("a", 1, (2, 3))) == stable_key(("a", 1, (2, 3)))

    def test_int_identity(self):
        assert stable_key(5) == 5
        assert stable_key(0) == 0

    def test_bool_distinct_from_int(self):
        assert stable_key(True) != stable_key(1)
        assert stable_key(False) != stable_key(0)

    def test_strings_differ(self):
        assert stable_key("u1") != stable_key("u2")

    def test_tuple_order_matters(self):
        assert stable_key((1, 2)) != stable_key((2, 1))

    def test_frozenset_order_free(self):
        assert stable_key(frozenset({1, 2})) == stable_key(frozenset({2, 1}))

    def test_frozenset_distinct_from_sorted_tuple(self):
        # Regression: frozensets used to hash as the tuple of their
        # sorted member keys, so frozenset({u, v}) — the undirected-edge
        # key — collided with the ordered pair (u, v) by construction.
        for members in ((1, 2), (0, 5, 9), ("a", "b")):
            ordered = tuple(sorted(members, key=stable_key))
            assert stable_key(frozenset(members)) != stable_key(ordered)

    def test_frozenset_distinct_from_any_permutation(self):
        assert stable_key(frozenset({3, 7})) != stable_key((3, 7))
        assert stable_key(frozenset({3, 7})) != stable_key((7, 3))

    def test_singleton_frozenset_distinct_from_element_and_tuple(self):
        assert stable_key(frozenset({4})) != stable_key(4)
        assert stable_key(frozenset({4})) != stable_key((4,))

    def test_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            stable_key(3.14)

    @given(st.integers(min_value=-(10**15), max_value=10**15))
    @settings(max_examples=50)
    def test_in_range(self, x):
        assert 0 <= stable_key(x) < MERSENNE_PRIME


class TestKWiseHash:
    def test_deterministic_per_seed(self):
        a = KWiseHash(k=4, seed=3)
        b = KWiseHash(k=4, seed=3)
        assert all(a.value(i) == b.value(i) for i in range(50))

    def test_seed_matters(self):
        a = KWiseHash(k=4, seed=3)
        b = KWiseHash(k=4, seed=4)
        assert any(a.value(i) != b.value(i) for i in range(50))

    def test_validates_k(self):
        with pytest.raises(ValueError):
            KWiseHash(k=0, seed=1)

    def test_uniform_in_unit_interval(self):
        h = KWiseHash(k=2, seed=5)
        values = [h.uniform(i) for i in range(2000)]
        assert all(0 < v < 1 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.03

    def test_bernoulli_rate(self):
        h = KWiseHash(k=2, seed=7)
        for p in (0.1, 0.5, 0.9):
            hits = sum(h.bernoulli(("item", i), p) for i in range(5000))
            assert abs(hits / 5000 - p) < 0.03

    def test_bernoulli_validates(self):
        with pytest.raises(ValueError):
            KWiseHash(k=2, seed=1).bernoulli(0, 1.5)

    def test_bernoulli_extremes(self):
        h = KWiseHash(k=2, seed=1)
        assert not any(h.bernoulli(i, 0.0) for i in range(100))
        assert all(h.bernoulli(i, 1.0) for i in range(100))

    def test_sign_balance(self):
        h = KWiseHash(k=4, seed=9)
        total = sum(h.sign(i) for i in range(4000))
        assert abs(total) < 300  # ~3 sigma for fair signs

    def test_sign_pairwise_uncorrelated(self):
        h = KWiseHash(k=4, seed=11)
        corr = sum(h.sign(2 * i) * h.sign(2 * i + 1) for i in range(4000))
        assert abs(corr) < 300

    def test_bucket_spread(self):
        h = KWiseHash(k=2, seed=13)
        counts = Counter(h.bucket(i, 16) for i in range(8000))
        assert len(counts) == 16
        assert max(counts.values()) < 2.0 * 8000 / 16

    def test_bucket_validates(self):
        with pytest.raises(ValueError):
            KWiseHash(k=2, seed=1).bucket(0, 0)

    def test_choice4_distribution(self):
        h = KWiseHash(k=2, seed=15)
        counts = Counter(h.choice4(i, 0.4, 0.4, 0.1) for i in range(10000))
        assert abs(counts[0] / 10000 - 0.4) < 0.03
        assert abs(counts[1] / 10000 - 0.4) < 0.03
        assert abs(counts[2] / 10000 - 0.1) < 0.02
        assert abs(counts[3] / 10000 - 0.1) < 0.02

    def test_choice4_validates(self):
        with pytest.raises(ValueError):
            KWiseHash(k=2, seed=1).choice4(0, 0.6, 0.6, 0.1)

    def test_hash_family_independent_members(self):
        family = hash_family(5, k=2, seed=21)
        assert len({h.value(123) for h in family}) > 1

    def test_mixed_key_types(self):
        h = KWiseHash(k=2, seed=23)
        # should accept all stable_key-supported types without error
        for key in (7, "v7", ("e", 1, 2), frozenset({1, 2})):
            assert 0 <= h.value(key) < MERSENNE_PRIME
