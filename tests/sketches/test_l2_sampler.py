"""l2 sampler: sampling distribution proportional to f_i^2."""

from collections import Counter

import pytest

from repro.sketches import L2Sampler, L2SamplerBank


class TestL2Sampler:
    def test_validates_accept_scale(self):
        with pytest.raises(ValueError):
            L2Sampler(accept_scale=1.0)

    def test_value_estimate_accurate(self):
        """On a sparse vector the returned value estimate is near-exact."""
        vector = {"a": 10, "b": 3, "c": 1}
        f2 = sum(v * v for v in vector.values())
        recovered = {}
        for seed in range(120):
            sampler = L2Sampler(seed=seed, width=512, accept_scale=3.0)
            for key, value in vector.items():
                sampler.update(key, value)
            drawn = sampler.sample(list(vector), f2)
            if drawn is not None:
                key, estimate = drawn
                recovered.setdefault(key, []).append(estimate)
        assert recovered, "no sampler succeeded in 120 copies"
        for key, estimates in recovered.items():
            for estimate in estimates:
                assert abs(abs(estimate) - vector[key]) < 1.0

    def test_distribution_proportional_to_squares(self):
        """P[key sampled] tracks f_key^2 / F2."""
        vector = {"big": 8, "mid": 4, "small": 2}
        f2 = sum(v * v for v in vector.values())
        counts = Counter()
        successes = 0
        for seed in range(600):
            sampler = L2Sampler(seed=seed, width=256, accept_scale=4.0)
            for key, value in vector.items():
                sampler.update(key, value)
            drawn = sampler.sample(list(vector), f2)
            if drawn is not None:
                counts[drawn[0]] += 1
                successes += 1
        assert successes > 30
        # squares 64 : 16 : 4 -> big should dominate mid by roughly 4x
        # (the argmax step skews slightly further toward the largest
        # coordinate on tiny vectors, so the band is generous)
        assert counts["big"] > counts["mid"] > counts["small"] >= 0
        ratio = counts["big"] / max(1, counts["mid"])
        assert 2.0 < ratio < 12.0

    def test_no_updates_returns_none(self):
        sampler = L2Sampler(seed=1)
        assert sampler.sample(["a", "b"], 100.0) is None

    def test_rejects_negative_f2(self):
        sampler = L2Sampler(seed=1)
        with pytest.raises(ValueError):
            sampler.sample(["a"], -1.0)


class TestL2SamplerBank:
    def test_validates_count(self):
        with pytest.raises(ValueError):
            L2SamplerBank(count=0)

    def test_bank_collects_multiple_samples(self):
        vector = {i: 5 for i in range(20)}
        f2 = sum(v * v for v in vector.values())
        bank = L2SamplerBank(count=40, seed=3, accept_scale=4.0)
        for key, value in vector.items():
            bank.update(key, value)
        samples = bank.samples(list(vector), f2)
        assert len(samples) >= 3
        for key, estimate in samples:
            assert key in vector
            assert abs(abs(estimate) - 5) < 2.0

    def test_space_items(self):
        bank = L2SamplerBank(count=3, rows=4, width=32, seed=0)
        assert bank.space_items == 3 * 4 * 32
        assert len(bank) == 3
