"""Misra–Gries summary guarantees."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import MisraGries


class TestMisraGries:
    def test_validates_k(self):
        with pytest.raises(ValueError):
            MisraGries(k=0)

    def test_exact_when_under_capacity(self):
        summary = MisraGries(k=10)
        for item, count in (("a", 5), ("b", 3)):
            for _ in range(count):
                summary.update(item)
        assert summary.estimate("a") == 5
        assert summary.estimate("b") == 3
        assert summary.estimate("zzz") == 0

    def test_never_overestimates(self):
        rng = random.Random(3)
        stream = [rng.randrange(30) for _ in range(2000)]
        summary = MisraGries(k=8)
        for item in stream:
            summary.update(item)
        for item in range(30):
            assert summary.estimate(item) <= stream.count(item)

    def test_undercount_bounded(self):
        rng = random.Random(5)
        stream = [rng.randrange(30) for _ in range(2000)]
        summary = MisraGries(k=8)
        for item in stream:
            summary.update(item)
        for item in range(30):
            true_count = stream.count(item)
            assert summary.estimate(item) >= true_count - summary.error_bound

    def test_heavy_hitter_recovered(self):
        summary = MisraGries(k=4)
        stream = ["hot"] * 500 + list(range(400))
        random.Random(1).shuffle(stream)
        for item in stream:
            summary.update(item)
        hitters = dict(summary.heavy_hitters(0.2))
        assert "hot" in hitters

    def test_heavy_hitters_validates(self):
        with pytest.raises(ValueError):
            MisraGries(k=3).heavy_hitters(0.0)

    def test_weighted_updates(self):
        summary = MisraGries(k=3)
        summary.update("x", count=100)
        summary.update("y", count=1)
        assert summary.estimate("x") == 100
        assert summary.processed == 101

    def test_update_validates_count(self):
        with pytest.raises(ValueError):
            MisraGries(k=3).update("x", count=0)

    def test_space_bounded_by_k(self):
        summary = MisraGries(k=5)
        for item in range(1000):
            summary.update(item)
        assert summary.space_items <= 5

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_guarantee_property(self, stream):
        """count - n/(k+1) <= estimate <= count, for every item."""
        summary = MisraGries(k=4)
        for item in stream:
            summary.update(item)
        n = len(stream)
        for item in set(stream):
            true_count = stream.count(item)
            estimate = summary.estimate(item)
            assert estimate <= true_count
            assert estimate >= true_count - n / 5.0
