"""Reservoir sampling: uniformity and eviction reporting."""

from collections import Counter

import pytest

from repro.sketches import ReservoirSampler, UniformItemSampler


class TestReservoirSampler:
    def test_fills_to_capacity(self):
        reservoir = ReservoirSampler(capacity=5, seed=1)
        for i in range(5):
            assert reservoir.add(i) is None
        assert sorted(reservoir.items) == [0, 1, 2, 3, 4]

    def test_size_never_exceeds_capacity(self):
        reservoir = ReservoirSampler(capacity=4, seed=2)
        for i in range(100):
            reservoir.add(i)
        assert len(reservoir) == 4

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(capacity=0)

    def test_eviction_reporting_consistent(self):
        reservoir = ReservoirSampler(capacity=3, seed=3)
        alive = set()
        for i in range(50):
            out = reservoir.add(i)
            alive.add(i)
            if out is not None:
                alive.discard(out)
            assert set(reservoir.items) == alive

    def test_uniform_marginals(self):
        """Every item ends up retained with probability capacity/n."""
        counts = Counter()
        trials, capacity, n = 800, 5, 25
        for seed in range(trials):
            reservoir = ReservoirSampler(capacity=capacity, seed=seed)
            for i in range(n):
                reservoir.add(i)
            counts.update(reservoir.items)
        expected = trials * capacity / n
        for i in range(n):
            assert expected * 0.6 < counts[i] < expected * 1.4

    def test_contains_and_offered(self):
        reservoir = ReservoirSampler(capacity=2, seed=5)
        reservoir.add("a")
        assert "a" in reservoir
        assert reservoir.offered == 1


class TestUniformItemSampler:
    def test_holds_single_item(self):
        sampler = UniformItemSampler(seed=1)
        assert sampler.item is None
        sampler.add("x")
        assert sampler.item == "x"

    def test_uniformity(self):
        counts = Counter()
        for seed in range(900):
            sampler = UniformItemSampler(seed=seed)
            for i in range(9):
                sampler.add(i)
            counts[sampler.item] += 1
        expected = 900 / 9
        for i in range(9):
            assert expected * 0.6 < counts[i] < expected * 1.5
