"""Reservoir sampling: uniformity and eviction reporting."""

import itertools
from collections import Counter

import pytest

from repro.sketches import ReservoirSampler, UniformItemSampler


class _ScriptedRNG:
    """Replays a fixed sequence of randrange outcomes, validating each
    request's range — lets tests enumerate every RNG path exactly."""

    def __init__(self, script):
        self._script = iter(script)

    def randrange(self, n):
        value = next(self._script)
        assert 0 <= value < n, f"scripted draw {value} outside range({n})"
        return value


class TestReservoirSampler:
    def test_fills_to_capacity(self):
        reservoir = ReservoirSampler(capacity=5, seed=1)
        for i in range(5):
            assert reservoir.add(i) is None
        assert sorted(reservoir.items) == [0, 1, 2, 3, 4]

    def test_size_never_exceeds_capacity(self):
        reservoir = ReservoirSampler(capacity=4, seed=2)
        for i in range(100):
            reservoir.add(i)
        assert len(reservoir) == 4

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(capacity=0)

    def test_eviction_reporting_consistent(self):
        reservoir = ReservoirSampler(capacity=3, seed=3)
        alive = set()
        for i in range(50):
            out = reservoir.add(i)
            alive.add(i)
            if out is not None:
                alive.discard(out)
            assert set(reservoir.items) == alive

    def test_uniform_marginals(self):
        """Every item ends up retained with probability capacity/n."""
        counts = Counter()
        trials, capacity, n = 800, 5, 25
        for seed in range(trials):
            reservoir = ReservoirSampler(capacity=capacity, seed=seed)
            for i in range(n):
                reservoir.add(i)
            counts.update(reservoir.items)
        expected = trials * capacity / n
        for i in range(n):
            assert expected * 0.6 < counts[i] < expected * 1.4

    def test_contains_and_offered(self):
        reservoir = ReservoirSampler(capacity=2, seed=5)
        reservoir.add("a")
        assert "a" in reservoir
        assert reservoir.offered == 1


class TestReservoirExactInclusion:
    """Exhaustive enumeration of Algorithm R's RNG paths.

    For capacity ``c`` and ``n`` offers the RNG is consulted exactly
    once per overflow offer, drawing from ``range(c+1) x ... x
    range(n)``.  Scripting every path makes the inclusion law exact:
    each item must be retained in precisely ``c/n`` of all paths, and
    each ``c``-subset must arise equally often — not just in
    expectation, but as a counting identity.
    """

    def _enumerate_paths(self, capacity, n):
        ranges = [range(t) for t in range(capacity + 1, n + 1)]
        for script in itertools.product(*ranges):
            reservoir = ReservoirSampler(capacity=capacity, seed=0)
            reservoir._rng = _ScriptedRNG(script)
            for item in range(n):
                reservoir.add(item)
            yield frozenset(reservoir.items)

    def test_marginal_inclusion_is_exactly_capacity_over_n(self):
        capacity, n = 2, 5
        counts = Counter()
        total = 0
        for sample in self._enumerate_paths(capacity, n):
            assert len(sample) == capacity
            counts.update(sample)
            total += 1
        assert total == 3 * 4 * 5
        # every item retained in exactly c/n = 2/5 of the 60 paths
        for item in range(n):
            assert counts[item] == total * capacity // n

    def test_every_subset_equally_likely(self):
        capacity, n = 2, 5
        subsets = Counter(self._enumerate_paths(capacity, n))
        expected_distinct = 10  # C(5, 2)
        assert len(subsets) == expected_distinct
        assert len(set(subsets.values())) == 1  # perfectly uniform

    def test_capacity_three_marginals(self):
        capacity, n = 3, 6
        counts = Counter()
        total = 0
        for sample in self._enumerate_paths(capacity, n):
            counts.update(sample)
            total += 1
        assert total == 4 * 5 * 6
        for item in range(n):
            assert counts[item] == total * capacity // n


class TestUniformItemSamplerExactInclusion:
    def test_each_item_selected_in_equal_share_of_paths(self):
        # Capacity-1 reservoir: RNG draws from range(1) x ... x range(n).
        n = 4
        counts = Counter()
        total = 0
        for script in itertools.product(*[range(t) for t in range(1, n + 1)]):
            sampler = UniformItemSampler(seed=0)
            sampler._rng = _ScriptedRNG(script)
            for item in range(n):
                sampler.add(item)
            counts[sampler.item] += 1
            total += 1
        assert total == 24
        for item in range(n):
            assert counts[item] == total // n


class TestUniformItemSampler:
    def test_holds_single_item(self):
        sampler = UniformItemSampler(seed=1)
        assert sampler.item is None
        sampler.add("x")
        assert sampler.item == "x"

    def test_uniformity(self):
        counts = Counter()
        for seed in range(900):
            sampler = UniformItemSampler(seed=seed)
            for i in range(9):
                sampler.add(i)
            counts[sampler.item] += 1
        expected = 900 / 9
        for i in range(9):
            assert expected * 0.6 < counts[i] < expected * 1.5
