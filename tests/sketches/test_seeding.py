"""The namespaced seed-derivation scheme (repro.seeding).

These are the decorrelation regressions for the shared-raw-seed bug:
two components handed the same user seed must end up with unrelated
RNG streams, and the canonical field encoding must make cross-type
and cross-nesting collisions impossible.
"""

import pytest

from repro.seeding import SCHEME, component_rng, derive_seed, numpy_generator
from repro.sketches import ReservoirSampler, UniformItemSampler


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a.b", 1, "x", seed=7) == derive_seed("a.b", 1, "x", seed=7)

    def test_63_bit_non_negative(self):
        for seed in (0, 1, 2**40, -3):
            value = derive_seed("component", seed=seed)
            assert 0 <= value < 2**63

    def test_component_separates_streams(self):
        assert derive_seed("a", seed=0) != derive_seed("b", seed=0)

    def test_seed_separates_streams(self):
        assert derive_seed("a", seed=0) != derive_seed("a", seed=1)

    def test_fields_separate_streams(self):
        assert derive_seed("a", 1, seed=0) != derive_seed("a", 2, seed=0)
        assert derive_seed("a", seed=0) != derive_seed("a", 0, seed=0)

    def test_cross_type_scalars_distinct(self):
        # 1, True, "1", 1.0 hash equal in Python; the encoding must not.
        variants = [
            derive_seed("a", 1, seed=0),
            derive_seed("a", True, seed=0),
            derive_seed("a", "1", seed=0),
            derive_seed("a", 1.0, seed=0),
            derive_seed("a", None, seed=0),
        ]
        assert len(set(variants)) == len(variants)

    def test_nesting_is_unambiguous(self):
        flat = derive_seed("a", ("x", "y"), seed=0)
        nested = derive_seed("a", ("x", ("y",)), seed=0)
        split = derive_seed("a", "x", "y", seed=0)
        assert len({flat, nested, split}) == 3

    def test_string_concatenation_unambiguous(self):
        # length-delimited strings: ("ab", "c") must differ from ("a", "bc")
        assert derive_seed("t", "ab", "c", seed=0) != derive_seed(
            "t", "a", "bc", seed=0
        )

    def test_field_and_seed_positions_distinct(self):
        assert derive_seed("a", 5, seed=0) != derive_seed("a", 0, seed=5)

    def test_rejects_bad_component(self):
        with pytest.raises(TypeError):
            derive_seed("", seed=0)
        with pytest.raises(TypeError):
            derive_seed(7, seed=0)  # type: ignore[arg-type]

    def test_rejects_unencodable_field(self):
        with pytest.raises(TypeError):
            derive_seed("a", {"k": 1}, seed=0)  # type: ignore[arg-type]

    def test_scheme_is_pinned(self):
        # Goldens across the tree pin streams derived under this scheme;
        # changing it must be a deliberate, visible act.
        assert SCHEME == "repro-seed-v1"


class TestComponentRng:
    def test_same_component_same_stream(self):
        a = component_rng("x", seed=3)
        b = component_rng("x", seed=3)
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_different_components_different_streams(self):
        a = component_rng("x", seed=3)
        b = component_rng("y", seed=3)
        assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]

    def test_numpy_generator_decorrelated(self):
        a = numpy_generator("x", seed=3).random(8).tolist()
        b = numpy_generator("y", seed=3).random(8).tolist()
        assert a != b


class TestSharedSeedRegression:
    def test_reservoir_and_uniform_sampler_decorrelated(self):
        # The original bug: both called random.Random(seed) directly.
        for seed in (0, 7, 123):
            reservoir = ReservoirSampler(capacity=8, seed=seed)
            sampler = UniformItemSampler(seed=seed)
            a = [reservoir._rng.random() for _ in range(16)]
            b = [sampler._rng.random() for _ in range(16)]
            assert a != b

    def test_reservoir_capacity_separates_streams(self):
        a = ReservoirSampler(capacity=4, seed=9)
        b = ReservoirSampler(capacity=5, seed=9)
        assert [a._rng.random() for _ in range(16)] != [
            b._rng.random() for _ in range(16)
        ]
