"""Hypothesis properties of the sketch substrate: linearity, merge
semantics, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import AmsF2Sketch, CountSketch, KWiseHash

update_strategy = st.lists(
    st.tuples(st.integers(0, 20), st.integers(-5, 5)), max_size=40
)


class TestCountSketchProperties:
    @given(update_strategy, update_strategy)
    @settings(max_examples=40, deadline=None)
    def test_linearity_of_merge(self, first, second):
        """query(sketch(a) + sketch(b)) == query(sketch(a ++ b)) exactly."""
        a = CountSketch(rows=3, width=32, seed=5)
        b = CountSketch(rows=3, width=32, seed=5)
        combined = CountSketch(rows=3, width=32, seed=5)
        for key, delta in first:
            a.update(key, delta)
            combined.update(key, delta)
        for key, delta in second:
            b.update(key, delta)
            combined.update(key, delta)
        a.merge(b)
        for key in range(21):
            assert a.query(key) == pytest.approx(combined.query(key))

    @given(update_strategy)
    @settings(max_examples=40, deadline=None)
    def test_negation_cancels(self, updates):
        sketch = CountSketch(rows=3, width=32, seed=7)
        for key, delta in updates:
            sketch.update(key, delta)
        for key, delta in updates:
            sketch.update(key, -delta)
        for key in range(21):
            assert sketch.query(key) == pytest.approx(0.0)

    @given(update_strategy)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, updates):
        def build():
            sketch = CountSketch(rows=3, width=32, seed=11)
            for key, delta in updates:
                sketch.update(key, delta)
            return [sketch.query(key) for key in range(21)]

        assert build() == build()


class TestAmsProperties:
    @given(update_strategy)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_concatenation(self, updates):
        half = len(updates) // 2
        left = AmsF2Sketch(groups=2, group_size=3, seed=3)
        right = AmsF2Sketch(groups=2, group_size=3, seed=3)
        combined = AmsF2Sketch(groups=2, group_size=3, seed=3)
        for key, delta in updates[:half]:
            left.update(key, delta)
            combined.update(key, delta)
        for key, delta in updates[half:]:
            right.update(key, delta)
            combined.update(key, delta)
        left.merge(right)
        assert left.estimate() == pytest.approx(combined.estimate())

    @given(update_strategy)
    @settings(max_examples=40, deadline=None)
    def test_estimate_nonnegative(self, updates):
        sketch = AmsF2Sketch(groups=2, group_size=3, seed=9)
        for key, delta in updates:
            sketch.update(key, delta)
        assert sketch.estimate() >= 0.0


class TestHashProperties:
    @given(st.integers(0, 10**12), st.integers(1, 100))
    @settings(max_examples=60, deadline=None)
    def test_value_stable_and_in_range(self, key, seed):
        from repro.sketches import MERSENNE_PRIME

        h = KWiseHash(k=4, seed=seed)
        assert h.value(key) == h.value(key)
        assert 0 <= h.value(key) < MERSENNE_PRIME

    @given(st.integers(0, 10**6), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_bernoulli_monotone_in_p(self, key, p):
        """If the coin comes up at rate p, it also comes up at any
        higher rate — the property level-sampling relies on."""
        h = KWiseHash(k=2, seed=13)
        if h.bernoulli(key, p):
            assert h.bernoulli(key, min(1.0, p + 0.1))
