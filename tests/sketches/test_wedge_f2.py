"""The Section 4.2.2 wedge-F2 basic estimator.

The factor-2 calibration (E[2 Z^2] == F2 over unordered pairs) was
verified symbolically over all sign assignments during development;
these tests re-verify it statistically and check both feeding modes
agree.
"""

import pytest

from repro.graphs import cycle_graph, erdos_renyi, star_graph, wedge_counts
from repro.sketches import WedgeF2Estimator
from repro.streams import AdjacencyListStream, ArbitraryOrderStream


def _true_f2(graph):
    return sum(v * v for v in wedge_counts(graph).values())


def _feed_adjacency(estimator, graph, seed=0):
    stream = AdjacencyListStream(graph, seed=seed)
    for vertex, neighbors in stream.adjacency_lists():
        estimator.process_adjacency_list(vertex, neighbors)


def _feed_arbitrary(estimator, graph):
    for u, v in graph.edges():
        estimator.process_edge(u, v)


class TestWedgeF2Estimator:
    def test_validates_layout(self):
        with pytest.raises(ValueError):
            WedgeF2Estimator(groups=0)

    def test_empty_graph_estimates_zero(self):
        estimator = WedgeF2Estimator(groups=2, group_size=2, seed=0)
        estimator.process_adjacency_list(0, [])
        assert estimator.estimate() == 0.0

    def test_unbiased_on_c4(self):
        """E[2 Z^2] == 8 for the 4-cycle (F2 = two diagonals of x=2)."""
        g = cycle_graph(4)
        estimates = []
        for seed in range(200):
            estimator = WedgeF2Estimator(groups=1, group_size=1, seed=seed)
            _feed_adjacency(estimator, g, seed=seed)
            estimates.append(estimator.estimate())
        average = sum(estimates) / len(estimates)
        assert abs(average - 8.0) / 8.0 < 0.25

    def test_accuracy_on_random_graph(self):
        g = erdos_renyi(30, 0.3, seed=2)
        f2 = _true_f2(g)
        estimator = WedgeF2Estimator(groups=7, group_size=60, seed=1)
        _feed_adjacency(estimator, g)
        assert abs(estimator.estimate() - f2) / f2 < 0.35

    def test_star_graph(self):
        # star on h leaves: every leaf pair has x = 1 -> F2 = C(h, 2)
        g = star_graph(8)
        estimator = WedgeF2Estimator(groups=5, group_size=40, seed=3)
        _feed_adjacency(estimator, g)
        assert abs(estimator.estimate() - 28) / 28 < 0.5

    def test_modes_agree(self):
        """Adjacency and arbitrary-order modes compute the same Z."""
        g = erdos_renyi(20, 0.4, seed=4)
        adjacency = WedgeF2Estimator(groups=2, group_size=3, seed=9)
        arbitrary = WedgeF2Estimator(groups=2, group_size=3, seed=9)
        _feed_adjacency(adjacency, g)
        _feed_arbitrary(arbitrary, g)
        assert adjacency.estimate() == pytest.approx(arbitrary.estimate())

    def test_deletion_cancels_insertion(self):
        g = erdos_renyi(15, 0.4, seed=5)
        with_churn = WedgeF2Estimator(groups=2, group_size=3, seed=11)
        plain = WedgeF2Estimator(groups=2, group_size=3, seed=11)
        _feed_arbitrary(plain, g)
        # insert a spurious edge then delete it mid-stream
        edges = list(g.edges())
        half = len(edges) // 2
        for u, v in edges[:half]:
            with_churn.process_edge(u, v)
        with_churn.process_edge(998, 999, delta=1)
        with_churn.process_edge(998, 999, delta=-1)
        for u, v in edges[half:]:
            with_churn.process_edge(u, v)
        assert with_churn.estimate() == pytest.approx(plain.estimate())

    def test_mode_mixing_rejected(self):
        estimator = WedgeF2Estimator(groups=2, group_size=2, seed=0)
        estimator.process_adjacency_list(0, [1, 2])
        with pytest.raises(RuntimeError):
            estimator.process_edge(0, 1)
        other = WedgeF2Estimator(groups=2, group_size=2, seed=0)
        other.process_edge(0, 1)
        with pytest.raises(RuntimeError):
            other.process_adjacency_list(0, [1, 2])

    def test_space_items_grow_in_arbitrary_mode(self):
        estimator = WedgeF2Estimator(groups=2, group_size=2, seed=0)
        base = estimator.space_items
        estimator.process_edge(0, 1)
        estimator.process_edge(1, 2)
        assert estimator.space_items == base + 4 * 3 * 3  # 3 vertices x 3 counters x 4 copies
