"""FileEdgeStream: disk-backed arbitrary-order streaming."""

import pytest

from repro.core import TriangleRandomOrder
from repro.graphs import erdos_renyi, triangle_count, write_edge_list
from repro.streams import FileEdgeStream


@pytest.fixture
def graph_file(tmp_path):
    graph = erdos_renyi(60, 0.2, seed=9)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return graph, path


class TestFileEdgeStream:
    def test_counts(self, graph_file):
        graph, path = graph_file
        stream = FileEdgeStream(path)
        assert stream.num_edges == graph.num_edges
        # isolated vertices are not representable in an edge list
        assert stream.num_vertices <= graph.num_vertices

    def test_tokens_match_file_graph(self, graph_file):
        graph, path = graph_file
        stream = FileEdgeStream(path)
        assert sorted(stream.edges()) == sorted(graph.edges())

    def test_deduplication(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("0 1\n1 0\n1 2\n0 0\n")
        stream = FileEdgeStream(path, deduplicate=True)
        assert stream.num_edges == 2
        assert sorted(stream.edges()) == [(0, 1), (1, 2)]

    def test_no_dedup_passthrough(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("0 1\n1 0\n1 2\n")
        stream = FileEdgeStream(path, deduplicate=False)
        assert stream.num_edges == 3
        assert list(stream.edges()) == [(0, 1), (0, 1), (1, 2)]

    def test_precounted_skips_counting_pass(self, graph_file):
        graph, path = graph_file
        stream = FileEdgeStream(path, precounted=(graph.num_vertices, graph.num_edges))
        assert stream.num_edges == graph.num_edges
        assert sorted(stream.edges()) == sorted(graph.edges())

    def test_multi_pass_replay(self, graph_file):
        _, path = graph_file
        stream = FileEdgeStream(path)
        first = list(stream.edges())
        second = list(stream.edges())
        assert first == second
        assert stream.passes_taken == 2

    def test_algorithm_runs_from_disk(self, graph_file):
        """An end-to-end check: stream a file through Theorem 2.1."""
        graph, path = graph_file
        truth = triangle_count(graph)
        stream = FileEdgeStream(path)
        result = TriangleRandomOrder(t_guess=max(1, truth), epsilon=0.5, seed=1).run(
            stream
        )
        assert result.estimate >= 0
        assert result.passes == 1
