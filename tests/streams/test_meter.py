"""SpaceMeter accounting semantics."""

import pytest

from repro.streams import SpaceMeter


class TestSpaceMeter:
    def test_starts_empty(self):
        meter = SpaceMeter()
        assert meter.current == 0
        assert meter.peak == 0

    def test_add_and_peak(self):
        meter = SpaceMeter()
        meter.add("edges", 5)
        meter.add("edges", 3)
        assert meter.current == 8
        assert meter.peak == 8

    def test_eviction_keeps_peak(self):
        meter = SpaceMeter()
        meter.add("edges", 10)
        meter.add("edges", -7)
        assert meter.current == 3
        assert meter.peak == 10

    def test_negative_current_rejected(self):
        meter = SpaceMeter()
        meter.add("edges", 2)
        with pytest.raises(ValueError):
            meter.add("edges", -3)

    def test_set_absolute(self):
        meter = SpaceMeter()
        meter.set("counters", 40)
        meter.set("counters", 10)
        assert meter.current_of("counters") == 10
        assert meter.peak_of("counters") == 40

    def test_set_rejects_negative(self):
        with pytest.raises(ValueError):
            SpaceMeter().set("c", -1)

    def test_peak_is_total_across_categories(self):
        meter = SpaceMeter()
        meter.add("a", 5)
        meter.add("b", 5)
        meter.add("a", -5)
        meter.add("b", 5)
        # timeline totals: 5, 10, 5, 10 -> peak 10
        assert meter.peak == 10

    def test_breakdown(self):
        meter = SpaceMeter()
        meter.add("a", 3)
        meter.add("b", 2)
        assert meter.breakdown() == {"a": 3, "b": 2}

    def test_merge(self):
        outer = SpaceMeter()
        outer.add("a", 4)
        inner = SpaceMeter()
        inner.add("x", 6)
        outer.merge(inner, prefix="sub_")
        assert outer.peak == 10
        assert outer.peak_of("sub_x") == 6

    def test_default_add_is_one(self):
        meter = SpaceMeter()
        meter.add("a")
        assert meter.current == 1


class TestStep:
    def test_shrink_then_grow_records_no_phantom_peak(self):
        # Rebuilding two categories inside one logical step: "a" shrinks
        # before "b" grows.  Without step(), the transient state
        # a=0,b=20 -> total 20 never co-existed with a=10 and must not
        # become the peak; only the state at step exit counts.
        meter = SpaceMeter()
        meter.add("a", 10)
        meter.add("b", 5)  # peak 15
        with meter.step():
            meter.set("a", 0)
            meter.set("b", 12)
        assert meter.current == 12
        assert meter.peak == 15

    def test_step_commits_final_state_as_peak(self):
        meter = SpaceMeter()
        with meter.step():
            meter.add("a", 30)
            meter.add("a", -10)
        assert meter.peak == 20
        assert meter.peak_of("a") == 20

    def test_step_counts_as_one_mutation(self):
        meter = SpaceMeter()
        with meter.step():
            for _ in range(10):
                meter.add("a")
        assert meter.mutations == 1

    def test_nested_step_is_flat(self):
        meter = SpaceMeter()
        with meter.step():
            with meter.step():
                meter.add("a", 5)
            meter.add("a", 5)
        assert meter.peak == 10
        assert meter.mutations == 1

    def test_exception_inside_step_still_commits(self):
        meter = SpaceMeter()
        try:
            with meter.step():
                meter.add("a", 7)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert meter.peak == 7


class TestTimeline:
    def test_samples_every_mutation_initially(self):
        meter = SpaceMeter()
        for i in range(5):
            meter.add("a")
        assert meter.timeline() == [(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]

    def test_bounded_buffer_decimates(self):
        meter = SpaceMeter(timeline_capacity=8)
        for _ in range(1000):
            meter.add("a")
        samples = meter.timeline()
        assert len(samples) < 8
        # monotonically increasing mutation indices, totals match indices
        indices = [index for index, _total in samples]
        assert indices == sorted(indices)
        assert all(total == index for index, total in samples)

    def test_disabled_capacity_records_nothing(self):
        meter = SpaceMeter(timeline_capacity=0)
        for _ in range(100):
            meter.add("a")
        assert meter.timeline() == []
        assert meter.peak == 100  # peak accounting unaffected

    def test_max_points_downsamples_keeping_last(self):
        meter = SpaceMeter()
        for _ in range(50):
            meter.add("a")
        samples = meter.timeline(max_points=4)
        assert len(samples) <= 5
        assert samples[-1] == meter.timeline()[-1]

    def test_merge_keeps_current_total_consistent(self):
        outer = SpaceMeter()
        outer.add("a", 4)
        inner = SpaceMeter()
        inner.add("x", 6)
        outer.merge(inner, prefix="sub_")
        assert outer.current == 10
        outer.add("a", 1)
        assert outer.current == 11
