"""SpaceMeter accounting semantics."""

import pytest

from repro.streams import SpaceMeter


class TestSpaceMeter:
    def test_starts_empty(self):
        meter = SpaceMeter()
        assert meter.current == 0
        assert meter.peak == 0

    def test_add_and_peak(self):
        meter = SpaceMeter()
        meter.add("edges", 5)
        meter.add("edges", 3)
        assert meter.current == 8
        assert meter.peak == 8

    def test_eviction_keeps_peak(self):
        meter = SpaceMeter()
        meter.add("edges", 10)
        meter.add("edges", -7)
        assert meter.current == 3
        assert meter.peak == 10

    def test_negative_current_rejected(self):
        meter = SpaceMeter()
        meter.add("edges", 2)
        with pytest.raises(ValueError):
            meter.add("edges", -3)

    def test_set_absolute(self):
        meter = SpaceMeter()
        meter.set("counters", 40)
        meter.set("counters", 10)
        assert meter.current_of("counters") == 10
        assert meter.peak_of("counters") == 40

    def test_set_rejects_negative(self):
        with pytest.raises(ValueError):
            SpaceMeter().set("c", -1)

    def test_peak_is_total_across_categories(self):
        meter = SpaceMeter()
        meter.add("a", 5)
        meter.add("b", 5)
        meter.add("a", -5)
        meter.add("b", 5)
        # timeline totals: 5, 10, 5, 10 -> peak 10
        assert meter.peak == 10

    def test_breakdown(self):
        meter = SpaceMeter()
        meter.add("a", 3)
        meter.add("b", 2)
        assert meter.breakdown() == {"a": 3, "b": 2}

    def test_merge(self):
        outer = SpaceMeter()
        outer.add("a", 4)
        inner = SpaceMeter()
        inner.add("x", 6)
        outer.merge(inner, prefix="sub_")
        assert outer.peak == 10
        assert outer.peak_of("sub_x") == 6

    def test_default_add_is_one(self):
        meter = SpaceMeter()
        meter.add("a")
        assert meter.current == 1
