"""Stream model semantics: orders, pass counting, adjacency grouping."""

from collections import Counter

import pytest

from repro.graphs import Graph, complete_graph, erdos_renyi, normalize_edge
from repro.streams import (
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
)


@pytest.fixture
def graph():
    return erdos_renyi(25, 0.3, seed=11)


class TestArbitraryOrderStream:
    def test_preserves_order(self):
        edges = [(0, 1), (2, 3), (1, 2)]
        stream = ArbitraryOrderStream(edges)
        assert list(stream.edges()) == [(0, 1), (2, 3), (1, 2)]

    def test_normalizes_edges(self):
        stream = ArbitraryOrderStream([(3, 1)])
        assert list(stream.edges()) == [(1, 3)]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ArbitraryOrderStream([(0, 1), (1, 0)])

    def test_counts(self, graph):
        stream = ArbitraryOrderStream.from_graph(graph)
        assert stream.num_edges == graph.num_edges
        assert stream.num_vertices == graph.num_vertices
        assert stream.stream_length == graph.num_edges

    def test_pass_counting(self, graph):
        stream = ArbitraryOrderStream.from_graph(graph)
        assert stream.passes_taken == 0
        list(stream.edges())
        list(stream.edges())
        assert stream.passes_taken == 2

    def test_materialize(self, graph):
        stream = ArbitraryOrderStream.from_graph(graph)
        assert stream.materialize() == sorted(graph.edges())


class TestRandomOrderStream:
    def test_is_permutation_of_edges(self, graph):
        stream = RandomOrderStream(graph, seed=5)
        assert sorted(stream.edges()) == sorted(graph.edges())

    def test_passes_replay_same_permutation(self, graph):
        stream = RandomOrderStream(graph, seed=5)
        first = list(stream.edges())
        second = list(stream.edges())
        assert first == second
        assert stream.passes_taken == 2

    def test_seed_changes_order(self, graph):
        a = list(RandomOrderStream(graph, seed=1).edges())
        b = list(RandomOrderStream(graph, seed=2).edges())
        assert a != b
        assert sorted(a) == sorted(b)

    def test_reshuffled_independent(self, graph):
        stream = RandomOrderStream(graph, seed=1)
        other = stream.reshuffled(seed=9)
        assert sorted(other.edges()) == sorted(graph.edges())
        assert list(other.edges()) != list(stream.edges())

    def test_order_statistics_roughly_uniform(self):
        """Each edge's probability of arriving first should be ~1/m."""
        g = complete_graph(6)  # m = 15
        firsts = Counter()
        for seed in range(600):
            stream = RandomOrderStream(g, seed=seed)
            firsts[next(iter(stream.edges()))] += 1
        expected = 600 / 15
        assert all(expected / 3 < c < expected * 3 for c in firsts.values())
        assert len(firsts) == 15


class TestAdjacencyListStream:
    def test_every_edge_twice(self, graph):
        stream = AdjacencyListStream(graph, seed=4)
        tokens = Counter(stream.edges())
        assert all(count == 2 for count in tokens.values())
        assert set(tokens) == set(graph.edges())
        assert stream.stream_length == 2 * graph.num_edges

    def test_blocks_are_complete_lists(self, graph):
        stream = AdjacencyListStream(graph, seed=4)
        for vertex, neighbors in stream.adjacency_lists():
            assert set(neighbors) == graph.neighbors(vertex)
            assert len(neighbors) == graph.degree(vertex)

    def test_every_vertex_appears_once(self, graph):
        stream = AdjacencyListStream(graph, seed=4)
        vertices = [v for v, _ in stream.adjacency_lists()]
        assert sorted(vertices, key=repr) == sorted(graph.vertices(), key=repr)

    def test_explicit_vertex_order(self, graph):
        order = sorted(graph.vertices())
        stream = AdjacencyListStream(graph, vertex_order=order)
        assert [v for v, _ in stream.adjacency_lists()] == order

    def test_rejects_bad_vertex_order(self, graph):
        with pytest.raises(ValueError):
            AdjacencyListStream(graph, vertex_order=[1, 2, 3])

    def test_passes_replay(self, graph):
        stream = AdjacencyListStream(graph, seed=4)
        first = list(stream.edges())
        second = list(stream.edges())
        assert first == second

    def test_pass_count_includes_block_iteration(self, graph):
        stream = AdjacencyListStream(graph, seed=4)
        list(stream.adjacency_lists())
        list(stream.edges())
        assert stream.passes_taken == 2

    def test_tokens_normalized(self, graph):
        stream = AdjacencyListStream(graph, seed=4)
        for u, v in stream.edges():
            assert (u, v) == normalize_edge(u, v)

    def test_isolated_vertices_emit_empty_blocks(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(9)
        stream = AdjacencyListStream(g, seed=0)
        blocks = dict(stream.adjacency_lists())
        assert blocks[9] == []
