"""Adversarial orders: construction and their effect on algorithms."""

import statistics

import pytest

from repro.core import FourCycleArbitraryThreePass, TriangleRandomOrder
from repro.graphs import four_cycle_count, heavy_edge_graph, planted_diamonds, triangle_count
from repro.streams import RandomOrderStream
from repro.streams.orders import (
    ORDER_FACTORIES,
    heavy_edges_first,
    heavy_edges_last,
    sorted_order,
    stream_with_order,
    vertex_grouped_order,
)


@pytest.fixture(scope="module")
def heavy_graph():
    return heavy_edge_graph(900, heavy_triangles=250, light_triangles=80, seed=1)


class TestOrderConstruction:
    def test_all_orders_are_permutations(self, heavy_graph):
        expected = sorted(heavy_graph.edges())
        for name, factory in ORDER_FACTORIES.items():
            stream = factory(heavy_graph, 0) if name != "sorted" else factory(heavy_graph)
            assert sorted(stream.edges()) == expected, name

    def test_heavy_first_puts_heavy_edge_early(self, heavy_graph):
        stream = heavy_edges_first(heavy_graph, seed=1)
        assert next(iter(stream.edges())) == (0, 1)  # the 250-triangle edge

    def test_heavy_last_puts_heavy_edge_late(self, heavy_graph):
        stream = heavy_edges_last(heavy_graph, seed=1)
        assert list(stream.edges())[-1] == (0, 1)

    def test_stream_with_order_validates(self, heavy_graph):
        with pytest.raises(ValueError):
            stream_with_order(heavy_graph, [(0, 1)])

    def test_sorted_order(self, heavy_graph):
        stream = sorted_order(heavy_graph)
        edges = list(stream.edges())
        assert edges == sorted(edges)

    def test_vertex_grouped(self, heavy_graph):
        stream = vertex_grouped_order(heavy_graph, seed=2)
        assert sorted(stream.edges()) == sorted(heavy_graph.edges())


class TestOrderSensitivity:
    """The content of the random-order model: Theorem 2.1's accuracy
    depends on the order; the arbitrary-order three-pass algorithm's
    does not."""

    def _triangle_median(self, stream_factory, truth, trials=5):
        estimates = []
        for seed in range(trials):
            algorithm = TriangleRandomOrder(t_guess=truth, epsilon=0.3, seed=seed)
            estimates.append(algorithm.run(stream_factory(seed)).estimate)
        return statistics.median(estimates)

    def test_random_order_algorithm_breaks_on_heavy_first(self, heavy_graph):
        truth = triangle_count(heavy_graph)
        random_est = self._triangle_median(
            lambda seed: RandomOrderStream(heavy_graph, seed=100 + seed), truth
        )
        adversarial_est = self._triangle_median(
            lambda seed: heavy_edges_first(heavy_graph, seed=seed), truth
        )
        assert abs(random_est - truth) / truth < 0.35
        # heavy-first starves P: the heavy edge's ~250 triangles vanish
        assert adversarial_est < 0.6 * truth

    def test_heavy_last_is_friendly(self, heavy_graph):
        truth = triangle_count(heavy_graph)
        estimate = self._triangle_median(
            lambda seed: heavy_edges_last(heavy_graph, seed=seed), truth
        )
        assert abs(estimate - truth) / truth < 0.35

    def test_threepass_is_order_insensitive(self):
        graph = planted_diamonds(900, [8] * 10, extra_edges=300, seed=3)
        truth = four_cycle_count(graph)
        estimates = []
        for name, factory in ORDER_FACTORIES.items():
            stream = factory(graph, 1) if name != "sorted" else factory(graph)
            result = FourCycleArbitraryThreePass(
                t_guess=truth, epsilon=0.3, seed=5
            ).run(stream)
            estimates.append(result.estimate)
        # same hash seeds, any order: identical sample sets, and the
        # pass-2/3 logic is order-free => identical estimates
        assert len(set(estimates)) == 1
        assert abs(estimates[0] - truth) / truth < 0.3
