"""The high-level facade (repro.api)."""

import pytest

from repro import api
from repro.core import (
    FourCycleAdjacencyDiamond,
    FourCycleArbitraryOnePass,
    FourCycleArbitraryThreePass,
    FourCycleMoment,
    TriangleRandomOrder,
)
from repro.graphs import erdos_renyi, planted_triangles, triangle_count
from repro.streams import (
    AdjacencyListStream,
    ArbitraryOrderStream,
    RandomOrderStream,
)


class TestStreamFor:
    def test_models(self):
        graph = erdos_renyi(20, 0.3, seed=1)
        assert isinstance(api.stream_for(graph, "random"), RandomOrderStream)
        assert isinstance(api.stream_for(graph, "arbitrary"), ArbitraryOrderStream)
        assert isinstance(api.stream_for(graph, "adjacency"), AdjacencyListStream)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            api.stream_for(erdos_renyi(5, 0.5), "sorted")


class TestMakeCounter:
    def test_triangle_dispatch(self):
        assert isinstance(
            api.make_counter("triangles", "random", t_guess=10), TriangleRandomOrder
        )

    def test_triangles_adjacency_unsupported(self):
        with pytest.raises(ValueError):
            api.make_counter("triangles", "adjacency", t_guess=10)

    def test_fourcycle_dispatch(self):
        assert isinstance(
            api.make_counter("four-cycles", "adjacency", t_guess=10),
            FourCycleAdjacencyDiamond,
        )
        assert isinstance(
            api.make_counter("four-cycles", "arbitrary", t_guess=10),
            FourCycleArbitraryThreePass,
        )

    def test_prefer_one_pass(self):
        assert isinstance(
            api.make_counter(
                "four-cycles", "adjacency", t_guess=10, prefer_one_pass=True
            ),
            FourCycleMoment,
        )
        assert isinstance(
            api.make_counter(
                "four-cycles", "arbitrary", t_guess=10, prefer_one_pass=True
            ),
            FourCycleArbitraryOnePass,
        )

    def test_unknown_problem(self):
        with pytest.raises(ValueError):
            api.make_counter("five-cycles", "random", t_guess=10)

    def test_kwargs_forwarded(self):
        algorithm = api.make_counter(
            "triangles", "random", t_guess=10, disable_heavy_path=True
        )
        assert algorithm.disable_heavy_path


class TestEstimate:
    def test_with_known_t(self):
        graph = planted_triangles(400, 90, extra_edges=400, seed=1)
        truth = triangle_count(graph)
        result = api.estimate(
            graph, problem="triangles", model="random", t_guess=truth, epsilon=0.3
        )
        assert result.relative_error(truth) < 0.6

    def test_with_boost(self):
        graph = planted_triangles(400, 90, extra_edges=400, seed=1)
        truth = triangle_count(graph)
        result = api.estimate(
            graph,
            problem="triangles",
            model="random",
            t_guess=truth,
            epsilon=0.3,
            boost_copies=3,
        )
        assert result.algorithm == "median-boost"
        assert result.details["copies"] == 3

    def test_auto_calibration(self):
        graph = planted_triangles(400, 90, extra_edges=400, seed=1)
        truth = triangle_count(graph)
        result = api.estimate(
            graph, problem="triangles", model="random", epsilon=0.3, seed=2
        )
        assert "guess_table" in result.details
        assert abs(result.estimate - truth) / truth < 0.7


class TestEstimateTransitivity:
    def test_matches_exact_on_clean_graph(self):
        from repro.graphs import global_clustering_coefficient, planted_triangles

        graph = planted_triangles(400, 90, extra_edges=400, seed=1)
        exact = global_clustering_coefficient(graph)
        estimated = api.estimate_transitivity(
            graph, t_guess=triangle_count(graph), epsilon=0.3, seed=1
        )
        assert abs(estimated - exact) / exact < 0.6

    def test_zero_wedges(self):
        from repro.graphs import Graph

        graph = Graph.from_edges([(0, 1)])
        assert api.estimate_transitivity(graph, t_guess=1) == 0.0


class TestEstimateFourCyclesAuto:
    def test_auto_calibration_adjacency(self):
        from repro.graphs import four_cycle_count, planted_diamonds

        graph = planted_diamonds(300, [8, 6, 5], extra_edges=50, seed=2)
        truth = four_cycle_count(graph)
        result = api.estimate(
            graph, problem="four-cycles", model="adjacency", epsilon=0.3, seed=1
        )
        assert abs(result.estimate - truth) / truth < 0.7
        assert result.details["selected_guess"] >= 1

    def test_transitivity_unknown_t(self):
        from repro.graphs import global_clustering_coefficient, planted_triangles

        graph = planted_triangles(300, 60, extra_edges=200, seed=4)
        exact = global_clustering_coefficient(graph)
        estimated = api.estimate_transitivity(graph, epsilon=0.3, seed=2)
        assert abs(estimated - exact) / exact < 0.8
