"""The command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "graph.txt"
    # a triangle plus a pendant edge
    path.write_text("0 1\n1 2\n0 2\n2 3\n")
    return path


class TestWorkloadsCommand:
    def test_lists_registry(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "light-triangles" in output
        assert "dense-gnp" in output


class TestGenerateCommand:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "generated.txt"
        code = main(["generate", "four-cycle-free", "--out", str(out)])
        assert code == 0
        assert out.exists()
        output = capsys.readouterr().out
        assert "wrote" in output

    def test_unknown_workload(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "nope", "--out", str(tmp_path / "x.txt")])


class TestExactCommand:
    def test_counts(self, edge_file, capsys):
        assert main(["exact", str(edge_file)]) == 0
        output = capsys.readouterr().out
        assert "triangles" in output
        assert "1" in output  # one triangle


class TestEstimateCommand:
    def test_triangles_with_guess(self, edge_file, capsys):
        code = main(
            [
                "estimate",
                str(edge_file),
                "--problem",
                "triangles",
                "--model",
                "random",
                "--t-guess",
                "1",
                "--epsilon",
                "0.5",
                "--compare-exact",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "median_estimate" in output
        assert "exact" in output

    def test_auto_calibration_path(self, edge_file, capsys):
        code = main(
            [
                "estimate",
                str(edge_file),
                "--problem",
                "triangles",
                "--model",
                "random",
                "--epsilon",
                "0.5",
            ]
        )
        assert code == 0
        assert "median_estimate" in capsys.readouterr().out

    def test_boost_flag(self, edge_file, capsys):
        code = main(
            [
                "estimate",
                str(edge_file),
                "--problem",
                "triangles",
                "--t-guess",
                "1",
                "--boost",
                "3",
            ]
        )
        assert code == 0


class TestExperimentsCommand:
    def test_prints_index(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output
        assert "E13" in output
        assert "bench_e9_distinguisher" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_bad_model(self, edge_file):
        with pytest.raises(SystemExit):
            main(["estimate", str(edge_file), "--model", "sorted"])


class TestRunExperimentCommand:
    def test_runs_light_experiment(self, capsys):
        assert main(["run-experiment", "E12"]) == 0
        output = capsys.readouterr().out
        assert "Lemma 5.1" in output
        assert "holds" in output

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run-experiment", "E99"])


class TestEstimateFourCycles:
    def test_adjacency_model_dispatch(self, tmp_path, capsys):
        # a small diamond-rich file
        from repro.graphs import planted_diamonds, write_edge_list

        path = tmp_path / "diamonds.txt"
        write_edge_list(planted_diamonds(120, [6, 4, 3], seed=1), path)
        code = main(
            [
                "estimate",
                str(path),
                "--problem",
                "four-cycles",
                "--model",
                "adjacency",
                "--t-guess",
                "24",
                "--epsilon",
                "0.3",
                "--compare-exact",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "four-cycles" in output
        assert "adjacency" in output


class TestPaperTableCommand:
    def test_prints_measured_table(self, capsys):
        assert main(["paper-table", "--trials", "1"]) == 0
        output = capsys.readouterr().out
        assert "Thm 2.1" in output
        assert "Thm 5.6" in output
        assert "measured_rel_err" in output
