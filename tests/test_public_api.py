"""Public-API hygiene: exports resolve, carry docstrings, and the
package surface matches what the docs promise."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.api",
    "repro.graphs",
    "repro.streams",
    "repro.sketches",
    "repro.core",
    "repro.baselines",
    "repro.lowerbounds",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{package_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_have_docstrings(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


def test_module_docstrings():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        assert module.__doc__, f"{package_name} lacks a module docstring"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_algorithms_share_run_contract():
    """Every algorithm exposes `name` and `run`, as the docs state."""
    from repro import baselines, core

    algorithm_classes = [
        core.TriangleRandomOrder,
        core.FourCycleAdjacencyDiamond,
        core.FourCycleMoment,
        core.FourCycleL2Sampling,
        core.FourCycleArbitraryThreePass,
        core.FourCycleArbitraryOnePass,
        core.FourCycleDistinguisher,
        baselines.CormodeJowhariTriangles,
        baselines.TwoPassTriangles,
        baselines.BeraChakrabartiFourCycles,
        baselines.WedgePairSamplingFourCycles,
        baselines.TriestBase,
        baselines.TriestImpr,
        baselines.EdgeSamplingTriangles,
        baselines.EdgeSamplingFourCycles,
        baselines.ExactTriangleStream,
        baselines.ExactFourCycleStream,
    ]
    names = set()
    for cls in algorithm_classes:
        assert hasattr(cls, "run")
        assert isinstance(cls.name, str) and cls.name
        names.add(cls.name)
    assert len(names) == len(algorithm_classes), "algorithm names must be unique"


def test_workload_registry_matches_docs():
    from repro.experiments import ALL_WORKLOADS

    for expected in (
        "light-triangles",
        "heavy-and-light-triangles",
        "diamond-mixture",
        "sparse-four-cycles",
        "dense-gnp",
        "four-cycle-free",
    ):
        assert expected in ALL_WORKLOADS
