"""Chebyshev budget algebra: every knob must satisfy its inequality."""

import math

import pytest

from repro.verify import Budget, chebyshev_slack
from repro.verify.budgets import (
    cormode_jowhari_budget,
    edge_sampling_c4_budget,
    edge_sampling_triangle_budget,
    implied_budget,
    mvv_twopass_budget,
    triest_impr_budget,
    wedge_pair_budget,
)

EPS, DELTA, TRUTH, M, N = 0.3, 1.0 / 3.0, 200.0, 600, 600
TARGET = DELTA * (EPS * TRUTH) ** 2  # Chebyshev requirement delta (eps T)^2


class TestChebyshevSlack:
    def test_formula(self):
        assert chebyshev_slack(EPS, DELTA, TRUTH) == pytest.approx(
            DELTA * EPS * EPS * TRUTH
        )

    def test_validates(self):
        with pytest.raises(ValueError):
            chebyshev_slack(0.0, DELTA, TRUTH)
        with pytest.raises(ValueError):
            chebyshev_slack(EPS, 1.0, TRUTH)
        with pytest.raises(ValueError):
            chebyshev_slack(EPS, DELTA, 0.5)


class TestEdgeSamplingBudgets:
    def test_triangle_rate_meets_chebyshev(self):
        budget = edge_sampling_triangle_budget(TRUTH, M, N, EPS, DELTA)
        p = budget.params["p"]
        s = chebyshev_slack(EPS, DELTA, TRUTH)
        assert 0.0 < p <= 1.0
        assert p**3 * (1.0 + s) >= 1.0 - 1e-9
        # variance detail is T (1 - p^3) / p^3 and satisfies the target
        assert budget.detail["variance"] == pytest.approx(
            TRUTH * (1.0 - p**3) / p**3
        )
        assert budget.detail["variance"] <= TARGET + 1e-6

    def test_c4_rate_meets_chebyshev(self):
        budget = edge_sampling_c4_budget(TRUTH, M, N, EPS, DELTA)
        p = budget.params["p"]
        s = chebyshev_slack(EPS, DELTA, TRUTH)
        assert p**4 * (1.0 + s) >= 1.0 - 1e-9
        assert budget.detail["variance"] <= TARGET + 1e-6

    def test_tiny_truth_keeps_rate_near_one(self):
        # s = delta eps^2 T is minuscule here, so almost no sampling is
        # allowed: p must stay essentially 1 and the variance negligible.
        budget = edge_sampling_triangle_budget(1.0, 3, 3, 0.1, 0.01)
        assert 0.999 < budget.params["p"] <= 1.0
        small_target = 0.01 * (0.1 * 1.0) ** 2
        assert budget.detail["variance"] <= small_target + 1e-9


class TestWedgePairBudget:
    def test_rate_meets_chebyshev(self):
        budget = wedge_pair_budget(TRUTH, M, N, EPS, DELTA)
        p_w = budget.params["wedge_probability"]
        s = chebyshev_slack(EPS, DELTA, TRUTH)
        assert p_w**2 * (1.0 + 2.0 * s) >= 1.0 - 1e-9
        assert budget.detail["variance"] == pytest.approx(
            TRUTH * (1.0 - p_w**2) / (2.0 * p_w**2)
        )
        assert budget.detail["variance"] <= TARGET + 1e-6


class TestMvvBudget:
    def test_rate_and_c_consistent(self):
        budget = mvv_twopass_budget(TRUTH, M, N, EPS, DELTA)
        p = budget.detail["p"]
        s = chebyshev_slack(EPS, DELTA, TRUTH)
        assert p == pytest.approx(1.0 / (1.0 + 3.0 * s))
        # TwoPassTriangles reconstructs p = c / (eps sqrt(T))
        assert budget.params["c"] == pytest.approx(p * EPS * math.sqrt(TRUTH))
        # Var = T (1-p)/(3p) = T s = delta eps^2 T^2 exactly at this p
        assert budget.detail["variance"] == pytest.approx(TARGET)


class TestCormodeJowhariBudget:
    def test_beta_solves_wedge_closure_rate(self):
        budget = cormode_jowhari_budget(TRUTH, M, N, EPS, DELTA)
        beta, q = budget.detail["beta"], budget.detail["q"]
        s = chebyshev_slack(EPS, DELTA, TRUTH)
        assert 0.0 < beta <= 2.0 / 3.0
        assert q == pytest.approx(3.0 * beta * beta * (1.0 - beta), abs=1e-9)
        assert q * (1.0 + s) >= 1.0 - 1e-6
        assert budget.detail["variance"] <= TARGET + 1e-4

    def test_loose_target_caps_beta(self):
        # With huge slack the closure rate maxes out at beta = 2/3.
        budget = cormode_jowhari_budget(1.0, 10, 10, 0.1, 0.1)
        assert budget.detail["beta"] == pytest.approx(2.0 / 3.0)
        assert budget.detail["q"] == pytest.approx(4.0 / 9.0)


class TestTriestBudget:
    def test_memory_meets_eta_bound(self):
        budget = triest_impr_budget(TRUTH, M, N, EPS, DELTA)
        memory = budget.params["memory"]
        s = chebyshev_slack(EPS, DELTA, TRUTH)
        assert memory >= 6
        assert memory * (memory - 1) * (1.0 + s) >= (M - 1.0) * (M - 2.0) - 1e-6
        # minimality: one unit less would violate the bound (unless floored)
        if memory > 6:
            below = memory - 1
            assert below * (below - 1) * (1.0 + s) < (M - 1.0) * (M - 2.0)
        assert budget.detail["variance"] <= TARGET + 1e-6


class TestImpliedBudget:
    def test_halves_internal_epsilon(self):
        budget = implied_budget(TRUTH, M, N, EPS, DELTA)
        assert budget.params["epsilon"] == pytest.approx(EPS / 2.0)
        assert budget.params["t_guess"] == TRUTH

    def test_variance_is_chebyshev_requirement(self):
        budget = implied_budget(TRUTH, M, N, EPS, DELTA)
        assert budget.detail["variance"] == pytest.approx(TARGET)

    def test_extra_params_forwarded(self):
        budget = implied_budget(TRUTH, M, N, EPS, DELTA, levels=4)
        assert budget.params["levels"] == 4


class TestBudgetDataclass:
    def test_defaults_empty(self):
        budget = Budget()
        assert budget.params == {}
        assert budget.detail == {}
