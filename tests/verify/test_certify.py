"""Certification loop: verdicts, early stopping, checkpoint resume.

A stub coin-flip "algorithm" with a controllable failure rate is
registered as a temporary plan, so every verdict branch is exercised
deterministically and cheaply; one real (quick) plan run keeps the
stub honest against the actual registry.
"""

import json

import pytest

from repro.core.result import EstimateResult
from repro.graphs.generators import planted_triangles
from repro.seeding import component_rng
from repro.streams.meter import SpaceMeter
from repro.verify import PLANS, certify, certify_all, certify_checkpoint_key
from repro.verify.budgets import Budget
from repro.verify.certify import PAPER_DELTA, PAPER_EPSILON, GuaranteePlan
from repro.resilience.checkpoint import Checkpoint, CheckpointContext

_TRUTH = 2.0


class _CoinAlgorithm:
    """Estimates exactly right, except it 'fails' (returns 0) at a
    seed-determined Bernoulli rate — a controllable guarantee."""

    def __init__(self, fail_rate: float, seed: int = 0) -> None:
        self.fail_rate = fail_rate
        self.seed = seed

    def run(self, stream) -> EstimateResult:
        rng = component_rng("test:verify-coin", seed=self.seed)
        failed = rng.random() < self.fail_rate
        return EstimateResult(
            estimate=0.0 if failed else _TRUTH,
            passes=1,
            space=SpaceMeter(),
            algorithm="stub-coin",
        )


def _stub_workload(seed: int, quick: bool):
    return planted_triangles(6, 2, extra_edges=0, seed=seed), _TRUTH


def _make_budget(fail_rate: float):
    def build(truth, m, n, epsilon, delta):
        return Budget(params={"fail_rate": fail_rate}, detail={"variance": 1.0})

    return build


@pytest.fixture
def stub_plan():
    """Register a coin-flip plan under a throwaway name; yields a
    function that re-points its failure rate."""
    name = "stub-coin-plan"

    def install(fail_rate: float) -> str:
        PLANS[name] = GuaranteePlan(
            name=name,
            theorem="stub",
            problem="triangles",
            model="arbitrary",
            algorithm=_CoinAlgorithm,
            workload=_stub_workload,
            budget=_make_budget(fail_rate),
        )
        return name

    yield install
    PLANS.pop(name, None)


class TestVerdicts:
    def test_perfect_algorithm_passes_first_batch(self, stub_plan):
        certificate = certify(stub_plan(0.0), batch_size=25, max_trials=200)
        assert certificate.verdict == "PASS"
        assert certificate.trials == 25  # early stop: one batch sufficed
        assert certificate.failures == 0
        assert certificate.batches == 1
        assert certificate.ci_high <= PAPER_DELTA

    def test_broken_algorithm_fails_fast(self, stub_plan):
        certificate = certify(stub_plan(1.0), batch_size=25, max_trials=200)
        assert certificate.verdict == "FAIL"
        assert certificate.trials == 25
        assert certificate.failures == 25
        assert certificate.ci_low > PAPER_DELTA

    def test_borderline_rate_is_inconclusive_with_bound(self, stub_plan):
        # Failure rate right at delta: the interval straddles it and the
        # trial budget runs out — but the certificate still carries a bound.
        certificate = certify(
            stub_plan(PAPER_DELTA), batch_size=10, max_trials=30, seed=3
        )
        assert certificate.verdict == "INCONCLUSIVE"
        assert certificate.trials == 30
        assert certificate.ci_low <= PAPER_DELTA <= certificate.ci_high

    def test_clopper_pearson_method(self, stub_plan):
        certificate = certify(
            stub_plan(0.0), batch_size=25, max_trials=50, method="clopper-pearson"
        )
        assert certificate.verdict == "PASS"
        assert certificate.method == "clopper-pearson"

    def test_deterministic_in_seed(self, stub_plan):
        name = stub_plan(0.2)
        a = certify(name, batch_size=20, max_trials=40, seed=5)
        b = certify(name, batch_size=20, max_trials=40, seed=5)
        assert a.to_record() == b.to_record()
        assert a.ci_low == b.ci_low and a.ci_high == b.ci_high


class TestValidation:
    def test_unknown_plan(self):
        with pytest.raises(KeyError, match="unknown guarantee plan"):
            certify("no-such-plan")

    def test_batch_size_positive(self, stub_plan):
        with pytest.raises(ValueError):
            certify(stub_plan(0.0), batch_size=0)

    def test_max_trials_at_least_batch(self, stub_plan):
        with pytest.raises(ValueError):
            certify(stub_plan(0.0), batch_size=50, max_trials=10)

    def test_unknown_method(self, stub_plan):
        with pytest.raises(ValueError, match="interval method"):
            certify(stub_plan(0.0), method="bayes")


class TestCheckpointResume:
    def test_resume_replays_batches_bit_identical(self, stub_plan, tmp_path):
        name = stub_plan(0.1)
        path = tmp_path / "verify.ckpt"
        key = certify_checkpoint_key([name], PAPER_EPSILON, PAPER_DELTA, 0, False, 10, 30)

        first_ctx = CheckpointContext(Checkpoint(path, key))
        first = certify(name, batch_size=10, max_trials=30, checkpoint=first_ctx)
        assert first_ctx.misses > 0 and first_ctx.hits == 0

        resumed_ctx = CheckpointContext(Checkpoint(path, key, resume=True))
        resumed = certify(name, batch_size=10, max_trials=30, checkpoint=resumed_ctx)
        assert resumed_ctx.hits == first_ctx.misses
        assert resumed_ctx.misses == 0
        assert resumed.to_record() == first.to_record()

    def test_checkpoint_key_depends_on_config(self):
        base = certify_checkpoint_key(["a"], 0.3, 0.33, 0, False, 25, 200)
        assert base != certify_checkpoint_key(["a"], 0.2, 0.33, 0, False, 25, 200)
        assert base != certify_checkpoint_key(["a"], 0.3, 0.33, 1, False, 25, 200)
        assert base != certify_checkpoint_key(["b"], 0.3, 0.33, 0, False, 25, 200)
        # name order must not matter
        assert certify_checkpoint_key(
            ["a", "b"], 0.3, 0.33, 0, False, 25, 200
        ) == certify_checkpoint_key(["b", "a"], 0.3, 0.33, 0, False, 25, 200)


class TestRealPlans:
    def test_registry_covers_required_algorithms(self):
        required = {
            "edge-sampling-triangles",
            "edge-sampling-fourcycles",
            "wedge-pair-sampling",
            "mvv-twopass-triangles",
            "cormode-jowhari",
            "triest-impr",
            "triangle-random-order",
            "threepass-fourcycles",
        }
        assert required <= set(PLANS)

    def test_quick_edge_sampling_certifies(self):
        certificate = certify(
            "edge-sampling-triangles", quick=True, batch_size=25, max_trials=50
        )
        # never silently FAIL at the paper budget: PASS, or INCONCLUSIVE
        # with an explicit interval.
        assert certificate.verdict in ("PASS", "INCONCLUSIVE")
        assert 0.0 <= certificate.ci_low <= certificate.ci_high <= 1.0
        assert certificate.epsilon == PAPER_EPSILON

    def test_certificate_record_is_jsonable(self, stub_plan):
        certificate = certify(stub_plan(0.0), batch_size=10, max_trials=10)
        json.dumps(certificate.to_record())

    def test_certify_all_subset_order(self, stub_plan):
        name = stub_plan(0.0)
        certificates = certify_all([name, name], batch_size=10, max_trials=10)
        assert [c.algorithm for c in certificates] == [name, name]
