"""The ``repro verify`` command family, end to end through main()."""

import json

import pytest

from repro.cli import main


class TestVerifySeeds:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["verify", "seeds"]) == 0
        output = capsys.readouterr().out
        assert "clean" in output

    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "seeds.json"
        assert main(["verify", "seeds", "--json", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["schema"] == "repro-verify-v1"
        assert document["seed_audit"]["clean"] is True
        assert document["seed_audit"]["collisions"] == []


class TestVerifyGuarantee:
    def test_quick_certification_exits_zero(self, capsys):
        code = main(
            [
                "verify",
                "guarantee",
                "--algorithm",
                "edge-sampling-triangles",
                "--budget-from-paper",
                "--quick",
                "--batch",
                "25",
                "--max-trials",
                "50",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "edge-sampling-triangles" in output
        assert "PASS" in output or "INCONCLUSIVE" in output

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "guarantee", "--algorithm", "nope"])

    def test_json_document(self, tmp_path, capsys):
        out = tmp_path / "cert.json"
        code = main(
            [
                "verify",
                "guarantee",
                "--algorithm",
                "mvv-twopass-triangles",
                "--quick",
                "--batch",
                "25",
                "--max-trials",
                "25",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        rows = document["certificates"]
        assert rows[0]["algorithm"] == "mvv-twopass-triangles"
        assert rows[0]["verdict"] in ("PASS", "FAIL", "INCONCLUSIVE")
        assert "seed_audit" not in document  # guarantee-only document

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        path = tmp_path / "verify.ckpt"
        argv = [
            "verify",
            "guarantee",
            "--algorithm",
            "edge-sampling-triangles",
            "--quick",
            "--batch",
            "25",
            "--max-trials",
            "25",
            "--checkpoint",
            str(path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed" in second
        # the certificate table itself is identical across the resume
        assert [l for l in first.splitlines() if "edge-sampling" in l] == [
            l for l in second.splitlines() if "edge-sampling" in l
        ]


class TestVerifyVariance:
    def test_single_algorithm(self, capsys):
        code = main(
            [
                "verify",
                "variance",
                "--algorithm",
                "edge-sampling-triangles",
                "--quick",
                "--trials",
                "16",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "ratio" in output


class TestVerifyAll:
    def test_two_algorithms_with_json(self, tmp_path, capsys):
        out = tmp_path / "all.json"
        code = main(
            [
                "verify",
                "all",
                "--algorithm",
                "edge-sampling-triangles",
                "--algorithm",
                "mvv-twopass-triangles",
                "--budget-from-paper",
                "--quick",
                "--batch",
                "25",
                "--max-trials",
                "50",
                "--trials",
                "16",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["seed_audit"]["clean"] is True
        assert len(document["certificates"]) == 2
        assert len(document["variance"]) == 2
