"""Rendering and JSON document assembly for verification results."""

import json

from repro.verify import certificates_to_json, render_certificates
from repro.verify.certify import Certificate
from repro.verify.report import summarize_verdicts, write_json


def _certificate(name="alg", verdict="PASS"):
    return Certificate(
        algorithm=name,
        theorem="thm",
        problem="triangles",
        model="arbitrary",
        epsilon=0.3,
        delta=1.0 / 3.0,
        confidence=0.95,
        method="wilson",
        trials=25,
        failures=0,
        ci_low=0.0,
        ci_high=0.1332,
        verdict=verdict,
        batches=1,
        truth=60.0,
    )


class TestRendering:
    def test_table_has_row_per_certificate(self):
        table = render_certificates([_certificate("a"), _certificate("b")])
        assert "a" in table and "b" in table and "PASS" in table

    def test_empty_placeholder(self):
        assert render_certificates([]) == "(no certificates)"


class TestDocument:
    def test_document_shape_and_roundtrip(self, tmp_path):
        document = certificates_to_json(certificates=[_certificate()])
        assert document["schema"] == "repro-verify-v1"
        assert document["certificates"][0]["algorithm"] == "alg"
        assert "seed_audit" not in document
        path = tmp_path / "out" / "doc.json"
        write_json(path, document)  # creates the parent directory
        assert json.loads(path.read_text()) == document

    def test_seed_audit_key_gated_on_audit_having_run(self):
        with_audit = certificates_to_json(seed_collisions=[])
        assert with_audit["seed_audit"]["clean"] is True
        without_audit = certificates_to_json(seed_collisions=None)
        assert "seed_audit" not in without_audit


class TestSummarize:
    def test_groups_by_verdict(self):
        groups = summarize_verdicts(
            [_certificate("a", "PASS"), _certificate("b", "FAIL")]
        )
        assert groups["PASS"] == ["a"]
        assert groups["FAIL"] == ["b"]
        assert groups["INCONCLUSIVE"] == []
