"""Seed audit: the fixed tree is clean, and a reconstruction of the
pre-fix shared-raw-seed wiring is flagged."""

import random

import pytest

from repro.verify import SeedCollision, SeedProbe, audit_seeds, default_probes
from repro.verify.report import render_seed_audit
from repro.verify.seeds import AUDIT_SEEDS, DRAWS


def _raw_seed_probe(name: str) -> SeedProbe:
    """A component seeded the pre-fix way: ``random.Random(seed)``
    directly, no namespacing — exactly what ReservoirSampler and
    UniformItemSampler both did before repro.seeding existed."""
    return SeedProbe(
        name=name,
        draw=lambda seed: tuple(
            random.Random(seed).random() for _ in range(DRAWS)
        ),
    )


class TestDefaultRegistry:
    def test_tree_is_clean(self):
        probes = default_probes()
        assert len(probes) >= 25  # generators + sketches + streams + kwise
        assert audit_seeds(probes) == []

    def test_probe_names_unique_and_stable(self):
        names = [probe.name for probe in default_probes()]
        assert len(set(names)) == len(names)
        # components the issue called out explicitly must stay probed
        assert "sketch:reservoir-sampler" in names
        assert "sketch:uniform-item-sampler" in names
        assert "generator:erdos-renyi" in names


class TestPreFixReproduction:
    def test_shared_raw_seed_is_flagged(self):
        # Two distinct components both built on random.Random(seed):
        # identical streams at every shared seed -> cross-component hits.
        probes = [
            _raw_seed_probe("legacy:reservoir"),
            _raw_seed_probe("legacy:uniform-sampler"),
        ]
        collisions = audit_seeds(probes)
        cross = [c for c in collisions if c.probe_a != c.probe_b]
        assert len(cross) == len(AUDIT_SEEDS)
        assert all(c.seed_a == c.seed_b for c in cross)
        assert "correlated RNG streams" in cross[0].describe()

    def test_seed_ignoring_component_is_flagged(self):
        probes = [
            SeedProbe(
                "legacy:ignores-seed",
                draw=lambda seed: tuple(
                    random.Random(0).random() for _ in range(DRAWS)
                ),
            )
        ]
        collisions = audit_seeds(probes)
        same = [c for c in collisions if c.probe_a == c.probe_b]
        assert len(same) == len(AUDIT_SEEDS) * (len(AUDIT_SEEDS) - 1) // 2
        assert "seed ignored" in same[0].describe()

    def test_mixing_legacy_probe_into_clean_registry_still_clean_pairwise(self):
        # A single raw-seeded probe among namespaced ones collides with
        # nothing (sha256 streams differ from random.Random(seed)) but
        # its own cross-seed draws still differ — audit stays targeted.
        probes = default_probes() + [_raw_seed_probe("legacy:lone")]
        assert audit_seeds(probes) == []

    def test_duplicate_probe_names_rejected(self):
        probes = [_raw_seed_probe("dup"), _raw_seed_probe("dup")]
        with pytest.raises(ValueError, match="unique"):
            audit_seeds(probes)


class TestRendering:
    def test_clean_render(self):
        text = render_seed_audit([], probes=31)
        assert "clean" in text and "31" in text

    def test_failed_render_lists_collisions(self):
        collision = SeedCollision("a", 7, "b", 7)
        text = render_seed_audit([collision], probes=2)
        assert "FAILED" in text
        assert "a and b" in text
