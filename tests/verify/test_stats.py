"""Binomial intervals and chi-square bands against textbook values."""

import math

import pytest

from repro.verify import (
    clopper_pearson_interval,
    inverse_normal_cdf,
    variance_ratio_bounds,
    wilson_interval,
)
from repro.verify.stats import binomial_tail_ge, chi_square_quantile


class TestInverseNormal:
    def test_median(self):
        assert inverse_normal_cdf(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_known_quantiles(self):
        assert inverse_normal_cdf(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert inverse_normal_cdf(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert inverse_normal_cdf(0.01) == pytest.approx(-2.326348, abs=1e-5)

    def test_symmetry(self):
        for q in (0.01, 0.1, 0.25, 0.4):
            assert inverse_normal_cdf(q) == pytest.approx(
                -inverse_normal_cdf(1.0 - q), abs=1e-9
            )

    def test_monotone(self):
        qs = [0.001, 0.01, 0.2, 0.5, 0.8, 0.99, 0.999]
        values = [inverse_normal_cdf(q) for q in qs]
        assert values == sorted(values)

    def test_validates_domain(self):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                inverse_normal_cdf(q)


class TestWilson:
    def test_zero_failures_known_value(self):
        ci = wilson_interval(0, 20, 0.95)
        assert ci.low == 0.0
        assert ci.high == pytest.approx(0.161125, abs=1e-5)

    def test_five_of_fifty_known_value(self):
        ci = wilson_interval(5, 50, 0.95)
        assert ci.low == pytest.approx(0.043476, abs=1e-5)
        assert ci.high == pytest.approx(0.213602, abs=1e-5)

    def test_contains_point_estimate(self):
        for k, n in ((0, 10), (3, 10), (10, 10), (17, 40)):
            ci = wilson_interval(k, n)
            assert k / n in ci

    def test_narrows_with_trials(self):
        wide = wilson_interval(2, 20)
        narrow = wilson_interval(20, 200)
        assert narrow.high - narrow.low < wide.high - wide.low

    def test_upper_monotone_in_failures(self):
        highs = [wilson_interval(k, 40).high for k in range(0, 41, 5)]
        assert highs == sorted(highs)

    def test_validates_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)


class TestClopperPearson:
    def test_zero_failures_closed_form(self):
        # k = 0: upper solves (1-p)^n = alpha/2 exactly.
        ci = clopper_pearson_interval(0, 20, 0.95)
        assert ci.low == 0.0
        assert ci.high == pytest.approx(1.0 - 0.025 ** (1.0 / 20.0), abs=1e-6)

    def test_all_failures_closed_form(self):
        ci = clopper_pearson_interval(20, 20, 0.95)
        assert ci.high == 1.0
        assert ci.low == pytest.approx(0.025 ** (1.0 / 20.0), abs=1e-6)

    def test_five_of_fifty_textbook(self):
        ci = clopper_pearson_interval(5, 50, 0.95)
        assert ci.low == pytest.approx(0.033275, abs=1e-5)
        assert ci.high == pytest.approx(0.218135, abs=1e-5)

    def test_conservative_versus_wilson(self):
        # The exact interval always contains the Wilson interval's span.
        for k, n in ((0, 25), (4, 25), (12, 25)):
            cp = clopper_pearson_interval(k, n)
            wilson = wilson_interval(k, n)
            assert cp.low <= wilson.low + 1e-9
            assert cp.high >= wilson.high - 1e-9

    def test_coverage_is_exact_at_bounds(self):
        # At the returned upper bound, P(X <= k) == alpha/2 by definition.
        k, n = 3, 30
        ci = clopper_pearson_interval(k, n, 0.95)
        assert 1.0 - binomial_tail_ge(k + 1, n, ci.high) == pytest.approx(
            0.025, abs=1e-6
        )
        assert binomial_tail_ge(k, n, ci.low) == pytest.approx(0.025, abs=1e-6)


class TestBinomialTail:
    def test_exact_small_cases(self):
        assert binomial_tail_ge(1, 2, 0.5) == pytest.approx(0.75)
        assert binomial_tail_ge(2, 3, 0.5) == pytest.approx(0.5)
        assert binomial_tail_ge(0, 10, 0.3) == 1.0
        assert binomial_tail_ge(11, 10, 0.3) == 0.0

    def test_degenerate_probabilities(self):
        assert binomial_tail_ge(3, 10, 0.0) == 0.0
        assert binomial_tail_ge(3, 10, 1.0) == 1.0

    def test_monotone_in_p(self):
        values = [binomial_tail_ge(5, 20, p) for p in (0.1, 0.25, 0.5, 0.75)]
        assert values == sorted(values)


class TestChiSquare:
    def test_median_near_df(self):
        # chi2 median is roughly df (1 - 2/(9 df))^3.
        assert chi_square_quantile(10, 0.5) == pytest.approx(9.3418, rel=0.01)

    def test_monotone_in_quantile(self):
        values = [chi_square_quantile(20, q) for q in (0.01, 0.25, 0.5, 0.9, 0.99)]
        assert values == sorted(values)

    def test_validates_df(self):
        with pytest.raises(ValueError):
            chi_square_quantile(0, 0.5)


class TestVarianceRatioBounds:
    def test_band_straddles_one(self):
        low, high = variance_ratio_bounds(64)
        assert low < 1.0 < high

    def test_band_tightens_with_trials(self):
        low_small, high_small = variance_ratio_bounds(16)
        low_big, high_big = variance_ratio_bounds(256)
        assert high_big - low_big < high_small - low_small

    def test_widen_scales_band(self):
        low, high = variance_ratio_bounds(64, widen=1.0)
        wlow, whigh = variance_ratio_bounds(64, widen=2.0)
        assert wlow == pytest.approx(low / 2.0)
        assert whigh == pytest.approx(high * 2.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            variance_ratio_bounds(1)
        with pytest.raises(ValueError):
            variance_ratio_bounds(10, widen=0.5)
