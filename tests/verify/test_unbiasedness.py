"""Unbiasedness of the closed-form estimators on planted workloads.

Each plan's budget carries the estimator's exact variance, so the mean
of N independent trials must land within a few standard errors of the
truth — a direct empirical check of E[T_hat] = T.
"""

import math

import pytest

from repro.experiments.runner import run_trials
from repro.verify import PLANS
from repro.verify.certify import PAPER_DELTA, PAPER_EPSILON

# The exact-variance plans: for these, Var is known in closed form and
# the standard-error bound below is honest (not just an upper bound).
EXACT_PLANS = (
    "edge-sampling-triangles",
    "edge-sampling-fourcycles",
    "wedge-pair-sampling",
    "mvv-twopass-triangles",
)

TRIALS = 160


@pytest.mark.parametrize("name", EXACT_PLANS)
def test_mean_estimate_tracks_truth(name):
    built = PLANS[name].build(PAPER_EPSILON, PAPER_DELTA, seed=0, quick=True)
    stats = run_trials(
        built.algorithm_factory,
        built.stream_factory,
        truth=built.truth,
        trials=TRIALS,
        base_seed=11,
    )
    mean = sum(stats.estimates) / len(stats.estimates)
    variance = built.budget.detail["variance"]
    standard_error = math.sqrt(variance / TRIALS)
    # 4.5 sigma: false-failure probability ~ 7e-6 per plan
    tolerance = 4.5 * standard_error if variance > 0 else 1e-9
    assert abs(mean - built.truth) <= max(tolerance, 1e-9), (
        f"{name}: mean {mean:.2f} vs truth {built.truth:.2f} "
        f"(tolerance {tolerance:.2f})"
    )


def test_upper_bound_plan_mean_within_loose_band():
    # TRIEST-impr's variance is only a bound; its mean must still track.
    built = PLANS["triest-impr"].build(PAPER_EPSILON, PAPER_DELTA, seed=0, quick=True)
    stats = run_trials(
        built.algorithm_factory,
        built.stream_factory,
        truth=built.truth,
        trials=96,
        base_seed=13,
    )
    mean = sum(stats.estimates) / len(stats.estimates)
    standard_error = math.sqrt(built.budget.detail["variance"] / 96)
    assert abs(mean - built.truth) <= max(4.5 * standard_error, 1e-9)
