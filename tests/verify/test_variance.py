"""Empirical-vs-theoretical variance checks.

The exact-kind check is the sharp end of the seeding work: on the
noise-free planted workloads the closed-form variances are exact, so
the empirical ratio must sit inside the chi-square band — correlated
RNG streams would collapse it.
"""

import pytest

from repro.verify import VarianceReport, check_variance
from repro.verify.variance import CHI_SQUARE_WIDEN, _band_verdict, check_variance_all


class TestExactKind:
    def test_edge_sampling_ratio_inside_band(self):
        report = check_variance("edge-sampling-triangles", trials=48, quick=True)
        assert report.kind == "exact"
        assert report.verdict in ("OK", "SUSPECT")
        # a correlated-stream regression collapses the ratio toward 0
        assert report.ratio > report.band_low / 3.0
        assert report.ratio < report.band_high * 3.0
        # the trials themselves should track the truth
        assert report.mean_estimate == pytest.approx(report.truth, rel=0.25)

    def test_report_record_shape(self):
        report = check_variance("edge-sampling-triangles", trials=16, quick=True)
        record = report.to_record()
        assert record["algorithm"] == "edge-sampling-triangles"
        assert set(record) >= {"kind", "verdict", "trials", "ratio", "band"}


class TestUpperBoundKind:
    def test_triest_ratio_below_slack(self):
        report = check_variance("triest-impr", trials=24, quick=True)
        assert report.kind == "upper-bound"
        assert report.verdict in ("OK", "SUSPECT")
        assert report.ratio <= report.band_high * 3.0


class TestValidation:
    def test_unknown_plan(self):
        with pytest.raises(KeyError, match="unknown guarantee plan"):
            check_variance("no-such-plan")

    def test_minimum_trials(self):
        with pytest.raises(ValueError, match="at least 8"):
            check_variance("edge-sampling-triangles", trials=4)


class TestBandVerdict:
    def test_inside_band(self):
        assert _band_verdict(1.0, 0.5, 1.5) == "OK"

    def test_near_miss_is_suspect(self):
        assert _band_verdict(2.0, 0.5, 1.5) == "SUSPECT"
        assert _band_verdict(0.2, 0.5, 1.5) == "SUSPECT"

    def test_collapse_is_fail(self):
        # a ratio near zero — the correlated-stream signature — fails
        assert _band_verdict(0.01, 0.5, 1.5) == "FAIL"
        assert _band_verdict(10.0, 0.5, 1.5) == "FAIL"

    def test_widen_constant_sane(self):
        assert CHI_SQUARE_WIDEN >= 1.0


class TestCheckAll:
    def test_named_subset(self):
        reports = check_variance_all(
            ["edge-sampling-triangles"], trials=16, quick=True
        )
        assert [r.algorithm for r in reports] == ["edge-sampling-triangles"]
        assert all(isinstance(r, VarianceReport) for r in reports)
